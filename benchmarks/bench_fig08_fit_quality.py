"""Fig. 8: fit quality (see repro.experiments.fit_quality)."""

from repro.experiments import run_experiment


def test_fig08a_r_squared(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig8a",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig08a_r_squared", result.text)
    # "Most benchmarks are fitted with R-squared of 0.7-1.0" (§5.2).
    assert result.data["fraction_high"] >= 0.8


def test_fig08b_high_r2_series(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig8b",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig08b_sim_vs_est_high", result.text)


def test_fig08c_low_r2_series(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig8c",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig08c_sim_vs_est_low", result.text)
