"""Why enforcement exists: unpartitioned sharing versus REF partitions.

The paper takes for granted that shares must be *enforced* (§4.4: way
partitioning, WFQ).  This bench supplies the missing baseline: co-run
each pair on one **unpartitioned** L2 with FCFS memory — the default of
a machine with no fairness substrate at all — and compare per-agent IPC
against the same pair under enforced REF shares.

The signature outcome: without partitioning, the streaming neighbour
floods the LLC, multiplying the cache-lover's DRAM traffic; REF's way
partition restores its working set at a modest cost to the streamer.
"""

from repro.core import proportional_elasticity
from repro.sched import build_agent_shares
from repro.sim import CacheConfig, DramConfig, PlatformConfig, SharedMachine
from repro.workloads import problem_from_fits
from repro.workloads.mixes import WorkloadMix

PLATFORM = PlatformConfig(
    l2=CacheConfig(size_kb=8 * 1024, ways=16, latency_cycles=20),
    dram=DramConfig(bandwidth_gbps=12.8, channel_gbps=12.8),
)
CAPACITIES = (12.8, 8.0 * 1024)
PAIRS = [
    ("freqmine", "ocean_cp"),
    ("bodytrack", "dedup"),
    ("histogram", "facesim"),
]
N_INSTRUCTIONS = 100_000


def why_partition_table(profiler):
    machine = SharedMachine(PLATFORM, n_instructions=N_INSTRUCTIONS)
    lines = ["=== Why partition: unpartitioned FCFS vs enforced REF shares ==="]
    lines.append(
        f"{'pair':<24} {'agent':<12} {'IPC no enforcement':>19} "
        f"{'IPC REF-enforced':>17} {'change':>8} {'DRAM reqs':>16}"
    )
    for first, second in PAIRS:
        mix = WorkloadMix(f"{first}+{second}", (first, second), "1C-1M")
        fits = {m: profiler.fit(w) for m, w in zip(mix.members, mix.workloads())}
        problem = problem_from_fits(mix, fits, CAPACITIES)
        workload_of = dict(zip(mix.agent_names(), mix.workloads()))
        ref_shares = build_agent_shares(
            proportional_elasticity(problem), PLATFORM.l2, workload_of
        )
        unmanaged = machine.run(ref_shares, cache_mode="shared", policy="fcfs")
        enforced = machine.run(ref_shares, cache_mode="partitioned", policy="wfq")
        for name in (first, second):
            lines.append(
                f"{first + '+' + second:<24} {name:<12} "
                f"{unmanaged.ipc[name]:>19.3f} {enforced.ipc[name]:>17.3f} "
                f"{(enforced.ipc[name] / unmanaged.ipc[name] - 1) * 100:>7.1f}% "
                f"{unmanaged.dram_requests[name]:>7d} -> {enforced.dram_requests[name]:<6d}"
            )
    lines.append(
        "\nunpartitioned LLCs let streaming neighbours flood the cache-lover's\n"
        "working set (watch its DRAM requests); REF's way partition restores it\n"
        "— the §4.4 enforcement layer is what makes the mechanism's promises real."
    )
    return "\n".join(lines)


def test_why_partition(benchmark, profiler, write_result):
    text = benchmark.pedantic(why_partition_table, args=(profiler,), rounds=1, iterations=1)
    write_result("why_partition", text)
