"""Fig. 14: 8-core throughput (see repro.experiments.throughput)."""

from repro.experiments import run_experiment


def test_fig14_eight_core_throughput(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig14",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig14_eightcore", result.text)
    assert result.data["worst_penalty"] < 0.15
    # Fig. 14's observation: equal slowdown may trail REF at 8 agents.
    assert len(result.data["trailing"]) >= 1
