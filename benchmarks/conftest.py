"""Shared fixtures for the evaluation benches (Figs. 1-14, Tables 1-2).

Each bench regenerates one table or figure from the paper: it computes
the same rows/series the paper reports, prints them, and appends them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote measured
values.  The expensive common inputs (the 28-benchmark profile sweep and
Cobb-Douglas fits) are computed once per session.

The shared profiler honours the parallel/cached pipeline knobs:

* ``REPRO_BENCH_JOBS=N`` fans the profile sweep out over N worker
  processes (profiles stay bit-identical to the serial path);
* ``REPRO_BENCH_CACHE_DIR=DIR`` reuses the content-addressed on-disk
  profile cache across sessions, so repeat bench runs skip simulation.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.profiling import OfflineProfiler

RESULTS_DIR = Path(__file__).parent / "results"

#: Worker processes for the shared profile sweep (1 = serial).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: On-disk profile cache shared across bench sessions (unset = disabled).
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None


@pytest.fixture(scope="session")
def profiler():
    """One shared offline profiler (profiles are cached inside it)."""
    with OfflineProfiler(jobs=BENCH_JOBS, cache_dir=BENCH_CACHE_DIR) as shared:
        yield shared


@pytest.fixture(scope="session")
def fits(profiler):
    """Fitted Cobb-Douglas utilities for all 28 benchmarks."""
    return profiler.fit_suite()


@pytest.fixture(scope="session")
def write_result():
    """Writer that stores a bench's regenerated table under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write
