"""Shared fixtures for the evaluation benches (Figs. 1-14, Tables 1-2).

Each bench regenerates one table or figure from the paper: it computes
the same rows/series the paper reports, prints them, and appends them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote measured
values.  The expensive common inputs (the 28-benchmark profile sweep and
Cobb-Douglas fits) are computed once per session.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.profiling import OfflineProfiler

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profiler():
    """One shared offline profiler (profiles are cached inside it)."""
    return OfflineProfiler()


@pytest.fixture(scope="session")
def fits(profiler):
    """Fitted Cobb-Douglas utilities for all 28 benchmarks."""
    return profiler.fit_suite()


@pytest.fixture(scope="session")
def write_result():
    """Writer that stores a bench's regenerated table under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write
