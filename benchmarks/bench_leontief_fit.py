"""§2's fitting argument: Cobb-Douglas vs Leontief on real profiles.

"We use classical regression to fit log-linear Cobb-Douglas to
architectural performance.  In contrast, since Leontief is concave
piecewise-linear, fitting it would require non-convex optimization."

This bench fits both families to every benchmark's Table 1 profile and
reports goodness of fit (linear-space R², so the two are comparable)
and fitting cost.  The Leontief fitter is even granted an intercept —
more expressive than the paper's pure form — and still loses on most
benchmarks, because perfect complements cannot express the
cache/bandwidth substitution the profiles contain.
"""

import time

from repro.core import fit_cobb_douglas, fit_leontief
from repro.workloads import BENCHMARK_ORDER, get_workload


def fit_comparison_table(profiler):
    lines = ["=== Fit quality: Cobb-Douglas vs Leontief (linear-space R²) ==="]
    lines.append(
        f"{'benchmark':<20} {'Cobb-Douglas':>13} {'Leontief':>9} {'winner':>8}"
    )
    cd_wins = 0
    cd_time = leontief_time = 0.0
    for name in BENCHMARK_ORDER:
        profile = profiler.profile(get_workload(name))
        start = time.perf_counter()
        cd = fit_cobb_douglas(profile.allocations, profile.ipc)
        cd_time += time.perf_counter() - start
        start = time.perf_counter()
        leontief = fit_leontief(profile.allocations, profile.ipc)
        leontief_time += time.perf_counter() - start
        winner = "CD" if cd.r_squared_linear > leontief.r_squared else "Leontief"
        cd_wins += winner == "CD"
        lines.append(
            f"{name:<20} {cd.r_squared_linear:>13.3f} {leontief.r_squared:>9.3f} {winner:>8}"
        )
    lines.append(
        f"\nCobb-Douglas wins {cd_wins}/{len(BENCHMARK_ORDER)} benchmarks; "
        f"total fitting time {cd_time * 1e3:.1f} ms (one least-squares solve each) "
        f"vs {leontief_time * 1e3:.1f} ms (800-candidate search each, "
        "even with an intercept handicap in Leontief's favour)"
    )
    return "\n".join(lines)


def test_leontief_vs_cobb_douglas(benchmark, profiler, write_result):
    text = benchmark.pedantic(fit_comparison_table, args=(profiler,), rounds=1, iterations=1)
    write_result("leontief_fit", text)


def test_cobb_douglas_fit_speed(benchmark, profiler):
    profile = profiler.profile(get_workload("ferret"))
    benchmark(fit_cobb_douglas, profile.allocations, profile.ipc)


def test_leontief_fit_speed(benchmark, profiler):
    profile = profiler.profile(get_workload("ferret"))
    benchmark(fit_leontief, profile.allocations, profile.ipc)
