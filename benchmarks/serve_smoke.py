"""CI ``service-smoke`` driver (also ``make serve-smoke``).

Launches ``python -m repro serve`` as a real subprocess on an ephemeral
port, then drives **3 concurrent clients** through the full
register → submit-sample → read-allocation loop until the service has
completed **50 epochs**, asserting along the way that

* every ``GET /v1/allocation`` response is capacity-feasible,
* ``GET /healthz`` reports ok,
* ``GET /metrics`` passes the strict Prometheus text-format parser
  (:func:`repro.obs.parse_prometheus_text`),
* the mechanism was solved at most once per epoch tick no matter how
  many clients were submitting (batching contract),
* the pooled clients reused connections — mean
  ``requests_per_connection > 1`` from the served metrics (keep-alive
  contract),
* the server exits cleanly (code 0) on SIGTERM with its shutdown
  summary line printed.

Exits non-zero on the first violation; prints a greppable
``serve-smoke OK`` line on success.
"""

from __future__ import annotations

import argparse
import re
import signal
import subprocess
import sys
import threading
import time
from typing import List, Optional

from repro.core.registry import controller_mechanism_names
from repro.obs import parse_prometheus_text
from repro.serve import ServeClient
from repro.sim.analytic import AnalyticMachine
from repro.workloads import get_workload

TARGET_EPOCHS = 50
CLIENTS = ("canneal", "x264", "streamcluster")


class _SmokeClient(threading.Thread):
    """One agent: register, then measure-and-submit until the target epoch."""

    def __init__(self, benchmark: str, port: int, errors: List[str]):
        super().__init__(name=f"smoke-{benchmark}", daemon=True)
        self.agent = f"smoke_{benchmark}"
        self.benchmark = benchmark
        self.workload = get_workload(benchmark)
        self.machine = AnalyticMachine()
        self.client = ServeClient("127.0.0.1", port)
        self.errors = errors
        self.samples = 0
        self.allocations = 0

    def run(self) -> None:
        try:
            self.client.register(self.agent, self.benchmark)
            while True:
                allocation = self.client.allocation()
                self.allocations += 1
                if not allocation.feasible:
                    self.errors.append(
                        f"{self.agent}: infeasible allocation at epoch "
                        f"{allocation.epoch}"
                    )
                    return
                bundle = allocation.bundle(self.agent)
                bandwidth = max(0.5, bundle["membw_gbps"])
                cache_kb = max(96.0, bundle["cache_kb"])
                # Perturb the measurement point so the fit stays identified.
                scale = 0.85 + 0.3 * ((self.samples * 7919) % 100) / 100.0
                bandwidth *= scale
                cache_kb *= scale
                ipc = float(self.machine.ipc(self.workload, cache_kb, bandwidth))
                self.client.submit_sample(self.agent, bandwidth, cache_kb, ipc)
                self.samples += 1
                if allocation.epoch >= TARGET_EPOCHS:
                    return
        except Exception as error:  # surfaced by the main thread
            self.errors.append(f"{self.agent}: {type(error).__name__}: {error}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mechanism", default="ref", choices=controller_mechanism_names(),
        help="controller mechanism the server runs (registry-sourced)",
    )
    args = parser.parse_args(argv)
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--epoch-ms", "20", "--max-batch", "8",
        "--workloads", "freqmine,dedup",
        "--mechanism", args.mechanism,
    ]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    try:
        line = proc.stdout.readline()
        print(line.rstrip())
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if not match:
            print(f"FAIL: could not parse listen line {line!r}", file=sys.stderr)
            return 1
        port = int(match.group(1))
        probe = ServeClient("127.0.0.1", port)
        probe.wait_ready(timeout=15)

        errors: List[str] = []
        threads = [_SmokeClient(benchmark, port, errors) for benchmark in CLIENTS]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            if thread.is_alive():
                errors.append(f"{thread.name} did not finish in time")
        if errors:
            for error in errors:
                print(f"FAIL: {error}", file=sys.stderr)
            return 1

        health = probe.health()
        if health.status != "ok" or health.epoch < TARGET_EPOCHS:
            print(f"FAIL: bad health {health}", file=sys.stderr)
            return 1
        if health.mechanism != args.mechanism:
            print(
                f"FAIL: health reports mechanism {health.mechanism!r}, "
                f"wanted {args.mechanism!r}",
                file=sys.stderr,
            )
            return 1

        metrics_text = probe.metrics_text()
        samples = parse_prometheus_text(metrics_text)  # strict parse or raise
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], 0.0)
            by_name[sample["name"]] += sample["value"]
        epochs = by_name.get("repro_dynamic_epochs_total", 0.0)
        submitted = sum(thread.samples for thread in threads)
        ticks = by_name.get("repro_serve_batches_total", 0.0)
        if epochs != ticks:
            print(
                f"FAIL: {epochs:.0f} mechanism solves != {ticks:.0f} epoch ticks",
                file=sys.stderr,
            )
            return 1
        if epochs >= submitted:
            print(
                f"FAIL: batching did not coalesce ({submitted} samples, "
                f"{epochs:.0f} solves)",
                file=sys.stderr,
            )
            return 1
        # Keep-alive contract: the pooled clients must have amortized many
        # requests over few connections, not opened one socket per call.
        requests = by_name.get("repro_serve_requests_total", 0.0)
        connections = by_name.get("repro_serve_connections_total", 0.0)
        if connections <= 0:
            print("FAIL: repro_serve_connections_total missing", file=sys.stderr)
            return 1
        requests_per_connection = requests / connections
        if requests_per_connection <= 1.0:
            print(
                f"FAIL: no connection reuse ({requests:.0f} requests over "
                f"{connections:.0f} connections)",
                file=sys.stderr,
            )
            return 1

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=30)
        print(output.rstrip())
        if proc.returncode != 0:
            print(f"FAIL: server exited {proc.returncode} on SIGTERM", file=sys.stderr)
            return 1
        if "feasible=True" not in output:
            print("FAIL: shutdown summary missing feasible=True", file=sys.stderr)
            return 1
        print(
            f"serve-smoke OK: {len(threads)} clients, {health.epoch} epochs "
            f"({args.mechanism}), {submitted} samples -> {epochs:.0f} solves, "
            f"{requests_per_connection:.1f} requests/connection, "
            f"{len(samples)} metric samples parse, clean SIGTERM exit"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
