"""§2's Cobb-Douglas-versus-Leontief argument, made quantitative.

The paper motivates Cobb-Douglas over DRF's Leontief domain: Leontief
cannot express substitution, so a demand-vector mechanism wastes the
flexibility that cache/bandwidth trading offers.  This bench runs both
mechanisms on the fitted Cobb-Douglas agents of every Table 2 mix —
REF directly, DRF on each agent's Leontief shadow (demands proportional
to re-scaled elasticities) — and compares per-agent utilities and
weighted system throughput.
"""

import numpy as np

from repro.core import proportional_elasticity, weighted_system_throughput
from repro.optimize import drf_allocation
from repro.workloads import FOUR_CORE_MIXES, EIGHT_CORE_MIXES, build_mix_problem


def drf_vs_ref_table(profiler):
    lines = ["=== DRF (Leontief shadow) vs REF on Cobb-Douglas agents ==="]
    lines.append(
        f"{'mix':<6} {'throughput DRF':>15} {'throughput REF':>15} "
        f"{'REF advantage':>14} {'agents better off under REF':>28}"
    )
    for mix_name in FOUR_CORE_MIXES + EIGHT_CORE_MIXES:
        problem = build_mix_problem(mix_name, profiler=profiler)
        ref = proportional_elasticity(problem)
        drf = drf_allocation(problem)
        ref_throughput = weighted_system_throughput(ref)
        drf_throughput = weighted_system_throughput(drf)
        better = int(np.sum(ref.utilities() >= drf.utilities() - 1e-12))
        lines.append(
            f"{mix_name:<6} {drf_throughput:>15.4f} {ref_throughput:>15.4f} "
            f"{(ref_throughput / drf_throughput - 1) * 100:>13.1f}% "
            f"{better:>14d}/{problem.n_agents}"
        )
    lines.append(
        "\nModeling substitution pays: REF delivers higher weighted throughput on\n"
        "nearly every mix (largest gains where M workloads dominate and the\n"
        "Leontief shadow freezes agents at the bandwidth bottleneck), and most\n"
        "agents individually prefer their REF bundle (§2's argument, quantified)."
    )
    return "\n".join(lines)


def test_drf_vs_ref(benchmark, profiler, write_result):
    text = benchmark.pedantic(drf_vs_ref_table, args=(profiler,), rounds=1, iterations=1)
    write_result("drf_comparison", text)
