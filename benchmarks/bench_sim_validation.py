"""Substrate validation: trace-driven simulator vs analytic machine.

Not a paper figure, but the ablation DESIGN.md calls out: the fast
analytic machine (used for the full 28 x 25 characterization sweep)
must agree with the detailed trace-driven simulator — the stand-in for
MARSSx86 + DRAMSim2 — on both IPC levels and, more importantly, on
*trends* (the paper values relative over absolute accuracy).
"""

import numpy as np

from repro.sim import AnalyticMachine, TraceMachine
from repro.workloads import get_workload

WORKLOADS = ("raytrace", "bodytrack", "ferret", "canneal", "dedup", "ocean_cp")
POINTS = [(128, 0.8), (512, 3.2), (2048, 12.8)]


def validation_table():
    trace = TraceMachine(n_instructions=150_000)
    analytic = AnalyticMachine()
    lines = ["=== Substrate validation: trace-driven vs analytic IPC ==="]
    lines.append(
        f"{'workload':<12} {'cache KB':>9} {'bw GB/s':>8} {'trace':>8} {'analytic':>9} {'ratio':>7}"
    )
    ratios = []
    for name in WORKLOADS:
        workload = get_workload(name)
        for cache_kb, bandwidth in POINTS:
            detailed = trace.simulate(workload, cache_kb, bandwidth).ipc
            fast = analytic.ipc(workload, cache_kb, bandwidth)
            ratio = detailed / fast
            ratios.append(ratio)
            lines.append(
                f"{name:<12} {cache_kb:>9} {bandwidth:>8.1f} {detailed:>8.3f} "
                f"{fast:>9.3f} {ratio:>7.2f}"
            )
    ratios = np.asarray(ratios)
    lines.append(
        f"\nagreement: geometric-mean ratio {np.exp(np.mean(np.log(ratios))):.2f}, "
        f"worst {ratios.min():.2f} / {ratios.max():.2f}"
    )
    return "\n".join(lines)


def test_sim_validation(benchmark, write_result):
    text = benchmark.pedantic(validation_table, rounds=1, iterations=1)
    write_result("sim_validation", text)
