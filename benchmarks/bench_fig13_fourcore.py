"""Fig. 13: 4-core throughput (see repro.experiments.throughput)."""

from repro.experiments import run_experiment


def test_fig13_four_core_throughput(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig13",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig13_fourcore", result.text)
    # The headline: fairness costs little (paper < 10%; 15% slack for
    # the substitute simulator).
    assert result.data["worst_penalty"] < 0.15
