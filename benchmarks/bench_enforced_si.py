"""Enforced sharing incentives: SI verified in the machine, not in utility.

The SI theorem (§4.2) is proven in utility space.  This bench closes
the loop on the simulator: co-run each 4-core Table 2 mix on the shared
machine twice — once under way-partitioned + WFQ-paced **REF shares**,
once under the **equal split** — and compare each agent's *measured*
IPC.  Sharing incentives predict that agents (whose fitted utilities
are faithful) should rarely lose much by moving from the equal split to
REF, and the mix as a whole should gain.
"""

import numpy as np

from repro.core import proportional_elasticity
from repro.core.mechanism import Allocation
from repro.sched import build_agent_shares
from repro.sim import CacheConfig, DramConfig, PlatformConfig, SharedMachine
from repro.workloads import FOUR_CORE_MIXES, get_mix, problem_from_fits

#: Shared 4-core platform: 12 MB L2 (16 ways so 4+ agents partition
#: cleanly) and a 24 GB/s channel matching the allocated capacity.
SHARED_PLATFORM = PlatformConfig(
    l2=CacheConfig(size_kb=12 * 1024, ways=16, latency_cycles=20),
    dram=DramConfig(bandwidth_gbps=24.0, channel_gbps=24.0),
)
CAPACITIES = (24.0, 12.0 * 1024)
N_INSTRUCTIONS = 80_000


def run_mix(mix_name, profiler, machine):
    mix = get_mix(mix_name)
    fits = {m: profiler.fit(w) for m, w in zip(mix.members, mix.workloads())}
    problem = problem_from_fits(mix, fits, CAPACITIES)
    workload_of = {
        agent_name: workload
        for agent_name, workload in zip(mix.agent_names(), mix.workloads())
    }

    ref_allocation = proportional_elasticity(problem)
    equal_shares = np.tile(problem.equal_split, (problem.n_agents, 1))
    equal_allocation = Allocation(problem=problem, shares=equal_shares, mechanism="equal_split")

    results = {}
    for label, allocation in (("REF", ref_allocation), ("equal", equal_allocation)):
        shares = build_agent_shares(allocation, SHARED_PLATFORM.l2, workload_of)
        results[label] = machine.run(shares)
    return problem, results


def enforced_si_table(profiler):
    machine = SharedMachine(SHARED_PLATFORM, n_instructions=N_INSTRUCTIONS)
    lines = ["=== Enforced SI: measured IPC, REF shares vs equal split (4-core mixes) ==="]
    lines.append(f"{'mix':<6} {'agent':<20} {'IPC equal':>10} {'IPC REF':>10} {'gain %':>8}")
    gains = []
    for mix_name in FOUR_CORE_MIXES:
        problem, results = run_mix(mix_name, profiler, machine)
        total_equal = total_ref = 0.0
        for agent in problem.agents:
            ipc_equal = results["equal"].ipc[agent.name]
            ipc_ref = results["REF"].ipc[agent.name]
            total_equal += ipc_equal
            total_ref += ipc_ref
            gain = (ipc_ref / ipc_equal - 1.0) * 100
            gains.append(gain)
            lines.append(
                f"{mix_name:<6} {agent.name:<20} {ipc_equal:>10.3f} {ipc_ref:>10.3f} {gain:>8.1f}"
            )
        lines.append(
            f"{mix_name:<6} {'(aggregate)':<20} {total_equal:>10.3f} {total_ref:>10.3f} "
            f"{(total_ref / total_equal - 1) * 100:>8.1f}"
        )
    gains = np.asarray(gains)
    lines.append(
        f"\nper-agent IPC change, REF vs equal split: median {np.median(gains):+.1f}%, "
        f"worst {gains.min():+.1f}%, best {gains.max():+.1f}%"
    )
    lines.append(
        "note: SI is guaranteed with respect to the *fitted* utilities; residual\n"
        "losses here measure Cobb-Douglas extrapolation error (bandwidth gains\n"
        "saturate in the machine faster than the fitted power law predicts) plus\n"
        "whole-way cache quantization — the deployment caveats §4.4 inherits."
    )
    return "\n".join(lines)


def test_enforced_sharing_incentives(benchmark, profiler, write_result):
    text = benchmark.pedantic(enforced_si_table, args=(profiler,), rounds=1, iterations=1)
    write_result("enforced_si", text)
