"""Table 1: platform parameters plus machine-model sweep costs."""

from repro.experiments import run_experiment
from repro.sim import AnalyticMachine, TraceMachine
from repro.workloads import get_workload


def test_table1_platform(benchmark, write_result):
    result = benchmark.pedantic(run_experiment, args=("table1",), rounds=1, iterations=1)
    write_result("table1_platform", result.text)


def test_analytic_sweep_cost(benchmark):
    machine = AnalyticMachine()
    workload = get_workload("ferret")
    benchmark(machine.sweep, workload)


def test_trace_point_cost(benchmark):
    machine = TraceMachine(n_instructions=100_000)
    workload = get_workload("ferret")
    benchmark.pedantic(
        machine.simulate, args=(workload, 512.0, 3.2), rounds=3, iterations=1
    )
