"""Ablations on the profiling stage (DESIGN.md §5 design choices).

Two knobs of the §4.4 profiling pipeline are swept:

* **measurement noise** — how much simulator noise the classification
  (Fig. 9 groups) tolerates before benchmarks start flipping groups;
* **grid resolution** — how few sweep points suffice for the fit to
  recover the same re-scaled elasticities as the full 5x5 Table 1 grid
  (profiling cost is 25 cycle-accurate simulations per workload in the
  paper; fewer points are cheaper).
"""

from repro.core import classify_many
from repro.profiling import OfflineProfiler
from repro.sim import PlatformConfig
from repro.workloads import BENCHMARKS

NOISE_LEVELS = (0.0, 0.01, 0.03, 0.05, 0.10)
GRIDS = {
    "5x5 (Table 1)": ((0.8, 1.6, 3.2, 6.4, 12.8), (128, 256, 512, 1024, 2048)),
    "3x3": ((0.8, 3.2, 12.8), (128, 512, 2048)),
    "2x2 (corners)": ((0.8, 12.8), (128, 2048)),
}


def noise_ablation():
    lines = ["=== Ablation: classification robustness vs profiling noise ==="]
    lines.append(f"{'noise sigma':>12} {'misclassified / 28':>20}")
    for sigma in NOISE_LEVELS:
        profiler = OfflineProfiler(noise_sigma=sigma)
        prefs = classify_many(profiler.fit_suite())
        wrong = sum(
            1
            for name, pref in prefs.items()
            if pref.group.value != BENCHMARKS[name].expected_group
        )
        lines.append(f"{sigma:>12.2f} {wrong:>20d}")
    return "\n".join(lines)


def grid_ablation():
    reference = OfflineProfiler(noise_sigma=0.0).fit_suite()
    lines = ["=== Ablation: fit fidelity vs sweep-grid resolution (noiseless) ==="]
    lines.append(f"{'grid':<16} {'points':>7} {'max |delta a_cache|':>20} {'groups changed':>15}")
    for label, (bandwidths, caches) in GRIDS.items():
        platform = PlatformConfig(
            bandwidth_sweep_gbps=bandwidths, l2_sweep_kb=caches
        )
        profiler = OfflineProfiler(platform=platform, noise_sigma=0.0)
        fits = profiler.fit_suite()
        deltas, flips = [], 0
        for name in BENCHMARKS:
            coarse = fits[name].rescaled_elasticities[1]
            fine = reference[name].rescaled_elasticities[1]
            deltas.append(abs(coarse - fine))
            if (coarse > 0.5) != (fine > 0.5):
                flips += 1
        lines.append(
            f"{label:<16} {len(bandwidths) * len(caches):>7} "
            f"{max(deltas):>20.3f} {flips:>15d}"
        )
    return "\n".join(lines)


def test_ablation_noise(benchmark, write_result):
    text = benchmark.pedantic(noise_ablation, rounds=1, iterations=1)
    write_result("ablation_noise", text)


def test_ablation_grid(benchmark, write_result):
    text = benchmark.pedantic(grid_ablation, rounds=1, iterations=1)
    write_result("ablation_grid", text)
