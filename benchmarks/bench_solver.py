"""Solver/fit hot-path benchmark (the `make bench-solver` entry).

Measures the four legs of the batched solver work and hard-gates each:

1. **Batched fitting** — ``fit_cobb_douglas_batch`` over 64 ragged
   agents versus the per-agent ``fit_cobb_douglas`` loop; gates on
   bit-close parity (elasticities, scale, R²) and a speedup floor.
2. **Closed form vs SLSQP** — ``max_nash_welfare`` unconstrained via
   the Eq. 14 closed form versus the forced numeric path; gates on
   1e-6 share agreement and reports the (large) speedup.
3. **Controller tick** — a 64-agent ``DynamicAllocator`` run with
   eager per-sample refits (the old hot path) versus one batched refit
   per epoch; gates on identical final enforced shares and the
   acceptance speedup floor (>= 3x).
4. **Scenario batching** — ``solve_batch`` over 50 independent
   problems versus the scalar loop; gates on exact parity.

Run directly (``python benchmarks/bench_solver.py``) or via
``make bench-solver``; CI runs it as a smoke step and uploads the
``BENCH_solver.json`` artifact.  Exits non-zero if any parity or floor
gate fails.

Named outside the ``bench_*.py`` pattern on purpose: it is a timing
harness with a JSON artifact, not a pytest benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.fitting import fit_cobb_douglas, fit_cobb_douglas_batch
from repro.core.mechanism import Agent, AllocationProblem, proportional_elasticity
from repro.core.utility import CobbDouglasUtility
from repro.dynamic import DynamicAllocator
from repro.optimize import max_nash_welfare, solve_batch
from repro.workloads import BENCHMARKS, get_workload

#: Acceptance floors from the issue: the batched controller tick must
#: beat the eager per-sample-refit tick by at least 3x at 64 agents.
MIN_TICK_SPEEDUP = 3.0
MIN_FIT_SPEEDUP = 2.0
FIT_PARITY_ATOL = 1e-9
AGREEMENT_ATOL = 1e-6


def best_of(repeats: int, run) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def synthetic_samples(n_agents: int, seed: int = 2014):
    """Ragged per-agent (allocations, performance, weights) triples."""
    rng = np.random.default_rng(seed)
    allocations, performance, weights = [], [], []
    for k in range(n_agents):
        m = int(rng.integers(12, 30))
        alloc = rng.uniform(0.05, 1.0, size=(m, 2))
        alpha = rng.uniform(0.1, 0.9, size=2)
        scale = rng.uniform(0.5, 2.0)
        noise = rng.normal(0.0, 0.02, size=m)
        perf = scale * np.prod(alloc**alpha, axis=1) * np.exp(noise)
        allocations.append(alloc)
        performance.append(perf)
        # Half the agents use decayed weights, like the online profiler.
        weights.append(0.9 ** np.arange(m)[::-1] if k % 2 == 0 else None)
    return allocations, performance, weights


def bench_batch_fit(n_agents: int, repeats: int) -> dict:
    allocations, performance, weights = synthetic_samples(n_agents)

    loop_fits = [
        fit_cobb_douglas(a, p, weights=w)
        for a, p, w in zip(allocations, performance, weights)
    ]
    batch_fits = fit_cobb_douglas_batch(allocations, performance, weights)
    parity = max(
        max(
            float(np.max(np.abs(lf.utility.alpha - bf.utility.alpha))),
            abs(lf.utility.scale - bf.utility.scale),
            abs(lf.r_squared - bf.r_squared),
        )
        for lf, bf in zip(loop_fits, batch_fits)
    )

    loop_s = best_of(
        repeats,
        lambda: [
            fit_cobb_douglas(a, p, weights=w)
            for a, p, w in zip(allocations, performance, weights)
        ],
    )
    batch_s = best_of(
        repeats, lambda: fit_cobb_douglas_batch(allocations, performance, weights)
    )
    return {
        "agents": n_agents,
        "parity_max_abs_diff": parity,
        "loop_seconds": round(loop_s, 6),
        "batch_seconds": round(batch_s, 6),
        "speedup": round(loop_s / batch_s, 2),
    }


def bench_agreement(n_agents: int, repeats: int) -> dict:
    rng = np.random.default_rng(7)
    agents = [
        Agent(f"t{i}", CobbDouglasUtility(rng.uniform(0.05, 1.0, size=2)))
        for i in range(n_agents)
    ]
    problem = AllocationProblem(agents, (128.0, 96.0 * 1024))

    closed = max_nash_welfare(problem, fair=False)
    numeric = max_nash_welfare(problem, fair=False, numeric=True)
    # Compare in capacity-normalized share space so both resources
    # contribute at the same scale.
    caps = problem.capacity_vector
    agreement = float(np.max(np.abs(closed.shares / caps - numeric.shares / caps)))

    closed_s = best_of(repeats, lambda: max_nash_welfare(problem, fair=False))
    numeric_s = best_of(
        repeats, lambda: max_nash_welfare(problem, fair=False, numeric=True)
    )
    return {
        "agents": n_agents,
        "max_share_diff": agreement,
        "closed_form_seconds": round(closed_s, 6),
        "slsqp_seconds": round(numeric_s, 6),
        "speedup": round(numeric_s / closed_s, 2),
    }


def _make_allocator(n_agents: int, batch_refit: bool):
    names = sorted(BENCHMARKS)
    workloads = {
        f"{names[i % len(names)]}_{i}": get_workload(names[i % len(names)])
        for i in range(n_agents)
    }
    return DynamicAllocator(
        workloads,
        capacities=(6.4 * n_agents, 1024.0 * n_agents),
        seed=2014,
        batch_refit=batch_refit,
    )


def _tick_samples(n_agents: int, epochs: int, samples_per_tick: int):
    """Pre-generated serve-style sample stream: ground-truth Cobb-Douglas
    agents measured at jittered bundles, identical for both arms."""
    rng = np.random.default_rng(2014)
    alpha = rng.uniform(0.1, 0.9, size=(n_agents, 2))
    scale = rng.uniform(0.5, 2.0, size=n_agents)
    base = np.array([6.4, 1024.0])
    ticks = []
    for _ in range(epochs):
        tick = []
        for k in range(n_agents):
            for _ in range(samples_per_tick):
                bundle = base * rng.uniform(0.6, 1.4, size=2)
                ipc = scale[k] * float(np.prod(bundle ** alpha[k]))
                ipc *= float(np.exp(rng.normal(0.0, 0.02)))
                tick.append((k, (float(bundle[0]), float(bundle[1])), ipc))
        ticks.append(tick)
    return ticks


def bench_tick(n_agents: int, epochs: int, samples_per_tick: int, repeats: int) -> dict:
    """Eager per-sample refits vs one batched refit per epoch.

    Mirrors the serve ingestion path: several externally measured
    samples per agent arrive between ticks (``observe_sample``), then
    the tick allocates and enforces (``step(measure=False)``).  Eager
    mode refits an agent's model on every accepted sample
    (``n_agents * samples_per_tick`` SVD solves per tick); batched mode
    defers to exactly one stacked fit per tick.  The fits are pure
    functions of the sample history, so both runs must land on
    identical shares.
    """
    ticks = _tick_samples(n_agents, epochs, samples_per_tick)
    final_shares = {}
    timings = {}
    for label, batch_refit in (("eager", False), ("batched", True)):
        best = float("inf")
        for _ in range(repeats):
            allocator = _make_allocator(n_agents, batch_refit)
            names = list(allocator.agent_names)
            start = time.perf_counter()
            for epoch, tick in enumerate(ticks):
                for k, bundle, ipc in tick:
                    allocator.observe_sample(names[k], bundle, ipc)
                record = allocator.step(epoch, measure=False)
            best = min(best, time.perf_counter() - start)
        timings[label] = best
        final_shares[label] = (record.enforced or record.allocation).shares

    parity = float(np.max(np.abs(final_shares["eager"] - final_shares["batched"])))
    return {
        "agents": n_agents,
        "epochs": epochs,
        "samples_per_tick": samples_per_tick,
        "parity_max_abs_diff": parity,
        "eager_seconds": round(timings["eager"], 6),
        "batched_seconds": round(timings["batched"], 6),
        "speedup": round(timings["eager"] / timings["batched"], 2),
    }


def bench_solve_batch(n_scenarios: int, n_agents: int, repeats: int) -> dict:
    rng = np.random.default_rng(99)
    problems = []
    for _ in range(n_scenarios):
        agents = [
            Agent(f"t{i}", CobbDouglasUtility(rng.uniform(0.05, 1.0, size=2)))
            for i in range(n_agents)
        ]
        problems.append(AllocationProblem(agents, (128.0, 96.0 * 1024)))

    loop = [proportional_elasticity(p) for p in problems]
    batch = solve_batch(problems, mechanism="ref")
    parity = max(
        float(np.max(np.abs(a.shares - b.shares))) for a, b in zip(loop, batch)
    )

    loop_s = best_of(repeats, lambda: [proportional_elasticity(p) for p in problems])
    batch_s = best_of(repeats, lambda: solve_batch(problems, mechanism="ref"))
    return {
        "scenarios": n_scenarios,
        "agents": n_agents,
        "parity_max_abs_diff": parity,
        "loop_seconds": round(loop_s, 6),
        "batch_seconds": round(batch_s, 6),
        "speedup": round(loop_s / batch_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--agents", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--samples-per-tick", type=int, default=4)
    parser.add_argument("--scenarios", type=int, default=50)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default="BENCH_solver.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--min-tick-speedup", type=float, default=MIN_TICK_SPEEDUP,
        help=f"fail below this controller-tick speedup (default: {MIN_TICK_SPEEDUP})",
    )
    parser.add_argument(
        "--min-fit-speedup", type=float, default=MIN_FIT_SPEEDUP,
        help=f"fail below this batched-fit speedup (default: {MIN_FIT_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    fit = bench_batch_fit(args.agents, args.repeats)
    agreement = bench_agreement(16, args.repeats)
    tick = bench_tick(args.agents, args.epochs, args.samples_per_tick, args.repeats)
    scenarios = bench_solve_batch(args.scenarios, 32, args.repeats)

    payload = {
        "batch_fit": fit,
        "closed_form_vs_slsqp": agreement,
        "controller_tick": tick,
        "solve_batch": scenarios,
        "min_tick_speedup": args.min_tick_speedup,
        "min_fit_speedup": args.min_fit_speedup,
        "fit_parity_atol": FIT_PARITY_ATOL,
        "agreement_atol": AGREEMENT_ATOL,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'leg':<22} {'baseline s':>11} {'batched s':>10} {'speedup':>8} "
          f"{'parity':>10}")
    print(f"{'batch fit':<22} {fit['loop_seconds']:>11.4f} "
          f"{fit['batch_seconds']:>10.4f} {fit['speedup']:>7.2f}x "
          f"{fit['parity_max_abs_diff']:>10.2e}")
    print(f"{'closed form vs SLSQP':<22} {agreement['slsqp_seconds']:>11.4f} "
          f"{agreement['closed_form_seconds']:>10.4f} {agreement['speedup']:>7.2f}x "
          f"{agreement['max_share_diff']:>10.2e}")
    print(f"{'controller tick':<22} {tick['eager_seconds']:>11.4f} "
          f"{tick['batched_seconds']:>10.4f} {tick['speedup']:>7.2f}x "
          f"{tick['parity_max_abs_diff']:>10.2e}")
    print(f"{'solve_batch':<22} {scenarios['loop_seconds']:>11.4f} "
          f"{scenarios['batch_seconds']:>10.4f} {scenarios['speedup']:>7.2f}x "
          f"{scenarios['parity_max_abs_diff']:>10.2e}")
    print(f"wrote {args.output}")

    failures = []
    if fit["parity_max_abs_diff"] > FIT_PARITY_ATOL:
        failures.append(
            f"batch fit parity {fit['parity_max_abs_diff']:.2e} > {FIT_PARITY_ATOL}"
        )
    if fit["speedup"] < args.min_fit_speedup:
        failures.append(
            f"batch fit speedup {fit['speedup']}x below floor {args.min_fit_speedup}x"
        )
    if agreement["max_share_diff"] > AGREEMENT_ATOL:
        failures.append(
            f"closed form vs SLSQP diff {agreement['max_share_diff']:.2e} "
            f"> {AGREEMENT_ATOL}"
        )
    if tick["parity_max_abs_diff"] > FIT_PARITY_ATOL:
        failures.append(
            f"tick parity {tick['parity_max_abs_diff']:.2e} > {FIT_PARITY_ATOL}"
        )
    if tick["speedup"] < args.min_tick_speedup:
        failures.append(
            f"tick speedup {tick['speedup']}x below floor {args.min_tick_speedup}x"
        )
    if scenarios["parity_max_abs_diff"] > 0.0:
        failures.append(
            f"solve_batch not bit-identical "
            f"({scenarios['parity_max_abs_diff']:.2e})"
        )
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
