"""Fig. 9: re-scaled elasticities (see repro.experiments.elasticities)."""

from repro.experiments import run_experiment


def test_fig09_elasticities(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig9",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig09_elasticities", result.text)
    assert result.data["mismatches"] == 0
