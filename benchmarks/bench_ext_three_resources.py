"""Extension bench (§7): REF over cores + bandwidth + cache.

The paper's future-work claim is that the mechanism extends to more
resources.  This bench runs the full three-resource pipeline — Amdahl
core scaling composed with the memory machine, 100-point sweep,
three-resource Cobb-Douglas fit, closed-form REF — and verifies that
the fairness guarantees carry over, at the same trivial cost.
"""

import numpy as np

from repro.core import (
    check_fairness,
    fit_cobb_douglas,
    proportional_elasticity,
)
from repro.core.mechanism import Agent, AllocationProblem
from repro.sim import ParallelWorkload, ThreeResourceMachine
from repro.workloads import get_workload

TENANTS = [
    ("ferret", 0.95),
    ("freqmine", 0.60),
    ("dedup", 0.85),
    ("canneal", 0.90),
]
CAPACITIES = (16.0, 48.0, 48.0 * 1024)
RESOURCES = ("cores", "membw_gbps", "cache_kb")


def three_resource_pipeline():
    machine = ThreeResourceMachine()
    lines = ["=== Extension: three-resource REF (cores, bandwidth, cache) ==="]
    lines.append(
        f"{'tenant':<10} {'f_par':>6} {'a_cores':>8} {'a_mem':>8} {'a_cache':>8} {'R^2':>6}"
    )
    agents = []
    for name, fraction in TENANTS:
        workload = ParallelWorkload(get_workload(name), fraction)
        points, ipc = machine.sweep(workload)
        fit = fit_cobb_douglas(points, ipc)
        alpha = fit.rescaled_elasticities
        lines.append(
            f"{name:<10} {fraction:>6.2f} {alpha[0]:>8.3f} {alpha[1]:>8.3f} "
            f"{alpha[2]:>8.3f} {fit.r_squared:>6.3f}"
        )
        agents.append(Agent(name, fit.utility))

    problem = AllocationProblem(agents, CAPACITIES, RESOURCES)
    allocation = proportional_elasticity(problem)
    report = check_fairness(allocation)
    lines.append("")
    lines.append(allocation.summary())
    lines.append("")
    lines.append(report.summary())
    fractions = allocation.fractions()
    dominant = [RESOURCES[int(np.argmax(row))] for row in fractions]
    lines.append(
        "dominant shares: "
        + ", ".join(f"{a.name}->{d}" for a, d in zip(problem.agents, dominant))
    )
    assert report.is_fair
    return "\n".join(lines)


def test_three_resource_extension(benchmark, write_result):
    text = benchmark.pedantic(three_resource_pipeline, rounds=1, iterations=1)
    write_result("ext_three_resources", text)
