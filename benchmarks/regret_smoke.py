"""CI ``regret-smoke`` driver (also ``make regret-smoke``).

Proves the profile-free learning path end to end, in four legs:

1. **CLI leg** — a real ``python -m repro dynamic --learn-demands``
   subprocess: 200 epochs over churny agents (an arrival and a
   departure mid-run), exit 0, ``feasible=True`` in the summary.
2. **Regret leg** — :func:`repro.experiments.regret.run_regret` scores
   the same learned trajectory against the offline-profiled oracle and
   hard-gates it: convergence epoch <= ``REPRO_REGRET_MAX_CONVERGENCE_EPOCH``
   (default 60), final-window regret <= ``REPRO_REGRET_MAX_FINAL``
   (default 0.08), cumulative regret <= ``REPRO_REGRET_MAX_CUMULATIVE``
   (default 15.0).  Each env var recalibrates its gate on slower or
   noisier runners (0 disables), mirroring ``REPRO_SERVE_MIN_RPS``.
   The full trajectory is written to ``BENCH_regret.json`` — the CI
   job uploads it (``if-no-files-found: error``) and re-asserts the
   gates from the artifact.
3. **Flat serve leg** — ``repro serve --learn-demands`` accepts a
   ``"profile": null`` agent, learns it from exploration-tagged
   samples, grants it a feasible bundle, exits cleanly on SIGTERM.
4. **Shard serve leg** — the same through ``--cells 4``: the
   coordinator proxies the profile-free register to the owning cell
   worker and the merged allocation stays feasible.

Exits non-zero on the first violation; prints a greppable
``regret-smoke OK`` line on success.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.regret import run_regret
from repro.serve import ServeClient
from repro.sim.analytic import AnalyticMachine
from repro.workloads import get_workload

EPOCHS = 200
ARTIFACT = "BENCH_regret.json"

#: The profile-less agent the serve legs admit, and the ground-truth
#: benchmark its (exploration-tagged) measurements are simulated from —
#: the server never sees this name.
MYSTERY_AGENT = "mystery"
MYSTERY_BENCH = "x264"


def _gate(env: str, default: float) -> Tuple[float, bool]:
    """An env-overridable ceiling; 0 disables the gate (slow runners)."""
    value = float(os.environ.get(env, default))
    return value, value > 0


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# Leg 1: the churny profile-free CLI run


def _cli_leg() -> int:
    command = [
        sys.executable, "-m", "repro", "dynamic",
        "--learn-demands", "--prior", "centroid",
        "--epochs", str(EPOCHS), "--seed", "2014",
        "--workloads", "streamcluster,freqmine,dedup",
        "--churn", f"{EPOCHS // 4}:add:late={MYSTERY_BENCH}",
        "--churn", f"{3 * EPOCHS // 4}:remove:late",
    ]
    result = subprocess.run(command, capture_output=True, text=True, timeout=600)
    tail = result.stdout.strip().splitlines()[-1] if result.stdout.strip() else ""
    print(f"cli leg: {tail}")
    if result.returncode != 0:
        return _fail(
            f"dynamic --learn-demands exited {result.returncode}: "
            f"{result.stderr.strip()[-400:]}"
        )
    if "feasible=True" not in result.stdout:
        return _fail("dynamic --learn-demands summary missing feasible=True")
    return 0


# ----------------------------------------------------------------------
# Leg 2: regret vs the oracle, gated and exported


def _regret_leg() -> int:
    max_convergence, gate_convergence = _gate(
        "REPRO_REGRET_MAX_CONVERGENCE_EPOCH", 60
    )
    max_final, gate_final = _gate("REPRO_REGRET_MAX_FINAL", 0.08)
    max_cumulative, gate_cumulative = _gate("REPRO_REGRET_MAX_CUMULATIVE", 15.0)

    report = run_regret(epochs=EPOCHS, seed=0)
    payload = report.as_dict()
    payload["gates"] = {
        "max_convergence_epoch": max_convergence,
        "max_final_window_regret": max_final,
        "max_cumulative_regret": max_cumulative,
        "convergence_gate_enforced": gate_convergence,
        "final_gate_enforced": gate_final,
        "cumulative_gate_enforced": gate_cumulative,
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(
        f"regret leg: convergence_epoch={report.convergence_epoch} "
        f"(<= {max_convergence:.0f}), "
        f"final_window={report.final_window_regret:.4f} (<= {max_final}), "
        f"cumulative={report.cumulative_regret:.4f} (<= {max_cumulative}) "
        f"-> {ARTIFACT}"
    )
    if gate_convergence and (
        report.convergence_epoch is None
        or report.convergence_epoch > max_convergence
    ):
        return _fail(
            f"learned allocation did not converge by epoch "
            f"{max_convergence:.0f} (got {report.convergence_epoch})"
        )
    if gate_final and report.final_window_regret > max_final:
        return _fail(
            f"final-window regret {report.final_window_regret:.4f} "
            f"> {max_final}"
        )
    if gate_cumulative and report.cumulative_regret > max_cumulative:
        return _fail(
            f"cumulative regret {report.cumulative_regret:.4f} "
            f"> {max_cumulative}"
        )
    return 0


# ----------------------------------------------------------------------
# Legs 3 + 4: profile-free agents through the real service


def _serve_leg(cells: int) -> int:
    label = f"serve leg (cells={cells})"
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--epoch-ms", "20", "--max-batch", "8",
        "--learn-demands", "--prior", "centroid",
    ]
    if cells > 1:
        # Every cell must boot non-empty: seed one profiled agent per cell.
        command += [
            "--cells", str(cells),
            "--workloads", "freqmine,dedup,streamcluster,canneal",
        ]
    else:
        command += ["--workloads", "freqmine,dedup"]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if not match:
            return _fail(f"{label}: could not parse listen line {line!r}")
        port = int(match.group(1))
        client = ServeClient("127.0.0.1", port)
        client.wait_ready(timeout=30)

        # Admit the profile-less agent: "profile": null + a class hint.
        response = client.register(MYSTERY_AGENT, None, workload_class="C")
        if MYSTERY_AGENT not in response.agents:
            return _fail(f"{label}: profile-free register not reflected: {response}")

        # Feed exploration-tagged measurements simulated from the ground
        # truth the server never saw, re-measuring at its own grants.
        # Epochs only tick when samples arrive (the batching contract),
        # so keep measuring until both floors are met.
        machine = AnalyticMachine()
        workload = get_workload(MYSTERY_BENCH)
        deadline = time.monotonic() + 90
        target = client.health().epoch + 15
        samples = 0
        while samples < 40 or client.health().epoch < target:
            if time.monotonic() > deadline:
                return _fail(
                    f"{label}: only {samples} samples / epoch "
                    f"{client.health().epoch} before timeout"
                )
            allocation = client.allocation()
            if not allocation.feasible:
                return _fail(f"{label}: infeasible allocation at {allocation.epoch}")
            try:
                bundle = allocation.bundle(MYSTERY_AGENT)
            except KeyError:
                time.sleep(0.02)  # not granted yet (first epoch)
                continue
            scale = 0.8 + 0.4 * ((samples * 7919) % 100) / 100.0
            bandwidth = max(0.5, bundle["membw_gbps"] * scale)
            cache_kb = max(96.0, bundle["cache_kb"] * scale)
            ipc = float(machine.ipc(workload, cache_kb, bandwidth))
            client.submit_sample(
                MYSTERY_AGENT, bandwidth, cache_kb, ipc, exploration=True
            )
            samples += 1

        allocation = client.allocation()
        if not allocation.feasible:
            return _fail(f"{label}: final allocation infeasible")
        bundle = allocation.bundle(MYSTERY_AGENT)
        if bundle["membw_gbps"] <= 0 or bundle["cache_kb"] <= 0:
            return _fail(f"{label}: degenerate learned bundle {bundle}")

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=30)
        if proc.returncode != 0:
            return _fail(f"{label}: server exited {proc.returncode} on SIGTERM")
        if "feasible=True" not in output:
            return _fail(f"{label}: shutdown summary missing feasible=True")
        print(
            f"{label}: profile-free {MYSTERY_AGENT!r} admitted, {samples} "
            f"exploration samples, feasible bundle "
            f"({bundle['membw_gbps']:.2f} GB/s, {bundle['cache_kb']:.0f} KB), "
            f"clean SIGTERM exit"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def main(argv: Optional[List[str]] = None) -> int:
    legs: List[Tuple[str, int]] = [
        ("cli", _cli_leg()),
        ("regret", _regret_leg()),
        ("serve-flat", _serve_leg(1)),
        ("serve-shard", _serve_leg(4)),
    ]
    failed = [name for name, code in legs if code != 0]
    if failed:
        print(f"FAIL: legs failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    summary: Dict[str, object] = json.load(open(ARTIFACT))
    print(
        f"regret-smoke OK: {EPOCHS}-epoch profile-free run converged at "
        f"epoch {summary['convergence_epoch']}, final-window regret "
        f"{summary['final_window_regret']:.4f}, cumulative "
        f"{summary['cumulative_regret']:.4f}; profile-less agent served "
        f"flat and through 4 cells"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
