"""Table 2: workload characterization (see repro.experiments.elasticities)."""

from repro.experiments import run_experiment


def test_table2_characterization(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("table2",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("table2_mixes", result.text)
    assert result.data["mismatches"] == 0
