"""CLI cold-start budget check (the `make cold-start-check` entry).

Times ``python -m repro --help`` in fresh subprocesses (best-of-N, so a
cold OS page cache or a noisy CI neighbour can't flake the gate) and
fails when the fastest run exceeds the budget.  Also asserts the
laziness contract directly: building the argument parser must import
neither NumPy nor SciPy — that, not micro-optimization, is what keeps
the cold start in the tens of milliseconds.

Run directly (``python benchmarks/check_cold_start.py``) or via
``make cold-start-check``; CI runs it in the solver-bench job.

Named outside the ``bench_*.py`` pattern on purpose: it is a timing
harness with a hard gate, not a pytest benchmark.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time

#: Default budget in milliseconds.  A lazy parser builds in ~50 ms on
#: CI-class hardware; the old eager import chain took ~700 ms.  Keep
#: headroom for slow shared runners without letting the scipy tax back in.
DEFAULT_BUDGET_MS = 400.0

# The learning flags must exist on both loop subcommands, and
# *inspecting* them — iterating `--prior`'s choices, validating a member
# — must not drag in repro.learning's NumPy stack (the PR-8
# `_LazyChoices`/metavar regression class: a flag whose choices come
# from a heavy module defeats the lazy-parser contract).
LAZINESS_PROBE = """\
import argparse
import sys

import repro.cli

parser = repro.cli.build_parser()
subs = next(a for a in parser._actions if isinstance(a, argparse._SubParsersAction))
for c in ('dynamic', 'serve'):
    actions = {o: a for a in subs.choices[c]._actions for o in a.option_strings}
    assert '--learn-demands' in actions, f'{c}: missing --learn-demands'
    prior = actions.get('--prior')
    assert prior is not None, f'{c}: missing --prior'
    assert tuple(prior.choices) == ('equal', 'centroid'), prior.choices
    assert 'equal' in prior.choices and prior.metavar == 'PRIOR', prior
heavy = sorted(m for m in ('numpy', 'scipy') if m in sys.modules)
sys.exit(f'parser imported {heavy}' if heavy else 0)
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--budget-ms", type=float, default=DEFAULT_BUDGET_MS,
        help=f"fail above this best-of-N wall clock (default: {DEFAULT_BUDGET_MS})",
    )
    args = parser.parse_args(argv)

    probe = subprocess.run(
        [sys.executable, "-c", LAZINESS_PROBE], capture_output=True, text=True
    )
    if probe.returncode != 0:
        print(
            f"laziness probe failed: {probe.stderr.strip() or probe.stdout.strip()}",
            file=sys.stderr,
        )
        return 1

    best_ms = float("inf")
    for _ in range(args.repeats):
        start = time.perf_counter()
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"], capture_output=True
        )
        elapsed_ms = (time.perf_counter() - start) * 1e3
        if result.returncode != 0:
            print(
                f"`python -m repro --help` exited {result.returncode}:\n"
                f"{result.stderr.decode(errors='replace')}",
                file=sys.stderr,
            )
            return 1
        best_ms = min(best_ms, elapsed_ms)

    status = "OK" if best_ms <= args.budget_ms else "OVER BUDGET"
    print(
        f"cold start: best-of-{args.repeats} {best_ms:.1f} ms "
        f"(budget {args.budget_ms:.0f} ms) {status}; "
        f"parser imports no numpy/scipy"
    )
    if best_ms > args.budget_ms:
        print(
            f"cold start {best_ms:.1f} ms exceeds budget {args.budget_ms:.0f} ms",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
