"""Ablation: DRAM page policy (closed vs open) on the trace machine.

Table 1 fixes a closed-page controller; DRAMSim2 (and real parts) also
run open-page.  The event-driven channel supports both, so this
ablation quantifies the choice on real miss streams.  Measured outcome:
row hits are scarce (6-33%) because the hot, Zipf and streaming regions
interleave within every bank, so conflicts dominate and open-page is
never a win here — evidence that Table 1's closed-page choice is the
right default for consolidated multiprogrammed workloads.
"""

from dataclasses import replace

from repro.sim import PlatformConfig, TraceMachine
from repro.workloads import get_workload

WORKLOADS = ("freqmine", "canneal", "dedup", "ocean_cp")
POINT = (512.0, 3.2)  # cache KB, bandwidth GB/s


def page_policy_table():
    lines = ["=== Ablation: DRAM page policy, IPC at (512 KB, 3.2 GB/s) ==="]
    lines.append(
        f"{'workload':<10} {'group':>6} {'closed IPC':>11} {'open IPC':>9} "
        f"{'open gain':>10} {'row-hit rate':>13}"
    )
    for name in WORKLOADS:
        workload = get_workload(name)
        results = {}
        for policy in ("closed", "open"):
            platform = PlatformConfig()
            platform = replace(platform, dram=replace(platform.dram, page_policy=policy))
            machine = TraceMachine(platform, n_instructions=150_000)
            results[policy] = machine.simulate(workload, *POINT)
        closed_ipc = results["closed"].ipc
        open_ipc = results["open"].ipc
        hit_rate = results["open"].dram_row_hit_rate
        lines.append(
            f"{name:<10} {workload.expected_group:>6} {closed_ipc:>11.3f} "
            f"{open_ipc:>9.3f} {(open_ipc / closed_ipc - 1) * 100:>9.1f}% "
            f"{hit_rate * 100:>12.1f}%"
        )
    lines.append(
        "\nmultiprogrammed-style miss streams thrash the row buffers (hot, Zipf\n"
        "and streaming regions interleave within each bank), so row hits are\n"
        "scarce and conflicts erase open-page's advantage — the classic reason\n"
        "consolidation-era controllers run closed-page, exactly Table 1's choice."
    )
    return "\n".join(lines)


def test_page_policy_ablation(benchmark, write_result):
    text = benchmark.pedantic(page_policy_table, rounds=1, iterations=1)
    write_result("page_policy_ablation", text)
