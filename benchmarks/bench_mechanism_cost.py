"""§5.5: mechanism cost (see repro.experiments.strategic)."""

from repro.core.mechanism import proportional_elasticity
from repro.experiments import run_experiment
from repro.experiments.strategic import population
from repro.optimize import equal_slowdown, max_nash_welfare


def test_mechanism_cost_table(benchmark, write_result):
    result = benchmark.pedantic(run_experiment, args=("cost",), rounds=1, iterations=1)
    write_result("mechanism_cost", result.text)
    # The closed form must beat the convex solvers by orders of magnitude.
    timings = result.data["timings"]
    assert timings[8]["fair_ms"] / timings[8]["ref_ms"] > 50


def test_ref_closed_form_speed(benchmark):
    problem = population(64, seed=7)
    benchmark(proportional_elasticity, problem)


def test_equal_slowdown_speed(benchmark):
    problem = population(8, seed=7)
    benchmark.pedantic(equal_slowdown, args=(problem,), rounds=2, iterations=1)


def test_max_welfare_fair_speed(benchmark):
    problem = population(8, seed=7)
    benchmark.pedantic(
        max_nash_welfare, args=(problem,), kwargs={"fair": True}, rounds=2, iterations=1
    )
