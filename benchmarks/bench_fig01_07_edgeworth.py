"""Figs. 1-7: Edgeworth-box geometry (see repro.experiments.edgeworth_box)."""

from repro.experiments import run_experiment


def test_fig01_07_edgeworth_geometry(benchmark, write_result):
    result = benchmark.pedantic(run_experiment, args=("fig1-7",), rounds=1, iterations=1)
    write_result("fig01_07_edgeworth", result.text)
    assert result.data["ref_inside_fair_set"]
