"""Ablation: how the price of fairness depends on mix composition.

Fig. 13 reports five hand-picked mixes.  This sweep asks the systematic
question behind it: as a 4-agent mix shifts from all-cache-loving (4C)
to all-bandwidth-loving (4M), how does the fairness penalty — REF
versus the unfair Nash-welfare maximum — change?  For each composition
xC-yM we draw several random member sets from the calibrated suite and
report the mean and worst penalty.

Measured answer: the paper's <10% headline is not an artifact of its
five mixes — penalties stay under ~10% across *every* composition and
random member draw.  Composition alone does not determine the price;
what REF's re-scaling changes is driven by heterogeneity in the raw
elasticity magnitudes within the mix.
"""

import numpy as np

from repro.core import proportional_elasticity, weighted_system_throughput
from repro.optimize import max_nash_welfare
from repro.workloads import problem_from_fits, workloads_by_group
from repro.workloads.mixes import WorkloadMix

N_DRAWS = 4
N_AGENTS = 4
CAPACITIES = (24.0, 12.0 * 1024)


def composition_mixes(n_m, rng):
    """Random 4-agent member tuples with exactly ``n_m`` group-M members."""
    c_names = [w.name for w in workloads_by_group("C")]
    m_names = [w.name for w in workloads_by_group("M")]
    for _ in range(N_DRAWS):
        members = list(rng.choice(c_names, size=N_AGENTS - n_m, replace=False))
        members += list(rng.choice(m_names, size=n_m, replace=False))
        yield tuple(members)


def penalty_sweep(profiler):
    rng = np.random.default_rng(42)
    fits = profiler.fit_suite()
    lines = ["=== Ablation: fairness penalty vs mix composition (4 agents) ==="]
    lines.append(f"{'composition':<12} {'mean penalty %':>15} {'worst penalty %':>16}")
    for n_m in range(N_AGENTS + 1):
        penalties = []
        for members in composition_mixes(n_m, rng):
            label = f"{N_AGENTS - n_m}C-{n_m}M" if 0 < n_m < N_AGENTS else (
                f"{N_AGENTS}C" if n_m == 0 else f"{N_AGENTS}M"
            )
            mix = WorkloadMix("+".join(members), members, label)
            problem = problem_from_fits(mix, fits, CAPACITIES)
            ref = weighted_system_throughput(proportional_elasticity(problem))
            unfair = weighted_system_throughput(max_nash_welfare(problem, fair=False))
            penalties.append(max(1.0 - ref / unfair, 0.0))
        label = f"{N_AGENTS - n_m}C-{n_m}M"
        lines.append(
            f"{label:<12} {np.mean(penalties) * 100:>15.2f} {np.max(penalties) * 100:>16.2f}"
        )
    lines.append(
        "\nthe <10% fairness penalty generalizes across compositions and random\n"
        "member draws — it is not an artifact of the paper's five chosen mixes."
    )
    return "\n".join(lines)


def test_penalty_vs_composition(benchmark, profiler, write_result):
    text = benchmark.pedantic(penalty_sweep, args=(profiler,), rounds=1, iterations=1)
    write_result("penalty_vs_composition", text)
