"""CI ``shard-smoke`` driver (also ``make shard-smoke``).

Boots the sharded allocation service — ``python -m repro serve
--cells 4``, i.e. a coordinator subprocess that itself spawns 4 cell
worker subprocesses — then exercises the whole failure story:

1. **Healthy load**: 3 concurrent clients register through the
   coordinator and run the submit-sample / read-allocation loop;
   every merged allocation must be capacity-feasible and tagged
   ``ref-hierarchical``.
2. **Kill**: one cell worker is SIGKILLed mid-run.  The coordinator
   must *degrade*, not fail: the dead cell's agents re-hash onto the
   survivors (rendezvous placement, so nobody else moves) and
   ``/healthz`` reports ``degraded`` with every agent still present.
3. **Degraded load**: the same clients run a second wave; allocations
   must be feasible again under the full global capacity, and
   ``/metrics`` must parse strictly with the ``repro_shard_*`` families
   present (3 live cells, >= 1 rebalance, every orphan counted).
4. **Shutdown**: SIGTERM must exit 0 with ``feasible=True`` in the
   shutdown summary line.

Exits non-zero on the first violation; prints a greppable
``shard-smoke OK`` line on success.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.core.registry import hierarchical_mechanism_names
from repro.obs import parse_prometheus_text
from repro.serve import ServeClient
from repro.sim.analytic import AnalyticMachine
from repro.workloads import get_workload

CELLS = 4
#: Seed agents handed to the coordinator (>= 1 per cell required).
SEED_AGENTS = "s0=freqmine,s1=dedup,s2=canneal,s3=x264,s4=ferret,s5=streamcluster"
CLIENT_BENCHMARKS = ("canneal", "x264", "streamcluster")
REQUESTS_PER_WAVE = 20


class _SmokeClient(threading.Thread):
    """One agent: a wave of measure-submit-read requests, then park."""

    def __init__(
        self, benchmark: str, port: int, errors: List[str], expected_tag: str
    ):
        super().__init__(name=f"shard-smoke-{benchmark}", daemon=True)
        self.agent = f"smoke_{benchmark}"
        self.benchmark = benchmark
        self.workload = get_workload(benchmark)
        self.machine = AnalyticMachine()
        self.client = ServeClient("127.0.0.1", port)
        self.errors = errors
        self.expected_tag = expected_tag
        self.samples = 0
        self._go = threading.Event()
        self._done = threading.Event()

    def start_wave(self) -> None:
        self._done.clear()
        self._go.set()

    def wait_wave(self, timeout: float = 120.0) -> bool:
        return self._done.wait(timeout)

    def run(self) -> None:
        try:
            self.client.register(self.agent, self.benchmark)
            for _wave in range(2):
                self._go.wait()
                self._go.clear()
                for _ in range(REQUESTS_PER_WAVE):
                    allocation = self.client.allocation()
                    if not allocation.feasible:
                        self.errors.append(
                            f"{self.agent}: infeasible allocation at epoch "
                            f"{allocation.epoch}"
                        )
                        return
                    if allocation.mechanism != self.expected_tag:
                        self.errors.append(
                            f"{self.agent}: unexpected mechanism "
                            f"{allocation.mechanism!r}"
                        )
                        return
                    bundle = allocation.bundle(self.agent)
                    scale = 0.85 + 0.3 * ((self.samples * 7919) % 100) / 100.0
                    bandwidth = max(0.5, bundle["membw_gbps"] * scale)
                    cache_kb = max(96.0, bundle["cache_kb"] * scale)
                    ipc = float(self.machine.ipc(self.workload, cache_kb, bandwidth))
                    self.client.submit_sample(self.agent, bandwidth, cache_kb, ipc)
                    self.samples += 1
                self._done.set()
        except Exception as error:  # surfaced by the main thread
            self.errors.append(f"{self.agent}: {type(error).__name__}: {error}")
            self._done.set()


def _run_wave(threads: List[_SmokeClient], errors: List[str], label: str) -> bool:
    for thread in threads:
        thread.start_wave()
    for thread in threads:
        if not thread.wait_wave():
            errors.append(f"{thread.name}: {label} wave did not finish in time")
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return False
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mechanism", default="ref", choices=hierarchical_mechanism_names(),
        help="within-cell mechanism the workers run (registry-sourced)",
    )
    args = parser.parse_args(argv)
    expected_tag = f"{args.mechanism}-hierarchical"
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--cells", str(CELLS),
        "--epoch-ms", "20", "--grant-ms", "80", "--max-batch", "8",
        "--agents", SEED_AGENTS,
        "--mechanism", args.mechanism,
    ]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    try:
        line = proc.stdout.readline()
        print(line.rstrip())
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if not match:
            print(f"FAIL: could not parse listen line {line!r}", file=sys.stderr)
            return 1
        port = int(match.group(1))
        probe = ServeClient("127.0.0.1", port)
        probe.wait_ready(timeout=60)

        cells = probe.cells()
        if len(cells.cells) != CELLS or not all(c.alive for c in cells.cells):
            print(f"FAIL: expected {CELLS} live cells, got {cells}", file=sys.stderr)
            return 1

        errors: List[str] = []
        threads = [
            _SmokeClient(b, port, errors, expected_tag) for b in CLIENT_BENCHMARKS
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.2)  # registrations land before the first wave
        if not _run_wave(threads, errors, "healthy"):
            return 1
        if probe.health().status != "ok":
            print(f"FAIL: fleet not healthy: {probe.health()}", file=sys.stderr)
            return 1

        # Kill one worker mid-run and wait for the rendezvous re-hash.
        cells = probe.cells()
        victim = max(cells.cells, key=lambda c: len(c.agents))
        orphans = set(victim.agents)
        stay_put: Dict[str, str] = {
            agent: cell.cell
            for cell in cells.cells
            if cell.cell != victim.cell
            for agent in cell.agents
        }
        print(f"shard-smoke: SIGKILL {victim.cell} (pid {victim.pid}), "
              f"orphaning {sorted(orphans)}")
        os.kill(victim.pid, signal.SIGKILL)

        deadline = time.monotonic() + 30
        while True:
            if time.monotonic() > deadline:
                print("FAIL: rebalance never happened", file=sys.stderr)
                return 1
            time.sleep(0.1)
            now = probe.cells()
            dead = next(c for c in now.cells if c.cell == victim.cell)
            placed = {
                agent: cell.cell
                for cell in now.cells
                if cell.alive
                for agent in cell.agents
            }
            if not dead.alive and orphans <= set(placed):
                break
        moved = {a: c for a, c in placed.items() if stay_put.get(a, c) != c}
        if moved:
            print(f"FAIL: non-orphaned agents moved cells: {moved}", file=sys.stderr)
            return 1

        health = probe.health()
        if health.status != "degraded":
            print(f"FAIL: expected degraded health, got {health}", file=sys.stderr)
            return 1
        expected_agents = set(stay_put) | orphans
        if set(health.agents) != expected_agents:
            print(
                f"FAIL: agents lost in rebalance: {expected_agents - set(health.agents)}",
                file=sys.stderr,
            )
            return 1

        # Second wave on the degraded fleet: still serving, still feasible.
        if not _run_wave(threads, errors, "degraded"):
            return 1
        allocation = probe.allocation()
        if not allocation.feasible or set(allocation.shares) != expected_agents:
            print(f"FAIL: bad degraded allocation {allocation}", file=sys.stderr)
            return 1

        samples = parse_prometheus_text(probe.metrics_text())  # strict or raise
        by_name: Dict[str, float] = {}
        for sample in samples:
            by_name.setdefault(sample["name"], 0.0)
            by_name[sample["name"]] += sample["value"]
        if by_name.get("repro_shard_cells") != CELLS - 1:
            print(
                f"FAIL: repro_shard_cells = {by_name.get('repro_shard_cells')}, "
                f"wanted {CELLS - 1}",
                file=sys.stderr,
            )
            return 1
        if by_name.get("repro_shard_agents_rehashed_total", 0.0) < len(orphans):
            print(
                f"FAIL: rehashed counter "
                f"{by_name.get('repro_shard_agents_rehashed_total')} < {len(orphans)}",
                file=sys.stderr,
            )
            return 1
        if by_name.get("repro_shard_rebalances_total", 0.0) < 1:
            print("FAIL: no rebalance counted", file=sys.stderr)
            return 1

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=60)
        print(output.rstrip())
        if proc.returncode != 0:
            print(f"FAIL: coordinator exited {proc.returncode}", file=sys.stderr)
            return 1
        if "feasible=True" not in output:
            print("FAIL: shutdown summary missing feasible=True", file=sys.stderr)
            return 1
        submitted = sum(thread.samples for thread in threads)
        print(
            f"shard-smoke OK: {CELLS} cells ({expected_tag}), {len(threads)} "
            f"clients, {submitted} samples, 1 worker killed, {len(orphans)} "
            f"agents rehashed, degraded fleet stayed feasible, clean SIGTERM exit"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
