"""Ablation: next-line prefetching and the cache/bandwidth trade-off.

The substrate models demand misses only; real LLCs prefetch.  This
ablation turns on a classic next-line L2 prefetcher and measures how
much of each workload class's DRAM demand it removes:

* streaming-heavy (M-group) reference streams are exactly what
  next-line prefetching catches — their *latency* exposure shrinks,
  but every prefetch still consumes bandwidth, so their bandwidth
  elasticity story survives;
* irregular cache-loving (C-group) streams see little benefit.

This quantifies a deliberate modeling simplification (DESIGN.md): with
prefetching, the C/M *classification* would be driven even more by
bandwidth demand and less by latency — strengthening, not weakening,
the substitution structure REF exploits.
"""

from repro.sim import CacheHierarchy, TABLE1_PLATFORM
from repro.sim.trace import generate_trace
from repro.workloads import get_workload

WORKLOADS = ("raytrace", "freqmine", "canneal", "dedup", "ocean_cp")
N_ACCESSES = 60_000


def prefetch_table():
    lines = ["=== Ablation: next-line L2 prefetching (demand misses per 1k accesses) ==="]
    lines.append(
        f"{'workload':<12} {'group':>6} {'no prefetch':>12} {'prefetch':>9} "
        f"{'miss reduction':>15} {'extra fills':>12}"
    )
    for name in WORKLOADS:
        workload = get_workload(name)
        trace = generate_trace(workload.locality, N_ACCESSES, seed=17)
        results = {}
        for prefetch in (False, True):
            hierarchy = CacheHierarchy(
                TABLE1_PLATFORM.l1,
                TABLE1_PLATFORM.l2,
                next_line_prefetch=prefetch,
            )
            hierarchy.warm(workload.locality.top_lines(TABLE1_PLATFORM.l2.n_lines))
            hierarchy.run(trace)
            results[prefetch] = (
                hierarchy.l2.stats.misses,
                hierarchy.prefetches_issued,
            )
        base = results[False][0]
        with_pf, fills = results[True]
        reduction = (1 - with_pf / base) * 100 if base else 0.0
        lines.append(
            f"{name:<12} {workload.expected_group:>6} "
            f"{base / N_ACCESSES * 1000:>12.1f} {with_pf / N_ACCESSES * 1000:>9.1f} "
            f"{reduction:>14.1f}% {fills:>12d}"
        )
    lines.append(
        "\nstreaming-heavy workloads shed the most demand misses; prefetch fills\n"
        "replace them as bandwidth consumers, so bandwidth remains the binding\n"
        "resource for group M — the substitution structure REF fits is intact."
    )
    return "\n".join(lines)


def test_prefetch_ablation(benchmark, write_result):
    text = benchmark.pedantic(prefetch_table, rounds=1, iterations=1)
    write_result("prefetch_ablation", text)
