"""§4.3: strategy-proofness in the large (see repro.experiments.strategic)."""

from repro.core.spl import best_response, max_manipulation_gain
from repro.experiments import run_experiment
from repro.experiments.strategic import population


def test_spl_scaling(benchmark, write_result):
    result = benchmark.pedantic(run_experiment, args=("spl",), rounds=1, iterations=1)
    write_result("spl_scaling", result.text)
    gains = result.data["worst_gain"]
    assert gains[64] < gains[2]
    assert gains[64] < 1e-3


def test_best_response_cost(benchmark):
    problem = population(64)
    alpha = problem.rescaled_alpha_matrix()
    others = alpha.sum(axis=0) - alpha[0]
    benchmark(best_response, alpha[0], others, problem.capacity_vector)


def test_max_manipulation_gain_64(benchmark):
    problem = population(64)
    result = benchmark.pedantic(
        max_manipulation_gain, args=(problem, range(4)), rounds=1, iterations=1
    )
    assert result < 5e-3
