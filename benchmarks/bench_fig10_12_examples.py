"""Figs. 10-12: mechanism examples (see repro.experiments.mechanism_examples)."""

from repro.experiments import run_experiment


def test_fig10_12_examples(benchmark, profiler, write_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig10-12",), kwargs={"profiler": profiler}, rounds=1, iterations=1
    )
    write_result("fig10_12_examples", result.text)
    # REF must be fair (SI, EF, PE) in every example.
    for verdicts in result.data["verdicts"].values():
        assert verdicts["proportional elasticity"] == (True, True, True)
