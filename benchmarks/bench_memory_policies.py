"""Memory-scheduler comparison on the prior-work unfairness index (§6).

The paper frames prior fairness work as memory schedulers that optimize
the *unfairness index* — the ratio between the maximum and minimum
slowdown among co-running workloads (Gabor et al., Mutlu &
Moscibroda).  With the shared-machine co-simulator we can measure that
index directly for:

* FCFS               — no fairness substrate (the baseline);
* STFM-like          — serve the currently most-slowed agent (the
  equal-slowdown philosophy, in hardware);
* WFQ, equal weights — fair queueing with an equal split;
* WFQ, REF weights   — fair queueing enforcing the REF bandwidth
  shares (with REF's cache partition).

STFM-style scheduling minimizes the unfairness index — that is its
objective — while REF trades a little slowdown equality for its
game-theoretic guarantees (SI/EF/PE in utility space).
"""

from repro.core import proportional_elasticity
from repro.sched import build_agent_shares
from repro.sim import AgentShare, CacheConfig, DramConfig, PlatformConfig, SharedMachine
from repro.workloads import get_mix, problem_from_fits

PLATFORM = PlatformConfig(
    l2=CacheConfig(size_kb=12 * 1024, ways=16, latency_cycles=20),
    dram=DramConfig(bandwidth_gbps=6.4, channel_gbps=6.4),  # contended channel
)
CAPACITIES = (6.4, 12.0 * 1024)
MIXES = ("WD2", "WD3", "WD5")
N_INSTRUCTIONS = 60_000


def policy_runs(mix_name, profiler, machine):
    mix = get_mix(mix_name)
    fits = {m: profiler.fit(w) for m, w in zip(mix.members, mix.workloads())}
    problem = problem_from_fits(mix, fits, CAPACITIES)
    workload_of = dict(zip(mix.agent_names(), mix.workloads()))

    ref_shares = build_agent_shares(
        proportional_elasticity(problem), PLATFORM.l2, workload_of
    )
    equal_ways = PLATFORM.l2.ways // problem.n_agents
    equal_shares = [
        AgentShare(name, workload_of[name], CAPACITIES[0] / problem.n_agents, equal_ways)
        for name in workload_of
    ]

    alone = {
        share.name: machine.run_alone(share).ipc[share.name] for share in equal_shares
    }
    runs = {
        "FCFS": machine.run(equal_shares, policy="fcfs"),
        "STFM-like": machine.run(equal_shares, policy="stfm"),
        "WFQ equal": machine.run(equal_shares, policy="wfq"),
        "WFQ + REF shares": machine.run(ref_shares, policy="wfq"),
    }
    return alone, runs


def unfairness_table(profiler):
    machine = SharedMachine(PLATFORM, n_instructions=N_INSTRUCTIONS)
    lines = ["=== Memory schedulers: unfairness index (max/min slowdown) ==="]
    header = f"{'mix':<6}" + "".join(
        f"{name:>18}" for name in ("FCFS", "STFM-like", "WFQ equal", "WFQ + REF shares")
    )
    lines.append(header)
    for mix_name in MIXES:
        alone, runs = policy_runs(mix_name, profiler, machine)
        row = f"{mix_name:<6}"
        for name in ("FCFS", "STFM-like", "WFQ equal", "WFQ + REF shares"):
            result = runs[name]
            index = result.unfairness_index(result.slowdowns(alone))
            row += f"{index:>18.3f}"
        lines.append(row)
    lines.append(
        "\nSTFM-style scheduling targets slowdown equality directly; REF accepts a\n"
        "somewhat higher unfairness index in exchange for SI/EF/PE — the paper's\n"
        "point that equal slowdown and game-theoretic fairness are different goals."
    )
    return "\n".join(lines)


def test_memory_policy_unfairness(benchmark, profiler, write_result):
    text = benchmark.pedantic(unfairness_table, args=(profiler,), rounds=1, iterations=1)
    write_result("memory_policies", text)
