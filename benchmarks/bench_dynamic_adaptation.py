"""Dynamic-adaptation bench: how fast on-line REF tracks phase changes.

Extends §4.4's on-line profiling into a measurable property: after a
workload flips from a cache-loving to a bandwidth-loving phase, how
many epochs until the controller's reported elasticities cross to the
new phase's side of 0.5?  Swept over the history-decay factor — the
design knob DESIGN.md calls out (no decay never re-converges; heavy
decay is jittery).
"""

import numpy as np

from repro.dynamic import DynamicAllocator, Phase, PhasedWorkload
from repro.workloads import get_workload

CAPACITIES = (12.8, 2048.0)
PHASE_LENGTH = 15
DECAYS = (1.0, 0.9, 0.75, 0.5)


def epochs_to_cross(cache_series, flip_epoch, target_below=0.5, patience=None):
    """Epochs after the flip until the report crosses to the new side."""
    horizon = len(cache_series)
    for epoch in range(flip_epoch, horizon):
        if cache_series[epoch] < target_below:
            return epoch - flip_epoch
    return None


def adaptation_table():
    lines = ["=== Dynamic adaptation: epochs to re-converge after a phase flip ==="]
    lines.append(f"{'decay':>6} {'epochs to adapt':>16} {'late-phase a_cache':>19}")
    phased = PhasedWorkload(
        "phasey",
        [Phase(get_workload("freqmine"), PHASE_LENGTH), Phase(get_workload("dedup"), PHASE_LENGTH)],
    )
    for decay in DECAYS:
        allocator = DynamicAllocator(
            {"phasey": phased, "steady": get_workload("canneal")},
            capacities=CAPACITIES,
            decay=decay,
            seed=4,
        )
        result = allocator.run(2 * PHASE_LENGTH)
        series = result.reported_series("phasey", resource=1)
        lag = epochs_to_cross(series, PHASE_LENGTH)
        tail = float(np.mean(series[-4:]))
        lines.append(
            f"{decay:>6.2f} {str(lag) if lag is not None else 'never':>16} {tail:>19.3f}"
        )
    lines.append(
        "\nwithout decay the stale cache-loving evidence lingers; moderate decay\n"
        "re-converges within a few epochs of the phase flip."
    )
    return "\n".join(lines)


def test_dynamic_adaptation(benchmark, write_result):
    text = benchmark.pedantic(adaptation_table, rounds=1, iterations=1)
    write_result("dynamic_adaptation", text)
