"""Async load generator for the REF allocation service.

Starts an :class:`~repro.serve.server.AllocationServer` in-process on an
ephemeral port, then drives it with N concurrent asyncio clients that
register, submit measured IPC samples and read back allocations —
connection-per-request, like real scrape/submit traffic.  Reports
client-observed p50/p99 request latency and the achieved
allocations/sec, and *hard-asserts* the batching contract: the
mechanism is solved exactly once per epoch tick, so the solve count
stays far below the sample count regardless of client concurrency.

Writes ``BENCH_serve.json`` (consumed by the CI ``service-smoke`` job's
artifact upload and quoted in ``docs/service.md``)::

    python benchmarks/bench_serve_load.py --clients 8 --requests 100

Exits non-zero when any request fails, any allocation is infeasible, or
the batching assertion does not hold.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from typing import Dict, List, Tuple

from repro.dynamic import DynamicAllocator
from repro.obs import MetricsRegistry
from repro.serve import AllocationServer, BatchPolicy
from repro.serve.protocol import parse_json
from repro.sim.analytic import AnalyticMachine
from repro.workloads import get_workload

#: Benchmarks cycled across the generated client agents.
CLIENT_BENCHMARKS = ("canneal", "x264", "streamcluster", "ferret", "fluidanimate")


async def _http_request(
    host: str, port: int, method: str, path: str, payload=None
) -> Tuple[int, str]:
    """One connection-per-request HTTP exchange (the server closes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    header_blob, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, response_body.decode("utf-8", "replace")


class _LoadClient:
    """One simulated agent: register, then submit/read in a loop."""

    def __init__(self, index: int, host: str, port: int, latencies: List[float]):
        self.index = index
        self.agent = f"load{index}"
        self.benchmark = CLIENT_BENCHMARKS[index % len(CLIENT_BENCHMARKS)]
        self.workload = get_workload(self.benchmark)
        self.machine = AnalyticMachine()
        self.host, self.port = host, port
        self.latencies = latencies
        self.samples_sent = 0
        self.allocations_read = 0

    async def _timed(self, method: str, path: str, payload=None) -> Dict[str, object]:
        start = time.perf_counter()
        status, text = await _http_request(self.host, self.port, method, path, payload)
        self.latencies.append(time.perf_counter() - start)
        if status != 200:
            raise RuntimeError(f"{method} {path} -> HTTP {status}: {text[:200]}")
        return parse_json(text)

    async def run(self, requests: int) -> None:
        await self._timed(
            "POST",
            "/v1/agents",
            {"action": "register", "agent": self.agent, "workload": self.benchmark},
        )
        bundle = None
        for i in range(requests):
            if bundle is None or i % 5 == 0:
                data = await self._timed("GET", "/v1/allocation")
                if not data["feasible"]:
                    raise RuntimeError(f"infeasible allocation at epoch {data['epoch']}")
                bundle = data["shares"][self.agent]
                self.allocations_read += 1
            else:
                # Measure at a jittered bundle so the on-line fits stay
                # identified (pure repeats carry no regression signal).
                jitter = 0.8 + 0.4 * ((i * 2654435761 + self.index * 40503) % 1000) / 1000.0
                bandwidth = max(0.5, bundle["membw_gbps"] * jitter)
                cache_kb = max(96.0, bundle["cache_kb"] * jitter)
                ipc = float(self.machine.ipc(self.workload, cache_kb, bandwidth))
                await self._timed(
                    "POST",
                    "/v1/samples",
                    {
                        "agent": self.agent,
                        "bandwidth_gbps": bandwidth,
                        "cache_kb": cache_kb,
                        "ipc": ipc,
                    },
                )
                self.samples_sent += 1


async def _run_load(args) -> Dict[str, object]:
    registry = MetricsRegistry()
    allocator = DynamicAllocator(
        {
            "freqmine": get_workload("freqmine"),
            "dedup": get_workload("dedup"),
        },
        capacities=(6.4 * (2 + args.clients), 1024.0 * (2 + args.clients)),
        seed=args.seed,
        metrics=registry,
    )
    server = AllocationServer(
        allocator,
        policy=BatchPolicy(max_delay=args.epoch_ms / 1000.0, max_batch=args.max_batch),
        metrics=registry,
    )
    await server.start()
    latencies: List[float] = []
    clients = [
        _LoadClient(i, server.host, server.port, latencies)
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    try:
        await asyncio.gather(*(client.run(args.requests) for client in clients))
    finally:
        elapsed = time.perf_counter() - started
        server.request_stop()
        await server.stop()

    epochs = registry.get("repro_dynamic_epochs_total")
    n_epochs = int(epochs.value) if epochs is not None else 0
    samples = sum(c.samples_sent for c in clients)
    requests = len(latencies)
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    # The batching contract: one mechanism solve per epoch tick, ticks
    # triggered only by startup, churn, policy flushes and shutdown.
    ticks = 0
    for trigger in ("startup", "churn", "max_batch", "max_delay", "shutdown"):
        child = registry.get("repro_serve_batches_total", trigger=trigger)
        if child is not None:
            ticks += int(child.value)
    dynamic_events = registry.get("repro_dynamic_events_total", kind="allocation_fallback")
    result = {
        "clients": args.clients,
        "requests_per_client": args.requests,
        "epoch_ms": args.epoch_ms,
        "max_batch": args.max_batch,
        "requests": requests,
        "samples": samples,
        "epochs": n_epochs,
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": round(quantile(0.50) * 1e3, 3),
        "p99_ms": round(quantile(0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "requests_per_sec": round(requests / elapsed, 1),
        "allocations_per_sec": round(n_epochs / elapsed, 1),
        "allocation_fallbacks": int(dynamic_events.value) if dynamic_events else 0,
        "solves_equal_ticks": n_epochs == ticks,
        "batched": samples > n_epochs,
    }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=100, help="requests per client")
    parser.add_argument("--epoch-ms", type=float, default=10.0)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    result = asyncio.run(_run_load(args))
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(
        f"serve-load: {result['clients']} clients, {result['requests']} requests "
        f"in {result['elapsed_seconds']}s — p50 {result['p50_ms']}ms, "
        f"p99 {result['p99_ms']}ms, {result['requests_per_sec']} req/s, "
        f"{result['allocations_per_sec']} allocations/s, "
        f"{result['samples']} samples -> {result['epochs']} solves"
    )
    if not result["solves_equal_ticks"]:
        print("FAIL: mechanism solved more than once per epoch tick", file=sys.stderr)
        return 1
    if not result["batched"]:
        print(
            "FAIL: batching did not coalesce samples "
            f"({result['samples']} samples, {result['epochs']} solves)",
            file=sys.stderr,
        )
        return 1
    print(f"serve-load OK: wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
