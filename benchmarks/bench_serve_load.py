"""Async load generator for the REF allocation service.

Starts an :class:`~repro.serve.server.AllocationServer` in-process on an
ephemeral port, then drives it with N concurrent asyncio clients that
register, submit measured IPC samples and read back allocations.  The
flat server is measured along a ``connection_reuse`` axis:

* **close** — one TCP connection per request, single-sample POSTs: the
  pre-keep-alive traffic shape, kept as the baseline;
* **keep-alive** — one persistent connection per client, bulk
  ``POST /v1/samples`` arrays and snapshot-served GETs: the
  high-throughput data plane.  The headline ``requests_per_sec`` (and
  the CI floor, ``REPRO_SERVE_MIN_RPS``, default 2320 — 10x the
  connection-per-request seed) comes from this run.

Reports client-observed p50/p99 request latency and the achieved
allocations/sec, and *hard-asserts* the batching contract: the
mechanism is solved exactly once per epoch tick, so the solve count
stays far below the sample count regardless of client concurrency.

It then sweeps the *sharded* service (``--cells``, default ``1,4``): a
:class:`~repro.serve.shard.ShardCoordinator` per cell count, cell
workers as real subprocesses, clients registering through the
coordinator and then — the smart-client pattern — submitting bulk
samples directly to the cell that owns them (``GET /v1/cells``) over
persistent connections.  The sweep writes a ``cells_axis`` into the
JSON plus ``shard_speedup`` (max-cells vs 1-cell throughput) and
``hierarchical_parity_max_gap`` (coordinator split vs flat solve).  The
speedup floor is enforced only on machines with >= 4 CPUs (one core per
cell worker is the whole point); elsewhere the bench prints a loud
``shard-gate: skipped (cpus=N)`` line and records the skip reason in
the JSON.  Override with ``REPRO_SHARD_MIN_SPEEDUP`` (0 disables).

Writes ``BENCH_serve.json`` (consumed by the CI ``service-smoke`` and
``shard-smoke`` jobs' artifact uploads and quoted in
``docs/service.md`` / ``docs/sharding.md``)::

    python benchmarks/bench_serve_load.py --clients 8 --requests 400

Exits non-zero when any request fails, any allocation is infeasible,
the batching assertion does not hold, the hierarchical parity gap
exceeds 1e-6, the keep-alive run misses the req/s floor, or an
enforced shard-speedup floor is missed.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mechanism import Agent, AllocationProblem
from repro.core.utility import CobbDouglasUtility
from repro.dynamic import DynamicAllocator
from repro.obs import MetricsRegistry
from repro.optimize import hierarchical_parity_gap
from repro.serve import AllocationServer, BatchPolicy, ShardCoordinator
from repro.serve.protocol import parse_json
from repro.sim.analytic import AnalyticMachine
from repro.workloads import get_workload

#: Benchmarks cycled across the generated client agents.
CLIENT_BENCHMARKS = ("canneal", "x264", "streamcluster", "ferret", "fluidanimate")

#: Seed agents for the sharded sweep (every cell must start non-empty).
SHARD_SEEDS = ("freqmine", "dedup", "canneal", "x264")

#: Acceptance gate for the hierarchical Eq. 13 split (abs share diff).
PARITY_GATE = 1e-6

#: Default keep-alive req/s floor: 10x the 232 req/s
#: connection-per-request seed.  REPRO_SERVE_MIN_RPS overrides (0 disables).
DEFAULT_MIN_RPS = 2320.0

#: Default shard-speedup floor on >= 4-CPU machines (the acceptance
#: criterion is simply "positive": more cells must not be slower).
DEFAULT_MIN_SHARD_SPEEDUP = 1.1


@functools.lru_cache(maxsize=None)
def _sample_table(
    benchmark: str, fair_bw: float, fair_ck: float, entries: int = 64
) -> Tuple[Dict[str, float], ...]:
    """Machine-consistent measurements around a fair-share bundle.

    Generating a measurement with :class:`AnalyticMachine` costs a
    scipy root-find (~ms) — fine per real sample, but a load generator
    calling it inline would bottleneck on itself, not the service.  So
    each benchmark gets a precomputed table of (bundle, IPC) points
    spanning 0.6x–1.4x of the fair share with *decorrelated* bandwidth
    and cache jitter (the on-line fit needs ratio variation to stay
    identified), built once outside the timed window and cycled by the
    clients.
    """
    workload = get_workload(benchmark)
    machine = AnalyticMachine()
    table = []
    for k in range(entries):
        jitter_bw = 0.6 + 0.8 * k / (entries - 1)
        jitter_ck = 0.6 + 0.8 * ((k * 29 + 7) % entries) / (entries - 1)
        bandwidth = max(0.5, fair_bw * jitter_bw)
        cache_kb = max(96.0, fair_ck * jitter_ck)
        table.append(
            {
                "bandwidth_gbps": bandwidth,
                "cache_kb": cache_kb,
                "ipc": float(machine.ipc(workload, cache_kb, bandwidth)),
            }
        )
    return tuple(table)


async def _http_request(
    host: str, port: int, method: str, path: str, payload=None
) -> Tuple[int, str]:
    """One connection-per-request HTTP exchange (``Connection: close``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    header_blob, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, response_body.decode("utf-8", "replace")


class _Connection:
    """One persistent HTTP/1.1 connection with Content-Length framing.

    The keep-alive analogue of :func:`_http_request`: requests are
    pipelined one-at-a-time over a single socket and each response is
    read by its ``Content-Length`` (reading to EOF would block until
    the server's idle timeout).  A stale socket — the server closed
    between requests — is reconnected once, transparently.
    """

    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _exchange(self, blob: bytes) -> Tuple[int, str]:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        assert self._reader is not None and self._writer is not None
        self._writer.write(blob)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        close = False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value)
            elif name == "connection" and value.strip().lower() == "close":
                close = True
        body = await self._reader.readexactly(length)
        if close:
            await self.close()
        return status, body.decode("utf-8", "replace")

    async def request(
        self, method: str, path: str, payload=None
    ) -> Tuple[int, str]:
        body = json.dumps(payload).encode() if payload is not None else b""
        blob = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        reused = self._writer is not None
        try:
            return await self._exchange(blob)
        except (ConnectionError, asyncio.IncompleteReadError):
            await self.close()
            if not reused:
                raise
            return await self._exchange(blob)  # stale keep-alive socket


class _LoadClient:
    """One simulated agent: register, then submit/read in a loop.

    Control-plane traffic (registration) goes to ``host:port``; the
    data-path loop goes to ``data_host:data_port``, which defaults to
    the same endpoint but is re-pointed at the owning cell worker by
    the sharded sweep (the smart-client pattern).

    With ``reuse`` the client holds one persistent connection per
    endpoint and ships samples as bulk arrays of ``bulk`` measurements
    per POST; without it every request opens a fresh connection and
    carries one sample (the legacy baseline).
    """

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        latencies: List[float],
        fair_share: Tuple[float, float],
        reuse: bool = True,
        bulk: int = 16,
    ):
        self.index = index
        self.agent = f"load{index}"
        self.benchmark = CLIENT_BENCHMARKS[index % len(CLIENT_BENCHMARKS)]
        self.table = _sample_table(
            self.benchmark, round(fair_share[0], 3), round(fair_share[1], 3)
        )
        self.host, self.port = host, port
        self.data_host, self.data_port = host, port
        self.latencies = latencies
        self.reuse = reuse
        self.bulk = max(1, bulk)
        self.samples_sent = 0
        self.allocations_read = 0
        #: Data-path round trips made by drive() (GETs + sample POSTs).
        self.requests_sent = 0
        self._connections: Dict[Tuple[str, int], _Connection] = {}

    async def aclose(self) -> None:
        for connection in self._connections.values():
            await connection.close()
        self._connections.clear()

    async def _timed(
        self, method: str, path: str, payload=None, control: bool = False
    ) -> Dict[str, object]:
        host = self.host if control else self.data_host
        port = self.port if control else self.data_port
        start = time.perf_counter()
        if self.reuse:
            connection = self._connections.get((host, port))
            if connection is None:
                connection = _Connection(host, port)
                self._connections[(host, port)] = connection
            status, text = await connection.request(method, path, payload)
        else:
            status, text = await _http_request(host, port, method, path, payload)
        self.latencies.append(time.perf_counter() - start)
        if status != 200:
            raise RuntimeError(f"{method} {path} -> HTTP {status}: {text[:200]}")
        return parse_json(text)

    async def register(self) -> None:
        await self._timed(
            "POST",
            "/v1/agents",
            {"action": "register", "agent": self.agent, "workload": self.benchmark},
            control=True,
        )

    async def run(self, requests: int) -> None:
        await self.register()
        await self.drive(requests)

    def _measure(self, i: int) -> Dict[str, object]:
        # Cycle the precomputed machine-consistent table with a
        # client-specific stride so the on-line fits stay identified
        # (pure repeats carry no regression signal).
        point = self.table[(i * 13 + self.index * 40503) % len(self.table)]
        return {"agent": self.agent, **point}

    async def drive(self, requests: int) -> None:
        # Read-heavy serving mix: 4 allocation reads per sample POST —
        # the shape the snapshot read path exists for.  A bulk POST
        # still carries ``bulk`` measurements, so the sample rate stays
        # far above the legacy one-sample-per-POST baseline.
        bundle = None
        for i in range(requests):
            self.requests_sent += 1
            if bundle is None or i % 5 != 0:
                data = await self._timed("GET", "/v1/allocation")
                if not data["feasible"]:
                    raise RuntimeError(f"infeasible allocation at epoch {data['epoch']}")
                bundle = data["shares"][self.agent]
                self.allocations_read += 1
            elif self.reuse:
                samples = [
                    self._measure(i * self.bulk + k) for k in range(self.bulk)
                ]
                data = await self._timed(
                    "POST", "/v1/samples", {"samples": samples}
                )
                if data["rejected"]:
                    raise RuntimeError(f"bulk POST rejected {data['rejected']} samples")
                self.samples_sent += len(samples)
            else:
                await self._timed("POST", "/v1/samples", self._measure(i))
                self.samples_sent += 1


async def _run_load(args, reuse: bool, requests: int) -> Dict[str, object]:
    registry = MetricsRegistry()
    allocator = DynamicAllocator(
        {
            "freqmine": get_workload("freqmine"),
            "dedup": get_workload("dedup"),
        },
        capacities=(6.4 * (2 + args.clients), 1024.0 * (2 + args.clients)),
        seed=args.seed,
        metrics=registry,
    )
    server = AllocationServer(
        allocator,
        policy=BatchPolicy(max_delay=args.epoch_ms / 1000.0, max_batch=args.max_batch),
        metrics=registry,
    )
    await server.start()
    latencies: List[float] = []
    fair_share = (
        allocator.capacities[0] / (2 + args.clients),
        allocator.capacities[1] / (2 + args.clients),
    )
    clients = [
        _LoadClient(
            i, server.host, server.port, latencies, fair_share,
            reuse=reuse, bulk=args.bulk,
        )
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    try:
        await asyncio.gather(*(client.run(requests) for client in clients))
    finally:
        elapsed = time.perf_counter() - started
        for client in clients:
            await client.aclose()
        server.request_stop()
        await server.stop()

    epochs = registry.get("repro_dynamic_epochs_total")
    n_epochs = int(epochs.value) if epochs is not None else 0
    samples = sum(c.samples_sent for c in clients)
    n_requests = len(latencies)
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    # The batching contract: one mechanism solve per epoch tick, ticks
    # triggered only by startup, churn, policy flushes and shutdown.
    ticks = 0
    for trigger in ("startup", "churn", "max_batch", "max_delay", "shutdown"):
        child = registry.get("repro_serve_batches_total", trigger=trigger)
        if child is not None:
            ticks += int(child.value)
    dynamic_events = registry.get("repro_dynamic_events_total", kind="allocation_fallback")
    connections = registry.get("repro_serve_connections_total")
    n_connections = int(connections.value) if connections is not None else 0
    result = {
        "connection_reuse": "keep-alive" if reuse else "close",
        "clients": args.clients,
        "requests_per_client": requests,
        "bulk": args.bulk if reuse else 1,
        "epoch_ms": args.epoch_ms,
        "max_batch": args.max_batch,
        "requests": n_requests,
        "connections": n_connections,
        "requests_per_connection": round(n_requests / max(1, n_connections), 1),
        "samples": samples,
        "epochs": n_epochs,
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": round(quantile(0.50) * 1e3, 3),
        "p99_ms": round(quantile(0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "requests_per_sec": round(n_requests / elapsed, 1),
        "samples_per_sec": round(samples / elapsed, 1),
        "allocations_per_sec": round(n_epochs / elapsed, 1),
        "allocation_fallbacks": int(dynamic_events.value) if dynamic_events else 0,
        "solves_equal_ticks": n_epochs == ticks,
        "batched": samples > n_epochs,
    }
    return result


async def _run_shard(args, n_cells: int) -> Dict[str, object]:
    """Drive a coordinator + ``n_cells`` worker subprocesses with load.

    Registration goes through the coordinator (control plane); the
    measured sample/allocation loop then goes *directly* to each
    agent's owning cell, discovered once via ``GET /v1/cells`` — the
    traffic pattern the shard map exists for.  Data-path clients use
    persistent connections and bulk sample POSTs, so the sweep compares
    the cells' solve/ingest throughput rather than connection churn.
    The timed window covers only the data-path loop, so 1-cell and
    N-cell runs compare worker throughput, not subprocess spawn cost.
    """
    registry = MetricsRegistry()
    coordinator = ShardCoordinator(
        {name: name for name in SHARD_SEEDS},
        capacities=(
            6.4 * (len(SHARD_SEEDS) + args.clients),
            1024.0 * (len(SHARD_SEEDS) + args.clients),
        ),
        cells=n_cells,
        epoch_ms=args.epoch_ms,
        max_batch=args.max_batch,
        seed=args.seed,
        metrics=registry,
    )
    await coordinator.start()
    latencies: List[float] = []
    fair_share = (
        coordinator.capacities[0] / (len(SHARD_SEEDS) + args.clients),
        coordinator.capacities[1] / (len(SHARD_SEEDS) + args.clients),
    )
    clients = [
        _LoadClient(
            i, coordinator.host, coordinator.port, latencies, fair_share,
            reuse=True, bulk=args.bulk,
        )
        for i in range(args.clients)
    ]
    try:
        for client in clients:
            await client.register()
        status, text = await _http_request(coordinator.host, coordinator.port, "GET", "/v1/cells")
        if status != 200:
            raise RuntimeError(f"GET /v1/cells -> HTTP {status}: {text[:200]}")
        shard_map = parse_json(text)
        owner: Dict[str, Tuple[str, int]] = {}
        for cell in shard_map["cells"]:
            for agent in cell["agents"]:
                owner[agent] = (cell["host"], int(cell["port"]))
        for client in clients:
            client.data_host, client.data_port = owner[client.agent]

        started = time.perf_counter()
        await asyncio.gather(*(client.drive(args.requests) for client in clients))
        elapsed = time.perf_counter() - started
    finally:
        for client in clients:
            await client.aclose()
        coordinator.request_stop()
        await coordinator.stop()

    requests = sum(c.requests_sent for c in clients)
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    grant_rounds = registry.get("repro_shard_grant_rounds_total")
    return {
        "cells": n_cells,
        "clients": args.clients,
        "requests": requests,
        "samples": sum(c.samples_sent for c in clients),
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": round(quantile(0.50) * 1e3, 3),
        "p99_ms": round(quantile(0.99) * 1e3, 3),
        "requests_per_sec": round(requests / elapsed, 1),
        "grant_rounds": int(grant_rounds.value) if grant_rounds else 0,
        "summary": coordinator.summary_line(),
        "feasible": "feasible=True" in coordinator.summary_line(),
    }


def _parity_sweep(seed: int) -> float:
    """Max hierarchical-vs-flat share gap over randomized partitions.

    The same Eq. 13 composition the coordinator runs every grant round,
    checked against the flat single-allocator solve — this number gates
    the sharded service's correctness claim in CI.
    """
    rng = np.random.default_rng(seed)
    worst = 0.0
    for n_agents, n_cells in ((4, 2), (12, 3), (16, 4), (40, 8), (64, 4)):
        agents = tuple(
            Agent(f"a{i}", CobbDouglasUtility(rng.uniform(0.05, 1.0, 2)))
            for i in range(n_agents)
        )
        problem = AllocationProblem(agents, (25.6, 8192.0), ("membw_gbps", "cache_kb"))
        cells = [
            [f"a{i}" for i in range(n_agents) if i % n_cells == k]
            for k in range(n_cells)
        ]
        worst = max(worst, hierarchical_parity_gap(problem, cells))
    return worst


def _min_serve_rps() -> Tuple[float, bool]:
    """The keep-alive req/s floor and whether it is enforced.

    ``REPRO_SERVE_MIN_RPS`` overrides the default (0 disables), the
    same convention as ``REPRO_SHARD_MIN_SPEEDUP``.
    """
    override = os.environ.get("REPRO_SERVE_MIN_RPS")
    floor = float(override) if override is not None else DEFAULT_MIN_RPS
    return floor, floor > 0.0


def _min_shard_speedup(cell_counts: List[int]) -> Tuple[float, bool, str]:
    """The speedup floor, whether it is enforced, and the skip reason.

    The acceptance criterion (max-cells faster than 1-cell) only makes
    sense with a core per worker; on narrower machines the number is
    still reported but advisory — and the skip is *loud*: the caller
    prints it and records the reason in the JSON.
    ``REPRO_SHARD_MIN_SPEEDUP`` overrides both the floor and forces
    enforcement (set it to 0 to disable).
    """
    override = os.environ.get("REPRO_SHARD_MIN_SPEEDUP")
    if override is not None:
        floor = float(override)
        reason = "" if floor > 0.0 else "REPRO_SHARD_MIN_SPEEDUP=0"
        return floor, floor > 0.0, reason
    cpus = os.cpu_count() or 1
    if max(cell_counts, default=1) < 4:
        return DEFAULT_MIN_SHARD_SPEEDUP, False, f"cells<4 (cells={cell_counts})"
    if cpus < 4:
        return DEFAULT_MIN_SHARD_SPEEDUP, False, f"cpus={cpus}"
    return DEFAULT_MIN_SHARD_SPEEDUP, True, ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=400,
        help="requests per client (keep-alive runs; the close-mode "
        "baseline runs requests/5 to bound its connection-churn time)",
    )
    parser.add_argument("--bulk", type=int, default=16, help="samples per bulk POST")
    parser.add_argument("--epoch-ms", type=float, default=10.0)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--cells",
        default="1,4",
        help="comma-separated cell counts for the sharded sweep ('' skips it)",
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    cell_counts = [int(c) for c in args.cells.split(",") if c.strip()]

    runs = {}
    for reuse in (False, True):
        mode = "keep-alive" if reuse else "close"
        requests = args.requests if reuse else max(20, args.requests // 5)
        run = asyncio.run(_run_load(args, reuse=reuse, requests=requests))
        runs[mode] = run
        print(
            f"serve-load[{mode}]: {run['clients']} clients, {run['requests']} "
            f"requests over {run['connections']} connections in "
            f"{run['elapsed_seconds']}s — p50 {run['p50_ms']}ms, "
            f"p99 {run['p99_ms']}ms, {run['requests_per_sec']} req/s, "
            f"{run['samples_per_sec']} samples/s, "
            f"{run['samples']} samples -> {run['epochs']} solves"
        )

    # The headline numbers are the keep-alive run's; the close-mode
    # baseline rides along under reuse_axis for the speedup claim.
    result = dict(runs["keep-alive"])
    result["reuse_axis"] = [runs["close"], runs["keep-alive"]]
    result["reuse_speedup"] = round(
        runs["keep-alive"]["requests_per_sec"]
        / max(1e-9, runs["close"]["requests_per_sec"]),
        2,
    )
    print(
        f"connection-reuse: {result['reuse_speedup']}x keep-alive+bulk over "
        f"connection-per-request "
        f"({runs['close']['requests_per_sec']} -> "
        f"{runs['keep-alive']['requests_per_sec']} req/s)"
    )

    cells_axis: List[Dict[str, object]] = []
    for n_cells in cell_counts:
        entry = asyncio.run(_run_shard(args, n_cells))
        cells_axis.append(entry)
        print(
            f"shard-load: cells={entry['cells']} {entry['requests']} requests "
            f"({entry['samples']} samples) in {entry['elapsed_seconds']}s — "
            f"p50 {entry['p50_ms']}ms, p99 {entry['p99_ms']}ms, "
            f"{entry['requests_per_sec']} req/s "
            f"({entry['grant_rounds']} grant rounds)"
        )
    result["cells_axis"] = cells_axis

    shard_speedup: Optional[float] = None
    if cells_axis:
        baseline = min(cells_axis, key=lambda e: e["cells"])
        widest = max(cells_axis, key=lambda e: e["cells"])
        if widest["cells"] > baseline["cells"]:
            shard_speedup = round(widest["requests_per_sec"] / baseline["requests_per_sec"], 3)
    floor, enforced, skip_reason = _min_shard_speedup(cell_counts)
    rps_floor, rps_enforced = _min_serve_rps()
    parity_gap = _parity_sweep(args.seed)
    result["shard_speedup"] = shard_speedup
    result["min_shard_speedup"] = floor
    result["shard_gate_enforced"] = enforced
    result["shard_gate_skip_reason"] = skip_reason
    result["min_requests_per_sec"] = rps_floor
    result["serve_gate_enforced"] = rps_enforced
    result["hierarchical_parity_max_gap"] = parity_gap

    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    if not result["solves_equal_ticks"]:
        print("FAIL: mechanism solved more than once per epoch tick", file=sys.stderr)
        return 1
    if not result["batched"]:
        print(
            "FAIL: batching did not coalesce samples "
            f"({result['samples']} samples, {result['epochs']} solves)",
            file=sys.stderr,
        )
        return 1
    if rps_enforced and result["requests_per_sec"] < rps_floor:
        print(
            f"FAIL: keep-alive throughput {result['requests_per_sec']} req/s "
            f"below the {rps_floor:g} req/s floor (REPRO_SERVE_MIN_RPS)",
            file=sys.stderr,
        )
        return 1
    if any(not entry["feasible"] for entry in cells_axis):
        print("FAIL: a sharded run ended without a feasible allocation", file=sys.stderr)
        return 1
    if parity_gap > PARITY_GATE:
        print(
            f"FAIL: hierarchical parity gap {parity_gap:.3e} exceeds {PARITY_GATE:g}",
            file=sys.stderr,
        )
        return 1
    if shard_speedup is not None:
        if enforced:
            print(
                f"shard-speedup: {shard_speedup}x across "
                f"{min(cell_counts)}->{max(cell_counts)} cells "
                f"(floor {floor}x, enforced; {os.cpu_count()} CPUs), "
                f"parity gap {parity_gap:.3e}"
            )
            if shard_speedup < floor:
                print(
                    f"FAIL: shard speedup {shard_speedup}x below the {floor}x floor",
                    file=sys.stderr,
                )
                return 1
        else:
            print(
                f"shard-gate: skipped (cpus={os.cpu_count()}) — "
                f"{skip_reason or 'advisory run'}; measured {shard_speedup}x "
                f"across {min(cell_counts)}->{max(cell_counts)} cells, "
                f"parity gap {parity_gap:.3e}"
            )
    print(f"serve-load OK: wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
