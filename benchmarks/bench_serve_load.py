"""Async load generator for the REF allocation service.

Starts an :class:`~repro.serve.server.AllocationServer` in-process on an
ephemeral port, then drives it with N concurrent asyncio clients that
register, submit measured IPC samples and read back allocations —
connection-per-request, like real scrape/submit traffic.  Reports
client-observed p50/p99 request latency and the achieved
allocations/sec, and *hard-asserts* the batching contract: the
mechanism is solved exactly once per epoch tick, so the solve count
stays far below the sample count regardless of client concurrency.

It then sweeps the *sharded* service (``--cells``, default ``1,4``): a
:class:`~repro.serve.shard.ShardCoordinator` per cell count, cell
workers as real subprocesses, clients registering through the
coordinator and then — the smart-client pattern — submitting samples
directly to the cell that owns them (``GET /v1/cells``).  The sweep
writes a ``cells_axis`` into the JSON plus ``shard_speedup`` (max-cells
vs 1-cell throughput) and ``hierarchical_parity_max_gap`` (coordinator
split vs flat solve).  The 2x speedup floor is enforced only on
machines with >= 4 CPUs (one core per cell worker is the whole point);
override with ``REPRO_SHARD_MIN_SPEEDUP``.

Writes ``BENCH_serve.json`` (consumed by the CI ``service-smoke`` and
``shard-smoke`` jobs' artifact uploads and quoted in
``docs/service.md`` / ``docs/sharding.md``)::

    python benchmarks/bench_serve_load.py --clients 8 --requests 100

Exits non-zero when any request fails, any allocation is infeasible,
the batching assertion does not hold, the hierarchical parity gap
exceeds 1e-6, or an enforced shard-speedup floor is missed.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mechanism import Agent, AllocationProblem
from repro.core.utility import CobbDouglasUtility
from repro.dynamic import DynamicAllocator
from repro.obs import MetricsRegistry
from repro.optimize import hierarchical_parity_gap
from repro.serve import AllocationServer, BatchPolicy, ShardCoordinator
from repro.serve.protocol import parse_json
from repro.sim.analytic import AnalyticMachine
from repro.workloads import get_workload

#: Benchmarks cycled across the generated client agents.
CLIENT_BENCHMARKS = ("canneal", "x264", "streamcluster", "ferret", "fluidanimate")

#: Seed agents for the sharded sweep (every cell must start non-empty).
SHARD_SEEDS = ("freqmine", "dedup", "canneal", "x264")

#: Acceptance gate for the hierarchical Eq. 13 split (abs share diff).
PARITY_GATE = 1e-6


async def _http_request(
    host: str, port: int, method: str, path: str, payload=None
) -> Tuple[int, str]:
    """One connection-per-request HTTP exchange (the server closes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    header_blob, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, response_body.decode("utf-8", "replace")


class _LoadClient:
    """One simulated agent: register, then submit/read in a loop.

    Control-plane traffic (registration) goes to ``host:port``; the
    data-path loop goes to ``data_host:data_port``, which defaults to
    the same endpoint but is re-pointed at the owning cell worker by
    the sharded sweep (the smart-client pattern).
    """

    def __init__(self, index: int, host: str, port: int, latencies: List[float]):
        self.index = index
        self.agent = f"load{index}"
        self.benchmark = CLIENT_BENCHMARKS[index % len(CLIENT_BENCHMARKS)]
        self.workload = get_workload(self.benchmark)
        self.machine = AnalyticMachine()
        self.host, self.port = host, port
        self.data_host, self.data_port = host, port
        self.latencies = latencies
        self.samples_sent = 0
        self.allocations_read = 0

    async def _timed(
        self, method: str, path: str, payload=None, control: bool = False
    ) -> Dict[str, object]:
        host = self.host if control else self.data_host
        port = self.port if control else self.data_port
        start = time.perf_counter()
        status, text = await _http_request(host, port, method, path, payload)
        self.latencies.append(time.perf_counter() - start)
        if status != 200:
            raise RuntimeError(f"{method} {path} -> HTTP {status}: {text[:200]}")
        return parse_json(text)

    async def register(self) -> None:
        await self._timed(
            "POST",
            "/v1/agents",
            {"action": "register", "agent": self.agent, "workload": self.benchmark},
            control=True,
        )

    async def run(self, requests: int) -> None:
        await self.register()
        await self.drive(requests)

    async def drive(self, requests: int) -> None:
        bundle = None
        for i in range(requests):
            if bundle is None or i % 5 == 0:
                data = await self._timed("GET", "/v1/allocation")
                if not data["feasible"]:
                    raise RuntimeError(f"infeasible allocation at epoch {data['epoch']}")
                bundle = data["shares"][self.agent]
                self.allocations_read += 1
            else:
                # Measure at a jittered bundle so the on-line fits stay
                # identified (pure repeats carry no regression signal).
                jitter = 0.8 + 0.4 * ((i * 2654435761 + self.index * 40503) % 1000) / 1000.0
                bandwidth = max(0.5, bundle["membw_gbps"] * jitter)
                cache_kb = max(96.0, bundle["cache_kb"] * jitter)
                ipc = float(self.machine.ipc(self.workload, cache_kb, bandwidth))
                await self._timed(
                    "POST",
                    "/v1/samples",
                    {
                        "agent": self.agent,
                        "bandwidth_gbps": bandwidth,
                        "cache_kb": cache_kb,
                        "ipc": ipc,
                    },
                )
                self.samples_sent += 1


async def _run_load(args) -> Dict[str, object]:
    registry = MetricsRegistry()
    allocator = DynamicAllocator(
        {
            "freqmine": get_workload("freqmine"),
            "dedup": get_workload("dedup"),
        },
        capacities=(6.4 * (2 + args.clients), 1024.0 * (2 + args.clients)),
        seed=args.seed,
        metrics=registry,
    )
    server = AllocationServer(
        allocator,
        policy=BatchPolicy(max_delay=args.epoch_ms / 1000.0, max_batch=args.max_batch),
        metrics=registry,
    )
    await server.start()
    latencies: List[float] = []
    clients = [
        _LoadClient(i, server.host, server.port, latencies)
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    try:
        await asyncio.gather(*(client.run(args.requests) for client in clients))
    finally:
        elapsed = time.perf_counter() - started
        server.request_stop()
        await server.stop()

    epochs = registry.get("repro_dynamic_epochs_total")
    n_epochs = int(epochs.value) if epochs is not None else 0
    samples = sum(c.samples_sent for c in clients)
    requests = len(latencies)
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    # The batching contract: one mechanism solve per epoch tick, ticks
    # triggered only by startup, churn, policy flushes and shutdown.
    ticks = 0
    for trigger in ("startup", "churn", "max_batch", "max_delay", "shutdown"):
        child = registry.get("repro_serve_batches_total", trigger=trigger)
        if child is not None:
            ticks += int(child.value)
    dynamic_events = registry.get("repro_dynamic_events_total", kind="allocation_fallback")
    result = {
        "clients": args.clients,
        "requests_per_client": args.requests,
        "epoch_ms": args.epoch_ms,
        "max_batch": args.max_batch,
        "requests": requests,
        "samples": samples,
        "epochs": n_epochs,
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": round(quantile(0.50) * 1e3, 3),
        "p99_ms": round(quantile(0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "requests_per_sec": round(requests / elapsed, 1),
        "allocations_per_sec": round(n_epochs / elapsed, 1),
        "allocation_fallbacks": int(dynamic_events.value) if dynamic_events else 0,
        "solves_equal_ticks": n_epochs == ticks,
        "batched": samples > n_epochs,
    }
    return result


async def _run_shard(args, n_cells: int) -> Dict[str, object]:
    """Drive a coordinator + ``n_cells`` worker subprocesses with load.

    Registration goes through the coordinator (control plane); the
    measured sample/allocation loop then goes *directly* to each
    agent's owning cell, discovered once via ``GET /v1/cells`` — the
    traffic pattern the shard map exists for.  The timed window covers
    only the data-path loop, so 1-cell and N-cell runs compare worker
    throughput, not subprocess spawn cost.
    """
    registry = MetricsRegistry()
    coordinator = ShardCoordinator(
        {name: name for name in SHARD_SEEDS},
        capacities=(
            6.4 * (len(SHARD_SEEDS) + args.clients),
            1024.0 * (len(SHARD_SEEDS) + args.clients),
        ),
        cells=n_cells,
        epoch_ms=args.epoch_ms,
        max_batch=args.max_batch,
        seed=args.seed,
        metrics=registry,
    )
    await coordinator.start()
    latencies: List[float] = []
    clients = [
        _LoadClient(i, coordinator.host, coordinator.port, latencies)
        for i in range(args.clients)
    ]
    try:
        for client in clients:
            await client.register()
        status, text = await _http_request(coordinator.host, coordinator.port, "GET", "/v1/cells")
        if status != 200:
            raise RuntimeError(f"GET /v1/cells -> HTTP {status}: {text[:200]}")
        shard_map = parse_json(text)
        owner: Dict[str, Tuple[str, int]] = {}
        for cell in shard_map["cells"]:
            for agent in cell["agents"]:
                owner[agent] = (cell["host"], int(cell["port"]))
        for client in clients:
            client.data_host, client.data_port = owner[client.agent]

        started = time.perf_counter()
        await asyncio.gather(*(client.drive(args.requests) for client in clients))
        elapsed = time.perf_counter() - started
    finally:
        coordinator.request_stop()
        await coordinator.stop()

    requests = sum(c.samples_sent + c.allocations_read for c in clients)
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    grant_rounds = registry.get("repro_shard_grant_rounds_total")
    return {
        "cells": n_cells,
        "clients": args.clients,
        "requests": requests,
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": round(quantile(0.50) * 1e3, 3),
        "p99_ms": round(quantile(0.99) * 1e3, 3),
        "requests_per_sec": round(requests / elapsed, 1),
        "grant_rounds": int(grant_rounds.value) if grant_rounds else 0,
        "summary": coordinator.summary_line(),
        "feasible": "feasible=True" in coordinator.summary_line(),
    }


def _parity_sweep(seed: int) -> float:
    """Max hierarchical-vs-flat share gap over randomized partitions.

    The same Eq. 13 composition the coordinator runs every grant round,
    checked against the flat single-allocator solve — this number gates
    the sharded service's correctness claim in CI.
    """
    rng = np.random.default_rng(seed)
    worst = 0.0
    for n_agents, n_cells in ((4, 2), (12, 3), (16, 4), (40, 8), (64, 4)):
        agents = tuple(
            Agent(f"a{i}", CobbDouglasUtility(rng.uniform(0.05, 1.0, 2)))
            for i in range(n_agents)
        )
        problem = AllocationProblem(agents, (25.6, 8192.0), ("membw_gbps", "cache_kb"))
        cells = [
            [f"a{i}" for i in range(n_agents) if i % n_cells == k]
            for k in range(n_cells)
        ]
        worst = max(worst, hierarchical_parity_gap(problem, cells))
    return worst


def _min_shard_speedup(cell_counts: List[int]) -> Tuple[float, bool]:
    """The speedup floor and whether it is enforced on this machine.

    The acceptance criterion (4-cell >= 2x 1-cell) only makes sense
    with a core per worker; on narrower machines the number is still
    reported but advisory.  ``REPRO_SHARD_MIN_SPEEDUP`` overrides both
    the floor and forces enforcement (set it to 0 to disable).
    """
    override = os.environ.get("REPRO_SHARD_MIN_SPEEDUP")
    if override is not None:
        floor = float(override)
        return floor, floor > 0.0
    cpus = os.cpu_count() or 1
    enforced = cpus >= 4 and max(cell_counts, default=1) >= 4
    return 2.0, enforced


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=100, help="requests per client")
    parser.add_argument("--epoch-ms", type=float, default=10.0)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--cells",
        default="1,4",
        help="comma-separated cell counts for the sharded sweep ('' skips it)",
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    cell_counts = [int(c) for c in args.cells.split(",") if c.strip()]

    result = asyncio.run(_run_load(args))
    print(
        f"serve-load: {result['clients']} clients, {result['requests']} requests "
        f"in {result['elapsed_seconds']}s — p50 {result['p50_ms']}ms, "
        f"p99 {result['p99_ms']}ms, {result['requests_per_sec']} req/s, "
        f"{result['allocations_per_sec']} allocations/s, "
        f"{result['samples']} samples -> {result['epochs']} solves"
    )

    cells_axis: List[Dict[str, object]] = []
    for n_cells in cell_counts:
        entry = asyncio.run(_run_shard(args, n_cells))
        cells_axis.append(entry)
        print(
            f"shard-load: cells={entry['cells']} {entry['requests']} requests "
            f"in {entry['elapsed_seconds']}s — p50 {entry['p50_ms']}ms, "
            f"p99 {entry['p99_ms']}ms, {entry['requests_per_sec']} req/s "
            f"({entry['grant_rounds']} grant rounds)"
        )
    result["cells_axis"] = cells_axis

    shard_speedup: Optional[float] = None
    if cells_axis:
        baseline = min(cells_axis, key=lambda e: e["cells"])
        widest = max(cells_axis, key=lambda e: e["cells"])
        if widest["cells"] > baseline["cells"]:
            shard_speedup = round(widest["requests_per_sec"] / baseline["requests_per_sec"], 3)
    floor, enforced = _min_shard_speedup(cell_counts)
    parity_gap = _parity_sweep(args.seed)
    result["shard_speedup"] = shard_speedup
    result["min_shard_speedup"] = floor
    result["shard_gate_enforced"] = enforced
    result["hierarchical_parity_max_gap"] = parity_gap

    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    if not result["solves_equal_ticks"]:
        print("FAIL: mechanism solved more than once per epoch tick", file=sys.stderr)
        return 1
    if not result["batched"]:
        print(
            "FAIL: batching did not coalesce samples "
            f"({result['samples']} samples, {result['epochs']} solves)",
            file=sys.stderr,
        )
        return 1
    if any(not entry["feasible"] for entry in cells_axis):
        print("FAIL: a sharded run ended without a feasible allocation", file=sys.stderr)
        return 1
    if parity_gap > PARITY_GATE:
        print(
            f"FAIL: hierarchical parity gap {parity_gap:.3e} exceeds {PARITY_GATE:g}",
            file=sys.stderr,
        )
        return 1
    if shard_speedup is not None:
        gate = "enforced" if enforced else "advisory"
        print(
            f"shard-speedup: {shard_speedup}x across "
            f"{min(cell_counts)}->{max(cell_counts)} cells "
            f"(floor {floor}x, {gate}; {os.cpu_count()} CPUs), "
            f"parity gap {parity_gap:.3e}"
        )
        if enforced and shard_speedup < floor:
            print(
                f"FAIL: shard speedup {shard_speedup}x below the {floor}x floor",
                file=sys.stderr,
            )
            return 1
    print(f"serve-load OK: wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
