"""CI ``mechanism-sweep`` driver (part of ``make dynamic-smoke``).

Runs ``repro dynamic`` in-process once per controller mechanism in the
registry (:func:`repro.core.registry.controller_mechanism_names`), so a
newly registered mechanism is exercised by CI automatically — no
hand-maintained list to forget to update.  For each mechanism the sweep
asserts that

* the CLI exits 0,
* the JSON summary reports ``feasible: true``,
* every requested epoch actually ran.

Exits non-zero on the first violation; prints a greppable
``mechanism-sweep OK`` line on success.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys

from repro.cli import main as repro_main
from repro.core.registry import controller_mechanism_names

EPOCHS = 4


def main() -> int:
    mechanisms = controller_mechanism_names()
    for mechanism in mechanisms:
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = repro_main(
                [
                    "dynamic",
                    "--epochs", str(EPOCHS),
                    "--seed", "2014",
                    "--mechanism", mechanism,
                    "--json",
                ]
            )
        if code != 0:
            print(f"FAIL: {mechanism}: exit code {code}", file=sys.stderr)
            return 1
        payload = json.loads(stdout.getvalue())
        if payload.get("feasible") is not True:
            print(f"FAIL: {mechanism}: feasible={payload.get('feasible')}",
                  file=sys.stderr)
            return 1
        if payload.get("epochs") != EPOCHS:
            print(f"FAIL: {mechanism}: ran {payload.get('epochs')} epochs, "
                  f"wanted {EPOCHS}", file=sys.stderr)
            return 1
    print(
        f"mechanism-sweep OK: {len(mechanisms)} controller mechanisms "
        f"({', '.join(mechanisms)}) x {EPOCHS} epochs, all feasible"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
