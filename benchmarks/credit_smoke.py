"""CI ``credit-smoke`` driver (also ``make credit-smoke``).

End-to-end exercise of the credit mechanism's temporal-fairness story:

1. **Service path**: ``repro dynamic --mechanism credit`` in-process for
   300 epochs of bursty churn (two agents join and leave mid-run),
   asserting the run stays feasible, the ``--metrics-out`` artifact
   covers every epoch, every ``repro_credit_balance`` gauge respects the
   bank bound, and credit actually flowed (banked and spent counters are
   both positive).
2. **Horizon harness**: :func:`repro.experiments.credit_horizon
   .run_credit_horizon` on the bursty two-agent schedule, asserting the
   headline claim — per-epoch sharing incentives are violated while the
   windowed forms (SI and envy-freeness over tumbling windows) hold
   within the telescoping credit tolerance.

Exits non-zero on the first violation; prints a greppable
``credit-smoke OK`` line on success.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile

from repro.cli import main as repro_main
from repro.experiments.credit_horizon import bursty_pair, run_credit_horizon
from repro.obs import MetricsRegistry, parse_prometheus_text, to_prometheus

EPOCHS = 300
MAX_BALANCE = 0.5  # CreditMechanism default bank bound


def _check_dynamic_service() -> int:
    handle, metrics_path = tempfile.mkstemp(suffix=".json", prefix="credit-smoke-")
    os.close(handle)
    try:
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = repro_main(
                [
                    "dynamic",
                    "--epochs", str(EPOCHS),
                    "--seed", "2014",
                    "--mechanism", "credit",
                    "--churn", "60:add:late=canneal",
                    "--churn", "120:remove:late",
                    "--churn", "180:add:burst=x264",
                    "--churn", "240:remove:burst",
                    "--metrics-out", metrics_path,
                    "--json",
                ]
            )
        if code != 0:
            print(f"FAIL: repro dynamic exited {code}", file=sys.stderr)
            return 1
        payload = json.loads(stdout.getvalue())
        if payload.get("feasible") is not True or payload.get("epochs") != EPOCHS:
            print(f"FAIL: bad dynamic summary {payload}", file=sys.stderr)
            return 1

        with open(metrics_path) as fh:
            registry = MetricsRegistry.from_dict(json.load(fh))
        epochs_total = registry.get("repro_dynamic_epochs_total")
        if epochs_total is None or epochs_total.value != EPOCHS:
            print(f"FAIL: epoch counter {epochs_total} != {EPOCHS}", file=sys.stderr)
            return 1
        samples = parse_prometheus_text(to_prometheus(registry))
        balances = [s for s in samples if s["name"] == "repro_credit_balance"]
        if not balances:
            print("FAIL: no repro_credit_balance gauges exported", file=sys.stderr)
            return 1
        worst = max(abs(float(s["value"])) for s in balances)
        if worst > MAX_BALANCE + 1e-9:
            print(f"FAIL: |credit balance| {worst} > bank bound {MAX_BALANCE}",
                  file=sys.stderr)
            return 1
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], 0.0)
            by_name[sample["name"]] += float(sample["value"])
        if by_name.get("repro_credit_banked_total", 0.0) <= 0:
            print("FAIL: no credit was ever banked", file=sys.stderr)
            return 1
        if by_name.get("repro_credit_spent_total", 0.0) <= 0:
            print("FAIL: no credit was ever spent", file=sys.stderr)
            return 1
        print(
            f"credit-smoke: dynamic service ran {EPOCHS} epochs with churn, "
            f"max |balance| {worst:.3f} <= {MAX_BALANCE}, "
            f"{len(balances)} balance gauges"
        )
        return 0
    finally:
        os.unlink(metrics_path)


def _check_horizon_harness() -> int:
    report = run_credit_horizon(bursty_pair(), epochs=EPOCHS, window=50)
    if report.per_epoch_si_violations == 0:
        print("FAIL: credit never traded per-epoch SI (nothing to verify)",
              file=sys.stderr)
        return 1
    if not report.all_feasible:
        print("FAIL: credit produced an infeasible epoch", file=sys.stderr)
        return 1
    if not report.windowed_si_ok:
        print(f"FAIL: windowed SI margin {report.min_windowed_si_margin} < "
              f"-{report.si_window_tolerance}", file=sys.stderr)
        return 1
    if not report.windowed_ef_ok:
        print(f"FAIL: windowed envy {report.max_windowed_envy} too large",
              file=sys.stderr)
        return 1
    if report.max_abs_balance > MAX_BALANCE + 1e-9:
        print(f"FAIL: balance escaped the bank: {report.max_abs_balance}",
              file=sys.stderr)
        return 1
    print(
        f"credit-smoke: horizon harness traded {report.per_epoch_si_violations}"
        f"/{report.epochs} per-epoch SI violations for windowed SI margin "
        f"{report.min_windowed_si_margin:+.2e} (tol {report.si_window_tolerance:.0e})"
        f" and windowed envy {report.max_windowed_envy:.2e}"
    )
    return 0


def main() -> int:
    code = _check_dynamic_service()
    if code != 0:
        return code
    code = _check_horizon_harness()
    if code != 0:
        return code
    print(
        f"credit-smoke OK: {EPOCHS}-epoch bursty-churn service run feasible, "
        f"balances bounded, windowed SI/EF hold where per-epoch SI is traded"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
