"""Stack-distance kernel speedup benchmark (the `make bench-kernel` entry).

Times the trace-driven Table 1 sweep (5 cache sizes x 5 bandwidths)
through both simulation paths — the per-access reference hierarchy and
the vectorized stack-distance kernel — on one fixed workload/trace,
hard-gates on bit-exact parity of every result, and writes
``BENCH_kernel.json`` with the measured speedup and access throughput.

Run directly (``python benchmarks/kernel_speedup.py``) or via
``make bench-kernel``; CI runs it as a smoke step and uploads the JSON
artifact.  Exits non-zero if parity breaks or the speedup falls below
the acceptance floor.

Named outside the ``bench_*.py`` pattern on purpose: it is a timing
harness with a JSON artifact, not a pytest benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim.machine import TraceMachine
from repro.sim.platform import PlatformConfig
from repro.workloads.suites import get_workload

#: Acceptance floor from the issue: the fast sweep must beat the
#: reference sweep by at least this factor on the same machine.
MIN_SPEEDUP = 5.0


def best_of(repeats: int, run) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="swaptions")
    parser.add_argument("--instructions", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default="BENCH_kernel.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help=f"fail below this wall-clock ratio (default: {MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    workload = get_workload(args.workload)
    points = PlatformConfig().sweep_points()
    fast = TraceMachine(n_instructions=args.instructions, use_fast_kernel=True)
    reference = TraceMachine(n_instructions=args.instructions, use_fast_kernel=False)

    fast_results = fast.sweep(workload, points)
    reference_results = reference.sweep(workload, points)
    parity = fast_results == reference_results
    if not parity:
        mismatches = [
            point
            for point, a, b in zip(points, fast_results, reference_results)
            if a != b
        ]
        print(f"PARITY BROKEN at {len(mismatches)}/{len(points)} points: "
              f"{mismatches[:5]}", file=sys.stderr)

    fast_s = best_of(args.repeats, lambda: fast.sweep(workload, points))
    reference_s = best_of(args.repeats, lambda: reference.sweep(workload, points))
    speedup = reference_s / fast_s

    # Throughput: the reference simulates every access at every point;
    # normalize both paths by that same total so the ratio mirrors the
    # wall-clock speedup.
    n_accesses = max(int(args.instructions * workload.refs_per_instr), 1)
    total_accesses = n_accesses * len(points)
    payload = {
        "workload": args.workload,
        "instructions": args.instructions,
        "grid_points": len(points),
        "repeats": args.repeats,
        "parity": parity,
        "reference_seconds": round(reference_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(speedup, 2),
        "reference_accesses_per_sec": round(total_accesses / reference_s),
        "fast_accesses_per_sec": round(total_accesses / fast_s),
        "min_speedup": args.min_speedup,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'path':<12} {'seconds':>10} {'accesses/s':>14}")
    print(f"{'reference':<12} {reference_s:>10.3f} "
          f"{total_accesses / reference_s:>14,.0f}")
    print(f"{'fast':<12} {fast_s:>10.3f} {total_accesses / fast_s:>14,.0f}")
    print(f"speedup: {speedup:.2f}x (floor {args.min_speedup}x)  "
          f"parity: {'OK' if parity else 'BROKEN'}")
    print(f"wrote {args.output}")

    if not parity:
        return 1
    if speedup < args.min_speedup:
        print(f"speedup {speedup:.2f}x below floor {args.min_speedup}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
