"""Assert a ``--metrics-out`` artifact from ``repro dynamic`` is complete.

Shared by the CI ``dynamic-smoke`` job and ``make dynamic-smoke`` (one
script, zero workflow/Makefile drift)::

    python benchmarks/check_dynamic_metrics.py dynamic-metrics.json 200

Checks that the epoch-latency histogram covers every epoch, the epoch
counter agrees, span trees are embedded, and the Prometheus rendering
passes the bundled strict exposition-format parser.
"""

from __future__ import annotations

import json
import sys

from repro.obs import MetricsRegistry, parse_prometheus_text, to_prometheus


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            "usage: check_dynamic_metrics.py METRICS_JSON EXPECTED_EPOCHS",
            file=sys.stderr,
        )
        return 2
    path, expected = argv[0], int(argv[1])
    with open(path) as handle:
        payload = json.load(handle)
    registry = MetricsRegistry.from_dict(payload)
    latency = registry.get("repro_dynamic_epoch_latency_seconds")
    assert latency is not None, "epoch latency histogram missing"
    assert latency.count == expected, f"expected {expected} epochs, saw {latency.count}"
    epochs = registry.get("repro_dynamic_epochs_total")
    assert epochs is not None and epochs.value == expected, epochs
    assert payload.get("spans"), "span trees missing from the artifact"
    parse_prometheus_text(to_prometheus(registry))
    print(f"metrics OK: {latency.count} epochs, {len(registry)} families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
