# Convenience targets for the REF reproduction.
#
# The CI workflow (.github/workflows/ci.yml) runs these same targets —
# lint, test, coverage, smoke, bench-kernel, bench-solver,
# cold-start-check, dynamic-smoke, serve-smoke, shard-smoke,
# credit-smoke, regret-smoke — so `make ci` reproduces a full CI run
# locally with zero drift.

PYTHON ?= python
JOBS ?= 2
SMOKE_CACHE := .repro-smoke-cache
# Must match the CI reproduce-smoke job artifact set (28 cached profiles).
SMOKE_ARTIFACTS := fig8a fig8b fig8c fig9 table1 table2
# Coverage hard floor for `make coverage` / the CI coverage job.  Start
# at the measured baseline rounded down; ratchet up, never down.
COV_FLOOR ?= 80

.PHONY: install test coverage bench bench-kernel bench-serve bench-solver \
	cold-start-check examples reproduce \
	lint smoke dynamic-smoke metrics-smoke serve-smoke shard-smoke \
	credit-smoke regret-smoke ci clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest -x -q

# The CI coverage job, runnable locally (needs pytest-cov installed):
# line coverage over src/repro with a hard fail-under floor and an HTML
# report in coverage-html/.
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null || \
		{ echo "coverage: pytest-cov is not installed (pip install pytest-cov)"; exit 1; }
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term \
		--cov-report=html:coverage-html --cov-fail-under=$(COV_FLOOR)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Times the trace-driven Table 1 sweep through the reference simulator
# and the stack-distance kernel, hard-gates on bit-exact parity, and
# writes BENCH_kernel.json (speedup, accesses/sec).  Exits non-zero if
# parity breaks or the speedup falls below the acceptance floor.
bench-kernel:
	$(PYTHON) benchmarks/kernel_speedup.py

# Async load generator against an in-process allocation server plus a
# 1-vs-4-cell sharded sweep: writes BENCH_serve.json (p50/p99 request
# latency, allocations/sec, cells_axis, shard_speedup,
# hierarchical_parity_max_gap) and hard-asserts the batching contract,
# the Eq. 13 hierarchical parity gate (1e-6) and — on machines with
# >= 4 CPUs — the 2x shard-speedup floor (REPRO_SHARD_MIN_SPEEDUP
# overrides).
bench-serve:
	$(PYTHON) benchmarks/bench_serve_load.py

# Times the solver/fit hot path: batched Cobb-Douglas fitting vs the
# per-agent loop, the Eq. 13 closed form vs SLSQP, the 64-agent
# controller tick with eager vs batched refits, and solve_batch vs the
# scalar loop.  Writes BENCH_solver.json; exits non-zero when parity
# breaks or a speedup falls below its acceptance floor (tick >= 3x).
bench-solver:
	$(PYTHON) benchmarks/bench_solver.py

# Hard budget on `python -m repro --help` in a fresh interpreter, plus
# a probe that building the parser imports neither NumPy nor SciPy.
cold-start-check:
	$(PYTHON) benchmarks/check_cold_start.py

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

reproduce:
	$(PYTHON) -m repro reproduce all --jobs $(JOBS)

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples
	$(PYTHON) -m ruff format --check src tests benchmarks examples

# The CI reproduce-smoke job, runnable locally: parallel profiling must
# be bit-identical to the serial reference, and a warm second run must
# be served entirely from the profile cache (zero simulator
# invocations, all 28 profiles from disk).
smoke:
	rm -rf $(SMOKE_CACHE)
	$(PYTHON) -m repro reproduce $(SMOKE_ARTIFACTS) > $(SMOKE_CACHE).serial.txt
	$(PYTHON) -m repro reproduce $(SMOKE_ARTIFACTS) --jobs $(JOBS) \
		--cache-dir $(SMOKE_CACHE) > $(SMOKE_CACHE).parallel.txt 2> $(SMOKE_CACHE).stats-cold.txt
	diff $(SMOKE_CACHE).serial.txt $(SMOKE_CACHE).parallel.txt
	$(PYTHON) -m repro reproduce $(SMOKE_ARTIFACTS) --jobs $(JOBS) \
		--cache-dir $(SMOKE_CACHE) > $(SMOKE_CACHE).warm.txt 2> $(SMOKE_CACHE).stats-warm.txt
	diff $(SMOKE_CACHE).serial.txt $(SMOKE_CACHE).warm.txt
	grep -q "simulated_points=0 " $(SMOKE_CACHE).stats-warm.txt
	grep -q "disk_hits=28" $(SMOKE_CACHE).stats-warm.txt
	@echo "smoke OK: parallel output identical to serial; warm run fully cached"

# The CI dynamic-smoke job, runnable locally: 200 epochs of the
# allocation service with churn and ~10% injected faults must finish
# crash-free with a feasible allocation at every epoch, and the
# exported metrics artifact must cover every epoch and render as
# strictly-parseable Prometheus text.
dynamic-smoke:
	$(PYTHON) -m repro dynamic --epochs 200 --seed 2014 \
		--fault-drop 0.04 --fault-non-positive 0.03 --fault-outlier 0.03 \
		--churn 40:add:late=canneal --churn 120:remove:late \
		--events 20 --metrics-out $(SMOKE_CACHE).dynamic-metrics.json \
		| tee $(SMOKE_CACHE).dynamic.txt
	grep -q "feasible=True" $(SMOKE_CACHE).dynamic.txt
	$(PYTHON) benchmarks/check_dynamic_metrics.py $(SMOKE_CACHE).dynamic-metrics.json 200
	$(PYTHON) benchmarks/mechanism_sweep.py
	@echo "dynamic-smoke OK: 200 faulty, churning epochs; all feasible; metrics covered"

# Extra local check (subsumed by dynamic-smoke in CI): a 50-epoch run's
# metrics file must cover every epoch and be scrapeable.
metrics-smoke:
	$(PYTHON) -m repro dynamic --epochs 50 --seed 2014 \
		--metrics-out $(SMOKE_CACHE).metrics.json
	$(PYTHON) -c "import json; from repro.obs import MetricsRegistry; \
		r = MetricsRegistry.from_dict(json.load(open('$(SMOKE_CACHE).metrics.json'))); \
		h = r.get('repro_dynamic_epoch_latency_seconds'); \
		assert h is not None and h.count == 50, h"
	$(PYTHON) -m repro metrics $(SMOKE_CACHE).metrics.json --format prometheus \
		| $(PYTHON) -c "import sys; from repro.obs import parse_prometheus_text; \
		print(len(parse_prometheus_text(sys.stdin.read())), 'samples parse OK')"
	@echo "metrics-smoke OK: 50 epochs exported, covered and scrapeable"

# The CI service-smoke job, runnable locally: a real `repro serve`
# subprocess, 3 concurrent clients, 50 epochs, feasible allocations,
# strictly-parseable /metrics, clean SIGTERM shutdown.
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py

# The CI shard-smoke job, runnable locally: `repro serve --cells 4`
# (coordinator + 4 cell worker subprocesses), concurrent clients, one
# worker SIGKILLed mid-run, rendezvous re-hash to the survivors, a
# feasible merged allocation on the degraded fleet, clean SIGTERM exit.
shard-smoke:
	$(PYTHON) benchmarks/shard_smoke.py

# The CI regret-smoke job, runnable locally: a 200-epoch profile-free
# `repro dynamic --learn-demands` run over churny agents, the regret
# harness gating convergence epoch and final-window/cumulative regret
# against the offline-profiled oracle (REPRO_REGRET_MAX_* override the
# gates; BENCH_regret.json carries the trajectory), and a profile-less
# agent served end to end both flat and through `--cells 4`.
regret-smoke:
	$(PYTHON) benchmarks/regret_smoke.py

# The CI credit-smoke job, runnable locally: 300 epochs of
# `repro dynamic --mechanism credit` under bursty churn (feasible
# throughout, balance gauges inside the bank bound) plus the horizon
# harness proving windowed SI/EF hold where per-epoch SI is traded.
credit-smoke:
	$(PYTHON) benchmarks/credit_smoke.py

# Mirrors .github/workflows/ci.yml job for job.  Coverage needs
# pytest-cov; when it is missing locally the leg is skipped with a
# notice instead of failing the whole run.
ci: lint test smoke bench-kernel bench-solver cold-start-check dynamic-smoke \
		serve-smoke shard-smoke credit-smoke regret-smoke bench-serve
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(MAKE) coverage; \
	else \
		echo "ci: skipping coverage leg (pytest-cov not installed)"; \
	fi

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis benchmarks/results
	rm -rf $(SMOKE_CACHE) $(SMOKE_CACHE).*.txt $(SMOKE_CACHE).*.json
	rm -rf coverage-html .coverage
	rm -f BENCH_kernel.json BENCH_serve.json BENCH_solver.json BENCH_regret.json
	find . -name __pycache__ -type d -exec rm -rf {} +
