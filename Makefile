# Convenience targets for the REF reproduction.

PYTHON ?= python

.PHONY: install test bench examples reproduce lint clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

reproduce:
	$(PYTHON) -m repro reproduce all

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
