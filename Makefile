# Convenience targets for the REF reproduction.

PYTHON ?= python
JOBS ?= 2
SMOKE_CACHE := .repro-smoke-cache
SMOKE_ARTIFACTS := fig8a fig9 table2

.PHONY: install test bench bench-kernel examples reproduce lint smoke dynamic-smoke metrics-smoke ci clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Times the trace-driven Table 1 sweep through the reference simulator
# and the stack-distance kernel, hard-gates on bit-exact parity, and
# writes BENCH_kernel.json (speedup, accesses/sec).  Exits non-zero if
# parity breaks or the speedup falls below the acceptance floor.
bench-kernel:
	$(PYTHON) benchmarks/kernel_speedup.py

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

reproduce:
	$(PYTHON) -m repro reproduce all --jobs $(JOBS)

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples
	$(PYTHON) -m ruff format --check src tests benchmarks examples

# The CI smoke job, runnable locally: parallel profiling must be
# bit-identical to the serial reference, and a warm second run must be
# served entirely from the profile cache (zero simulator invocations).
smoke:
	rm -rf $(SMOKE_CACHE)
	$(PYTHON) -m repro reproduce $(SMOKE_ARTIFACTS) > $(SMOKE_CACHE).serial.txt
	$(PYTHON) -m repro reproduce $(SMOKE_ARTIFACTS) --jobs $(JOBS) \
		--cache-dir $(SMOKE_CACHE) > $(SMOKE_CACHE).parallel.txt
	diff $(SMOKE_CACHE).serial.txt $(SMOKE_CACHE).parallel.txt
	$(PYTHON) -m repro reproduce $(SMOKE_ARTIFACTS) --jobs $(JOBS) \
		--cache-dir $(SMOKE_CACHE) > $(SMOKE_CACHE).warm.txt 2> $(SMOKE_CACHE).stats.txt
	diff $(SMOKE_CACHE).serial.txt $(SMOKE_CACHE).warm.txt
	grep -q "simulated_points=0 " $(SMOKE_CACHE).stats.txt
	@echo "smoke OK: parallel output identical to serial; warm run fully cached"

# The CI dynamic-smoke job, runnable locally: 200 epochs of the
# allocation service with churn and ~10% injected faults must finish
# crash-free with a feasible allocation at every epoch.
dynamic-smoke:
	$(PYTHON) -m repro dynamic --epochs 200 --seed 2014 \
		--fault-drop 0.04 --fault-non-positive 0.03 --fault-outlier 0.03 \
		--churn 40:add:late=canneal --churn 120:remove:late \
		| tee $(SMOKE_CACHE).dynamic.txt
	grep -q "feasible=True" $(SMOKE_CACHE).dynamic.txt
	@echo "dynamic-smoke OK: 200 faulty, churning epochs; all feasible"

# The metrics leg of the CI dynamic-smoke job, runnable locally: a
# 50-epoch dynamic run must export a metrics file whose epoch-latency
# histogram covers every epoch, and the Prometheus rendering must pass
# the bundled strict exposition-format parser.
metrics-smoke:
	$(PYTHON) -m repro dynamic --epochs 50 --seed 2014 \
		--metrics-out $(SMOKE_CACHE).metrics.json
	$(PYTHON) -c "import json; from repro.obs import MetricsRegistry; \
		r = MetricsRegistry.from_dict(json.load(open('$(SMOKE_CACHE).metrics.json'))); \
		h = r.get('repro_dynamic_epoch_latency_seconds'); \
		assert h is not None and h.count == 50, h"
	$(PYTHON) -m repro metrics $(SMOKE_CACHE).metrics.json --format prometheus \
		| $(PYTHON) -c "import sys; from repro.obs import parse_prometheus_text; \
		print(len(parse_prometheus_text(sys.stdin.read())), 'samples parse OK')"
	@echo "metrics-smoke OK: 50 epochs exported, covered and scrapeable"

# Mirrors .github/workflows/ci.yml locally.
ci: lint
	$(PYTHON) -m pytest -x -q
	$(MAKE) smoke
	$(MAKE) bench-kernel
	$(MAKE) dynamic-smoke
	$(MAKE) metrics-smoke

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis benchmarks/results
	rm -rf $(SMOKE_CACHE) $(SMOKE_CACHE).*.txt $(SMOKE_CACHE).*.json
	rm -f BENCH_kernel.json
	find . -name __pycache__ -type d -exec rm -rf {} +
