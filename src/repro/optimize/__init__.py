"""Numeric allocation mechanisms: log-space convex programs (§4.5, §5.5)."""

from .batch import (
    FAST_PATH_MECHANISMS,
    proportional_elasticity_batch,
    solve_batch,
)
from .logspace import (
    LogSpaceSolution,
    capacity_constraints,
    envy_free_constraints,
    log_weighted_utilities,
    pareto_constraints,
    sharing_incentive_constraints,
    solve,
)
from .hierarchy import (
    hierarchical_parity_gap,
    solve_hierarchical,
    split_capacity,
)
from .drf import (
    DrfAgent,
    DrfResult,
    demand_vector_from_elasticities,
    dominant_resource_fairness,
    drf_allocation,
)
from .mechanisms import (
    MECHANISMS,
    MechanismError,
    equal_slowdown,
    max_nash_welfare,
    run_mechanism,
    utilitarian_welfare,
)

__all__ = [
    "FAST_PATH_MECHANISMS",
    "LogSpaceSolution",
    "MECHANISMS",
    "DrfAgent",
    "DrfResult",
    "MechanismError",
    "capacity_constraints",
    "envy_free_constraints",
    "demand_vector_from_elasticities",
    "dominant_resource_fairness",
    "drf_allocation",
    "equal_slowdown",
    "hierarchical_parity_gap",
    "log_weighted_utilities",
    "max_nash_welfare",
    "pareto_constraints",
    "proportional_elasticity_batch",
    "run_mechanism",
    "sharing_incentive_constraints",
    "solve",
    "solve_batch",
    "solve_hierarchical",
    "split_capacity",
    "utilitarian_welfare",
]
