"""Numeric allocation mechanisms: log-space convex programs (§4.5, §5.5)."""

from .logspace import (
    LogSpaceSolution,
    capacity_constraints,
    envy_free_constraints,
    log_weighted_utilities,
    pareto_constraints,
    sharing_incentive_constraints,
    solve,
)
from .drf import (
    DrfAgent,
    DrfResult,
    demand_vector_from_elasticities,
    dominant_resource_fairness,
    drf_allocation,
)
from .mechanisms import (
    MECHANISMS,
    MechanismError,
    equal_slowdown,
    max_nash_welfare,
    run_mechanism,
    utilitarian_welfare,
)

__all__ = [
    "LogSpaceSolution",
    "MECHANISMS",
    "DrfAgent",
    "DrfResult",
    "MechanismError",
    "capacity_constraints",
    "envy_free_constraints",
    "demand_vector_from_elasticities",
    "dominant_resource_fairness",
    "drf_allocation",
    "equal_slowdown",
    "log_weighted_utilities",
    "max_nash_welfare",
    "pareto_constraints",
    "run_mechanism",
    "sharing_incentive_constraints",
    "solve",
    "utilitarian_welfare",
]
