"""The evaluation-section allocation mechanisms (§4.5, §5.5).

Four mechanisms are compared in Figs. 13-14:

* **Max Welfare w/o Fairness** — maximize Nash social welfare
  ``prod_i U_i`` subject only to capacity.  Solvable in closed form
  (proportional to *raw* elasticities); an empirical performance upper
  bound.
* **Equal Slowdown w/o Fairness** — maximize ``min_i U_i`` subject only
  to capacity: the architecture-community status quo of equalizing
  slowdowns (§4.5 "Unfair Allocation").
* **Max Welfare w/ Fairness** — maximize Nash welfare subject to SI, EF
  and PE (Eq. 11); requires convex optimization (the paper uses CVX
  geometric programming; we solve the equivalent log-space program).
* **Proportional Elasticity (REF)** — the paper's closed-form mechanism,
  :func:`repro.core.mechanism.proportional_elasticity`.

A best-effort **utilitarian** maximizer (``max sum_i U_i``) is included
for the §4.5 discussion; the exact problem is intractable (maximizing a
convex function), so it is multi-start local search and clearly labeled.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

import numpy as np

from ..core.mechanism import Allocation, AllocationProblem, proportional_elasticity
from ..obs import global_registry
from . import logspace

__all__ = [
    "MECHANISMS",
    "MechanismError",
    "equal_slowdown",
    "max_nash_welfare",
    "run_mechanism",
    "utilitarian_welfare",
]


class MechanismError(RuntimeError):
    """A numeric mechanism failed to converge.

    Retained for backward compatibility and for callers that opt back
    into raising; since 1.3.0 the numeric mechanisms no longer raise it
    by default — an unconverged (or capacity-infeasible) solve falls
    back to the equal split, mirroring ``DynamicAllocator``'s
    mechanism-failure path, so infeasible shares are never propagated.
    """


def _equal_split_fallback(problem: AllocationProblem, label: str, failures) -> Allocation:
    """The always-feasible last resort when every solver start fails."""
    global_registry().counter(
        "repro_mechanism_fallbacks_total",
        help="Numeric-mechanism solves that fell back to the equal split.",
        mechanism=label,
    ).inc()
    warnings.warn(
        f"{label} solver failed from every start ({failures}); "
        "falling back to the equal split",
        RuntimeWarning,
        stacklevel=3,
    )
    shares = np.tile(problem.equal_split, (problem.n_agents, 1))
    return Allocation(
        problem=problem, shares=shares, mechanism=f"{label}_equal_split_fallback"
    )


def _solve_with_restarts(
    problem: AllocationProblem,
    objective,
    extra_constraints,
    label: str,
    starts,
    extra_variables: int = 0,
    initial_extra_fn=None,
    initial_shares: Optional[np.ndarray] = None,
    stop_on_first_success: bool = False,
    metrics=None,
) -> Allocation:
    """Run SLSQP from several warm starts; keep the best converged solution.

    SLSQP occasionally reports "positive directional derivative" on
    tightly-constrained log-space programs; restarting from a different
    strictly feasible interior point almost always recovers.  When no
    start converges to a capacity-feasible solution, the equal split is
    returned (with a ``RuntimeWarning`` and a fallback counter) instead
    of propagating an infeasible iterate.

    ``initial_shares`` (e.g. the previous epoch's enforced allocation in
    the dynamic loop) is tried *first*; with ``stop_on_first_success``
    the scan ends at the first converged feasible solution, turning a
    good warm start into a single SLSQP run instead of a full restart
    sweep.
    """
    best: Optional[Allocation] = None
    best_value = -np.inf
    failures: List[str] = []
    all_starts = ([initial_shares] if initial_shares is not None else []) + list(starts)
    for start in all_starts:
        initial_extra = initial_extra_fn(start) if initial_extra_fn else None
        solution = logspace.solve(
            problem,
            objective,
            extra_constraints=extra_constraints,
            extra_variables=extra_variables,
            initial_extra=initial_extra,
            mechanism=label,
            initial_shares=start,
            metrics=metrics,
        )
        if solution.success and solution.objective_value > best_value:
            best, best_value = solution.allocation, solution.objective_value
            if stop_on_first_success:
                break
        elif not solution.success:
            failures.append(solution.message)
    if best is None:
        return _equal_split_fallback(problem, label, failures)
    return best


def _default_starts(problem: AllocationProblem, seed: int = 0) -> List[Optional[np.ndarray]]:
    """Warm starts: REF (feasible for every fairness constraint), the
    equal split, the unfair Nash optimum, and jittered variants.

    Degenerate problems (e.g. a zero elasticity column) can make a
    candidate start uncomputable; such starts are skipped rather than
    letting a warm-start heuristic kill the solve."""
    starts: List[Optional[np.ndarray]] = []
    try:
        starts.append(proportional_elasticity(problem).shares)
    except (ValueError, FloatingPointError):
        pass
    starts.append(None)  # the equal split
    try:
        starts.append(max_nash_welfare(problem, fair=False).shares)
    except (ValueError, FloatingPointError):
        pass
    rng = np.random.default_rng(seed)
    for base in [s for s in starts if s is not None]:
        noise = rng.uniform(0.8, 1.2, size=base.shape)
        jittered = base * noise
        column_totals = jittered.sum(axis=0)
        if np.all(column_totals > 0):
            starts.append(jittered / column_totals * problem.capacity_vector)
    return starts


def max_nash_welfare(
    problem: AllocationProblem,
    fair: bool = False,
    numeric: Optional[bool] = None,
    initial_shares: Optional[np.ndarray] = None,
    stop_on_first_success: bool = False,
    metrics=None,
) -> Allocation:
    """Maximize Nash social welfare ``prod_i U_i(x_i)``.

    Parameters
    ----------
    problem:
        The allocation instance.
    fair:
        When True, impose the SI, EF and PE constraints of Eq. 11
        ("Max Welfare w/ Fairness"); requires the numeric solver.
        When False, the unconstrained optimum has the closed form
        ``x_ir = a_ir / sum_j a_jr * C_r`` with **raw** elasticities
        (the Lagrangian of Eq. 14 without re-scaling).
    numeric:
        Force (True) or forbid (False) the numeric path for the unfair
        case; defaults to the closed form.  Used by tests to cross-check
        the two paths.
    initial_shares:
        Optional ``(N, R)`` warm start tried before the default restart
        sweep (the dynamic controller passes the previous epoch's
        enforced shares).  Ignored by the closed-form path.
    stop_on_first_success:
        Stop the restart sweep at the first converged feasible solution
        (one SLSQP run when the warm start is good).
    metrics:
        Optional registry for the underlying solver telemetry.

    Returns
    -------
    Allocation
    """
    if not fair and not numeric:
        alpha = problem.raw_alpha_matrix()
        shares = alpha / alpha.sum(axis=0) * problem.capacity_vector
        return Allocation(problem=problem, shares=shares, mechanism="max_welfare_unfair")

    def objective(v: np.ndarray) -> float:
        return float(logspace.log_weighted_utilities(problem, v[: _nz(problem)]).sum())

    extra: List[Dict] = []
    label = "max_welfare_unfair_numeric"
    starts: List[Optional[np.ndarray]] = [None]
    if fair:
        extra = (
            logspace.sharing_incentive_constraints(problem)
            + logspace.envy_free_constraints(problem)
            + logspace.pareto_constraints(problem)
        )
        label = "max_welfare_fair"
        # REF satisfies every fairness constraint — the ideal warm start.
        starts = _default_starts(problem)
    return _solve_with_restarts(
        problem,
        objective,
        extra,
        label,
        starts,
        initial_shares=initial_shares,
        stop_on_first_success=stop_on_first_success,
        metrics=metrics,
    )


def equal_slowdown(
    problem: AllocationProblem,
    initial_shares: Optional[np.ndarray] = None,
    stop_on_first_success: bool = False,
    metrics=None,
) -> Allocation:
    """Maximize the minimum weighted utility (equal slowdown, §4.5).

    Solved as an epigraph program: maximize ``t`` subject to
    ``log U_i >= t`` for all agents plus capacity.  At the optimum every
    binding agent's slowdown equals ``exp(t)`` — the "equal slowdown"
    outcome prior work targets.  Provides neither SI nor EF in general
    (Figs. 11-12).  ``initial_shares`` / ``stop_on_first_success`` /
    ``metrics`` behave as in :func:`max_nash_welfare`.
    """
    nz = _nz(problem)

    def objective(v: np.ndarray) -> float:
        return float(v[nz])

    def make_epigraph(i: int):
        def fun(v: np.ndarray) -> float:
            return float(logspace.log_weighted_utilities(problem, v[:nz])[i] - v[nz])

        return fun

    epigraph = [{"type": "ineq", "fun": make_epigraph(i)} for i in range(problem.n_agents)]

    def initial_extra(start):
        if start is None:
            z0 = np.log(np.tile(problem.equal_split, (problem.n_agents, 1))).ravel()
        else:
            z0 = np.log(start).ravel()
        return [float(logspace.log_weighted_utilities(problem, z0).min()) - 0.05]

    return _solve_with_restarts(
        problem,
        objective,
        epigraph,
        "equal_slowdown",
        _default_starts(problem),
        extra_variables=1,
        initial_extra_fn=initial_extra,
        initial_shares=initial_shares,
        stop_on_first_success=stop_on_first_success,
        metrics=metrics,
    )


def utilitarian_welfare(
    problem: AllocationProblem, fair: bool = False, n_starts: int = 5, seed: int = 0
) -> Allocation:
    """Best-effort maximization of utilitarian welfare ``sum_i U_i``.

    The exact problem is intractable (§4.5): the objective is convex in
    log space, so maximizing it is non-convex.  We run multi-start local
    search (perturbed equal-split starting points) and return the best
    local optimum found; if every start fails, the equal split is
    returned (never an infeasible iterate).
    """
    nz = _nz(problem)
    rng = np.random.default_rng(seed)

    def objective(v: np.ndarray) -> float:
        return float(np.exp(logspace.log_weighted_utilities(problem, v[:nz])).sum())

    extra: List[Dict] = []
    label = "utilitarian_unfair"
    if fair:
        extra = (
            logspace.sharing_incentive_constraints(problem)
            + logspace.envy_free_constraints(problem)
            + logspace.pareto_constraints(problem)
        )
        label = "utilitarian_fair"

    best: Optional[Allocation] = None
    best_value = -np.inf
    shape = (problem.n_agents, problem.n_resources)
    starts: List[Optional[np.ndarray]] = [None]  # equal split first
    for _ in range(max(n_starts - 1, 0)):
        noise = rng.uniform(0.2, 1.0, size=shape)
        starts.append(noise / noise.sum(axis=0) * problem.capacity_vector)
    for start in starts:
        solution = logspace.solve(
            problem,
            objective,
            extra_constraints=extra,
            mechanism=label,
            initial_shares=start,
        )
        if solution.success and solution.objective_value > best_value:
            best, best_value = solution.allocation, solution.objective_value
    if best is None:
        return _equal_split_fallback(problem, label, "every starting point failed")
    return best


def _nz(problem: AllocationProblem) -> int:
    """Number of log-allocation variables."""
    return problem.n_agents * problem.n_resources


def _ref(problem: AllocationProblem) -> Allocation:
    return proportional_elasticity(problem)


def _max_welfare_fair(problem: AllocationProblem) -> Allocation:
    return max_nash_welfare(problem, fair=True)


def _max_welfare_unfair(problem: AllocationProblem) -> Allocation:
    return max_nash_welfare(problem, fair=False)


#: The four mechanisms of Figs. 13-14, keyed by their legend labels.
MECHANISMS = {
    "Max Welfare w/ Fairness": _max_welfare_fair,
    "Proportional Elasticity w/ Fairness": _ref,
    "Max Welfare w/o Fairness": _max_welfare_unfair,
    "Equal Slowdown w/o Fairness": equal_slowdown,
}


def run_mechanism(name: str, problem: AllocationProblem) -> Allocation:
    """Run one of the named evaluation mechanisms (Figs. 13-14 legend)."""
    try:
        mechanism = MECHANISMS[name]
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; expected one of {sorted(MECHANISMS)}"
        ) from None
    return mechanism(problem)
