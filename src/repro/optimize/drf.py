"""Dominant Resource Fairness (DRF) — the prior art REF argues against.

Ghodsi et al.'s DRF [NSDI'11] fairly divides multiple resources among
agents with **Leontief** preferences: each agent demands resources in a
fixed ratio, and the mechanism equalizes *dominant shares* (each
agent's largest fractional share of any resource) by progressive
filling.  DRF provides SI, EF, PE and SP — but only on the Leontief
domain.

The paper's §2 argument is that microarchitectural resources are
*substitutable*, which Leontief cannot express: extra cache can stand
in for bandwidth and vice versa.  This module implements continuous
(divisible-task) DRF faithfully so the claim can be evaluated head to
head: give DRF the demand-vector shadow of a Cobb-Douglas agent and
compare achieved utilities against REF
(``benchmarks/bench_drf_comparison.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.mechanism import Allocation, AllocationProblem

__all__ = ["DrfAgent", "DrfResult", "dominant_resource_fairness", "demand_vector_from_elasticities"]


@dataclass(frozen=True)
class DrfAgent:
    """A DRF participant: a name and a Leontief demand vector."""

    name: str
    demands: Tuple[float, ...]

    def __init__(self, name: str, demands: Sequence[float]):
        demands = tuple(float(d) for d in demands)
        if not name:
            raise ValueError("agent name must be non-empty")
        if not demands or any(d < 0 for d in demands) or all(d == 0 for d in demands):
            raise ValueError(
                f"demands must be non-negative with at least one positive entry, got {demands}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "demands", demands)


@dataclass(frozen=True)
class DrfResult:
    """Outcome of progressive filling."""

    shares: np.ndarray
    dominant_shares: np.ndarray
    agent_names: Tuple[str, ...]
    saturated_resources: Tuple[int, ...]

    def share_of(self, name: str) -> np.ndarray:
        index = self.agent_names.index(name)
        return self.shares[index]


def dominant_resource_fairness(
    agents: Sequence[DrfAgent], capacities: Sequence[float]
) -> DrfResult:
    """Continuous DRF by progressive filling (water-filling).

    All agents' dominant shares grow at the same rate; when a resource
    saturates, every agent that demands it freezes (Leontief agents
    cannot make progress without all demanded resources), and filling
    continues for the rest.

    Parameters
    ----------
    agents:
        Participants with demand vectors over the same resources.
    capacities:
        Total per-resource capacities.

    Returns
    -------
    DrfResult
        Final allocation, per-agent dominant shares, and the resources
        that saturated during filling.
    """
    agents = list(agents)
    capacity = np.asarray(capacities, dtype=float)
    if not agents:
        raise ValueError("at least one agent is required")
    if np.any(capacity <= 0):
        raise ValueError(f"capacities must be strictly positive, got {capacity.tolist()}")
    names = tuple(agent.name for agent in agents)
    if len(set(names)) != len(names):
        raise ValueError(f"agent names must be unique, got {names}")
    demand = np.array([agent.demands for agent in agents], dtype=float)
    if demand.shape[1] != capacity.shape[0]:
        raise ValueError(
            f"demand vectors have {demand.shape[1]} resources but "
            f"{capacity.shape[0]} capacities were given"
        )

    n = len(agents)
    # Per unit of dominant share s, agent i consumes rate[i, r] of r.
    dominant_fraction = (demand / capacity).max(axis=1)
    rate = demand / dominant_fraction[:, None]  # so max_r rate/C == 1

    shares = np.zeros_like(demand)
    dominant = np.zeros(n)
    active = np.ones(n, dtype=bool)
    used = np.zeros_like(capacity)
    saturated: List[int] = []

    while active.any():
        consuming = rate[active]
        # Largest uniform dominant-share increase before a saturation.
        headroom = capacity - used
        rates_per_resource = consuming.sum(axis=0)
        with np.errstate(divide="ignore"):
            limits = np.where(rates_per_resource > 0, headroom / rates_per_resource, np.inf)
        step = float(limits.min())
        bottleneck = int(np.argmin(limits))
        if not np.isfinite(step):
            break  # active agents demand nothing that remains scarce
        shares[active] += step * rate[active]
        dominant[active] += step
        used += step * rates_per_resource
        if bottleneck not in saturated:
            saturated.append(bottleneck)
        # Freeze every active agent that demands the saturated resource.
        freeze = active & (demand[:, bottleneck] > 0)
        if not freeze.any():
            break  # numerical guard; no progress possible
        active &= ~freeze

    return DrfResult(
        shares=shares,
        dominant_shares=dominant,
        agent_names=names,
        saturated_resources=tuple(saturated),
    )


def demand_vector_from_elasticities(
    problem: AllocationProblem, agent_index: int
) -> np.ndarray:
    """The Leontief shadow of a Cobb-Douglas agent.

    DRF requires a demand vector; the natural translation the paper
    hints at (§2: "finding the demand vector for substitutable ...
    resources ... is conceptually challenging") is to demand resources
    in proportion to re-scaled elasticity times capacity — the ratio at
    which the agent's own REF bundle arrives.
    """
    alpha = problem.agents[agent_index].rescaled_alpha
    return alpha * problem.capacity_vector


def drf_allocation(problem: AllocationProblem) -> Allocation:
    """Run DRF on the Leontief shadows of a Cobb-Douglas population.

    Used by the comparison bench: the result is a feasible allocation
    of the original problem whose Cobb-Douglas utilities can be
    compared against REF's.
    """
    agents = [
        DrfAgent(agent.name, demand_vector_from_elasticities(problem, i))
        for i, agent in enumerate(problem.agents)
    ]
    result = dominant_resource_fairness(agents, problem.capacities)
    return Allocation(problem=problem, shares=result.shares, mechanism="drf_leontief_shadow")
