"""Hierarchical Eq. 13: split capacity across agent cells, solve within.

The REF closed form composes.  Flat, agent *i*'s share of resource *r*
is ``x_ir = a_ir / sum_j a_jr * C_r`` (Eq. 13, re-scaled elasticities).
Partition the agents into cells and give cell *k* the *grant*

    G_kr = ( sum_{i in k} a_ir / sum_j a_jr ) * C_r

— its agents' partial sum of the flat denominator — then run Eq. 13
within the cell on ``G_kr``:

    x_ir = a_ir / sum_{i' in k} a_i'r * G_kr
         = a_ir / sum_j a_jr * C_r

i.e. exactly the flat share, up to floating-point rounding.  Degenerate
columns (every elasticity zero) compose too: the flat rule falls back to
an equal per-agent split, so the grant is made proportional to the
cell's *agent count* and the within-cell equal split reproduces
``C_r / N``.

This is the math behind the sharded allocation service
(:mod:`repro.serve.shard`): a coordinator needs only each cell's
aggregate elasticity vector — one number per resource per cell, not the
per-agent matrices — to re-slice global capacity each epoch while
preserving the paper's sharing-incentive properties at both levels.
:func:`hierarchical_parity_gap` is the CI gate that keeps the claim
honest.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.mechanism import Allocation, AllocationProblem
from ..obs import MetricsRegistry
from .batch import solve_batch

__all__ = [
    "split_capacity",
    "solve_hierarchical",
    "hierarchical_parity_gap",
]

#: Grants are floored at this fraction of capacity so a zero-elasticity
#: cell still yields a valid (strictly positive capacity) sub-problem.
MIN_GRANT_FRACTION = 1e-12


def split_capacity(
    aggregates: np.ndarray,
    counts: Sequence[int],
    capacities: Sequence[float],
) -> np.ndarray:
    """Split a capacity vector across cells by aggregate elasticity.

    Parameters
    ----------
    aggregates:
        ``(K, R)`` matrix; row *k* is cell *k*'s per-resource sum of
        **re-scaled** (Eq. 12) agent elasticities.
    counts:
        Number of agents in each cell, shape ``(K,)`` — the fallback
        weights for degenerate columns, mirroring the flat mechanism's
        equal-split rule.
    capacities:
        Global capacity vector ``C``, shape ``(R,)``.

    Returns
    -------
    ``(K, R)`` grant matrix whose columns each sum exactly to ``C_r``.
    Grants are floored at ``MIN_GRANT_FRACTION * C_r`` per cell so
    downstream sub-problems keep strictly positive capacities, and the
    non-floored entries are renormalized after flooring so the floor
    never over-commits global capacity.
    """
    agg = np.asarray(aggregates, dtype=float)
    if agg.ndim != 2:
        raise ValueError(f"aggregates must be (K, R), got shape {agg.shape}")
    n_cells, n_resources = agg.shape
    weights = np.asarray(counts, dtype=float)
    if weights.shape != (n_cells,):
        raise ValueError(f"counts must have shape ({n_cells},), got {weights.shape}")
    if np.any(weights <= 0):
        raise ValueError(f"every cell must hold at least one agent, got {counts}")
    caps = np.asarray(capacities, dtype=float)
    if caps.shape != (n_resources,):
        raise ValueError(
            f"capacities must have shape ({n_resources},), got {caps.shape}"
        )
    if np.any(~np.isfinite(caps)) or np.any(caps <= 0):
        raise ValueError(f"capacities must be positive and finite, got {capacities}")

    # Same degenerate-column rule as proportional_elasticity{,_batch}:
    # a non-positive or non-finite denominator means the elasticities
    # carry no information, so fall back to weights that reproduce the
    # flat equal-per-agent split.
    agg = np.where(np.isfinite(agg) & (agg > 0.0), agg, 0.0)
    denom = agg.sum(axis=0)
    degenerate = ~np.isfinite(denom) | (denom <= 0.0)
    share = np.empty_like(agg)
    safe = np.where(degenerate, 1.0, denom)
    share[:, :] = agg / safe
    if np.any(degenerate):
        equal = (weights / weights.sum())[:, None]
        share[:, degenerate] = np.broadcast_to(
            equal, (n_cells, int(degenerate.sum()))
        )
    grants = share * caps
    # Floor zero/tiny grants so every sub-problem keeps strictly
    # positive capacities — then renormalize the *unfloored* entries so
    # each column still sums exactly to C_r.  Flooring alone would
    # over-commit: K cells of which F sit at the floor would sum to
    # C_r * (1 + F * MIN_GRANT_FRACTION), handing workers more capacity
    # than exists.  Lifting an entry to the floor can in principle push
    # another below it, so iterate pin-and-rescale (same idiom as
    # ``project_to_floors``); with floors this small one pass suffices
    # in practice, and K rounds is a hard upper bound.
    floor = caps * MIN_GRANT_FRACTION
    for _ in range(n_cells):
        pinned = grants <= floor
        if pinned.all(axis=0).any():  # pragma: no cover - floors are ~1e-12 * C
            raise ValueError(
                "MIN_GRANT_FRACTION floors are infeasible for this cell count"
            )
        free_target = caps - pinned.sum(axis=0) * floor
        free_total = np.where(pinned, 0.0, grants).sum(axis=0)
        safe_total = np.where(free_total > 0.0, free_total, 1.0)
        scale = np.where(free_total > 0.0, free_target / safe_total, 1.0)
        rescaled = np.where(pinned, floor, grants * scale)
        if np.all(rescaled >= floor):
            grants = rescaled
            break
        grants = np.where(rescaled < floor, 0.0, rescaled)  # pin and retry
    return grants


def _partition(
    problem: AllocationProblem, cells: Sequence[Sequence[str]]
) -> List[List[int]]:
    """Validate that ``cells`` is a partition of the problem's agents."""
    index_of = {agent.name: i for i, agent in enumerate(problem.agents)}
    seen: set = set()
    partition: List[List[int]] = []
    for cell in cells:
        members = list(cell)
        if not members:
            raise ValueError("cells must be non-empty")
        rows = []
        for name in members:
            if name not in index_of:
                raise ValueError(f"cell names an unknown agent {name!r}")
            if name in seen:
                raise ValueError(f"agent {name!r} appears in two cells")
            seen.add(name)
            rows.append(index_of[name])
        partition.append(rows)
    if len(seen) != problem.n_agents:
        missing = sorted(set(index_of) - seen)
        raise ValueError(f"cells do not cover agents {missing}")
    return partition


def solve_hierarchical(
    problem: AllocationProblem,
    cells: Sequence[Sequence[str]],
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[Allocation, np.ndarray]:
    """Solve one problem as a coordinator would: split, then per-cell Eq. 13.

    Parameters
    ----------
    problem:
        The flat instance (the ground truth the hierarchy must match).
    cells:
        A partition of the problem's agent names into non-empty cells.
    metrics:
        Optional registry passed to the within-cell :func:`solve_batch`.

    Returns
    -------
    ``(allocation, grants)`` where ``allocation`` is assembled in the
    *flat* problem's agent order (mechanism tag
    ``"ref-hierarchical"``) and ``grants`` is the ``(K, R)`` capacity
    split that produced it.
    """
    partition = _partition(problem, cells)
    alpha = problem.rescaled_alpha_matrix()
    aggregates = np.stack([alpha[rows].sum(axis=0) for rows in partition])
    counts = [len(rows) for rows in partition]
    grants = split_capacity(aggregates, counts, problem.capacity_vector)

    subproblems = [
        AllocationProblem(
            tuple(problem.agents[i] for i in rows),
            tuple(grants[k]),
            problem.resource_names,
        )
        for k, rows in enumerate(partition)
    ]
    solutions = solve_batch(subproblems, mechanism="ref", metrics=metrics)

    shares = np.empty((problem.n_agents, problem.n_resources), dtype=float)
    for rows, solution in zip(partition, solutions):
        for local, flat_index in enumerate(rows):
            shares[flat_index] = solution.shares[local]
    return Allocation(problem, shares, mechanism="ref-hierarchical"), grants


def hierarchical_parity_gap(
    problem: AllocationProblem,
    cells: Sequence[Sequence[str]],
) -> float:
    """Max |hierarchical - flat| share over all agents and resources.

    The CI parity gate: the coordinator-split allocation must match the
    flat single-allocator Eq. 13 solve within 1e-6 (in practice it is
    ~1e-12, pure rounding).
    """
    flat = solve_batch([problem], mechanism="ref")[0]
    hierarchical, _grants = solve_hierarchical(problem, cells)
    return float(np.max(np.abs(hierarchical.shares - flat.shares)))
