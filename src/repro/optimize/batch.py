"""Vectorized solves across independent allocation problems.

Experiment sweeps (and a sharded service) solve *many independent*
allocation instances — one per scenario, epoch, or shard.  For the
closed-form mechanisms (Eq. 13 REF and the unfair Nash optimum) each
solve is a handful of tiny NumPy reductions, so a Python loop over
scenarios pays far more in interpreter and dispatch overhead than in
arithmetic.  :func:`solve_batch` stacks same-shaped instances into
``(S, N, R)`` tensors and performs the arithmetic once per *group*
instead of once per *problem*; constrained mechanisms that genuinely
need SLSQP fall back to the per-problem path, so one entry point serves
every mechanism.

The stacked kernels replicate the scalar paths' operation order exactly
(including :func:`~repro.core.mechanism.proportional_elasticity`'s
degenerate-column equal split), so batched and looped results are
bit-identical, not merely close.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from ..core.mechanism import Allocation, AllocationProblem
from ..obs import MetricsRegistry, global_registry

__all__ = ["FAST_PATH_MECHANISMS", "proportional_elasticity_batch", "solve_batch"]

#: Mechanisms `solve_batch` vectorizes; the rest loop over SLSQP solves.
FAST_PATH_MECHANISMS = ("ref", "max-welfare-unfair")

#: Batch-size buckets for the batch-solve histogram.
_SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


def proportional_elasticity_batch(
    alpha: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Eq. 13 across a stack of problems in one shot.

    Parameters
    ----------
    alpha:
        ``(S, N, R)`` stack of **re-scaled** (Eq. 12) elasticity
        matrices, one per problem.
    capacities:
        ``(S, R)`` per-problem capacities, or a single ``(R,)`` vector
        shared by every problem.

    Returns
    -------
    numpy.ndarray
        ``(S, N, R)`` shares, bit-identical to calling
        :func:`~repro.core.mechanism.proportional_elasticity` per
        problem — including the degenerate-column rule: a resource
        nobody has a (finite, positive) elasticity for is split
        equally.
    """
    alpha = np.asarray(alpha, dtype=float)
    if alpha.ndim != 3:
        raise ValueError(
            f"alpha must be (scenarios, agents, resources), got shape {alpha.shape}"
        )
    s, n_agents, n_resources = alpha.shape
    caps = np.asarray(capacities, dtype=float)
    if caps.ndim == 1:
        caps = np.broadcast_to(caps, (s, n_resources))
    if caps.shape != (s, n_resources):
        raise ValueError(
            f"capacities must have shape ({s}, {n_resources}) or ({n_resources},), "
            f"got {caps.shape}"
        )
    denom = alpha.sum(axis=1)
    degenerate = ~np.isfinite(denom) | (denom <= 0.0)
    safe_denom = np.where(degenerate, 1.0, denom)
    shares = alpha / safe_denom[:, None, :] * caps[:, None, :]
    if np.any(degenerate):
        equal = caps / n_agents
        shares = np.where(
            degenerate[:, None, :], np.broadcast_to(equal[:, None, :], shares.shape), shares
        )
    return shares


def _group_key(problem: AllocationProblem):
    return (problem.n_agents, problem.n_resources)


def solve_batch(
    problems: Sequence[AllocationProblem],
    mechanism: str = "ref",
    metrics: Optional[MetricsRegistry] = None,
) -> List[Allocation]:
    """Solve many independent allocation problems, vectorizing when closed-form.

    Parameters
    ----------
    problems:
        The instances to solve; shapes may differ (problems are grouped
        by ``(n_agents, n_resources)`` and each group is stacked into
        one vectorized computation).
    mechanism:
        ``"ref"`` (Eq. 13) or ``"max-welfare-unfair"`` (closed-form
        Nash optimum) vectorize; ``"max-welfare-fair"`` and
        ``"equal-slowdown"`` require SLSQP and loop per problem.
    metrics:
        Registry for ``repro_solver_batch_*`` telemetry; defaults to
        the process-global registry.

    Returns
    -------
    list of Allocation
        In input order, with the same ``mechanism`` labels the scalar
        paths produce (``proportional_elasticity`` /
        ``max_welfare_unfair`` / ...).
    """
    registry = metrics if metrics is not None else global_registry()
    problems = list(problems)
    vectorized = mechanism in FAST_PATH_MECHANISMS
    start_time = time.perf_counter()
    if not problems:
        results: List[Allocation] = []
    elif vectorized:
        results = _solve_closed_form(problems, mechanism)
    else:
        results = _solve_loop(problems, mechanism, registry)
    wall_seconds = time.perf_counter() - start_time

    registry.counter(
        "repro_solver_batch_runs_total",
        help="solve_batch calls by mechanism and execution path.",
        mechanism=mechanism,
        path="vectorized" if vectorized else "loop",
    ).inc()
    registry.histogram(
        "repro_solver_batch_size",
        help="Problems per solve_batch call.",
        buckets=_SIZE_BUCKETS,
        mechanism=mechanism,
    ).observe(len(problems))
    registry.histogram(
        "repro_solver_batch_wall_seconds",
        help="solve_batch wall time per call.",
        mechanism=mechanism,
    ).observe(wall_seconds)
    return results


def _solve_closed_form(
    problems: List[AllocationProblem], mechanism: str
) -> List[Allocation]:
    """Group same-shaped problems and run the stacked closed form per group."""
    groups: dict = {}
    for index, problem in enumerate(problems):
        groups.setdefault(_group_key(problem), []).append(index)

    results: List[Optional[Allocation]] = [None] * len(problems)
    for indices in groups.values():
        caps = np.stack([problems[i].capacity_vector for i in indices])
        # Pull raw elasticities straight from the utility tuples: one
        # (S, N, R) array build instead of S * N per-agent numpy
        # round-trips (the per-problem ``rescaled_alpha_matrix`` loop
        # dominates the scalar path's cost at small N).
        raw = np.array(
            [
                [agent.utility.elasticities for agent in problems[i].agents]
                for i in indices
            ],
            dtype=float,
        )
        if mechanism == "ref":
            # Stacked Eq. 12 rescale: same per-row `alpha / alpha.sum()`
            # the scalar path computes, so results stay bit-identical.
            alpha = raw / raw.sum(axis=2, keepdims=True)
            shares = proportional_elasticity_batch(alpha, caps)
            label = "proportional_elasticity"
        else:  # max-welfare-unfair: closed form on *raw* elasticities
            shares = raw / raw.sum(axis=1)[:, None, :] * caps[:, None, :]
            label = "max_welfare_unfair"
        for position, i in enumerate(indices):
            results[i] = Allocation(
                problem=problems[i], shares=shares[position], mechanism=label
            )
    return results  # type: ignore[return-value]


def _solve_loop(
    problems: List[AllocationProblem], mechanism: str, registry: MetricsRegistry
) -> List[Allocation]:
    """Per-problem SLSQP path for the constrained mechanisms."""
    from .mechanisms import equal_slowdown, max_nash_welfare

    if mechanism == "max-welfare-fair":
        return [
            max_nash_welfare(problem, fair=True, metrics=registry)
            for problem in problems
        ]
    if mechanism == "equal-slowdown":
        return [equal_slowdown(problem, metrics=registry) for problem in problems]
    raise ValueError(
        f"unknown mechanism {mechanism!r}; expected one of "
        f"{sorted(FAST_PATH_MECHANISMS + ('max-welfare-fair', 'equal-slowdown'))}"
    )
