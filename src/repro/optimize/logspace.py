"""Log-space convex programming scaffolding for Cobb-Douglas allocation.

Cobb-Douglas allocation programs become convex after the substitution
``z_ir = log x_ir``:

* ``log U_i`` is *linear* in ``z`` — so Nash-welfare and max-min
  objectives are concave;
* EF, SI and PE (MRS-equality) constraints are *linear* in ``z``;
* the capacity constraint ``sum_i exp(z_ir) <= C_r`` is convex.

This is the same structure the paper exploits with geometric
programming via CVX (§5.5, footnote 2); here we solve with SciPy's
SLSQP.  The module provides the shared constraint builders; the concrete
mechanisms live in :mod:`repro.optimize.mechanisms`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.mechanism import Allocation, AllocationProblem
from ..obs import MetricsRegistry, global_registry

__all__ = [
    "LogSpaceSolution",
    "log_weighted_utilities",
    "capacity_constraints",
    "envy_free_constraints",
    "sharing_incentive_constraints",
    "pareto_constraints",
    "solve",
]

#: Floor applied inside exp/log transforms to keep the solver in-domain.
_Z_FLOOR = -30.0

#: Relative per-resource capacity overshoot beyond which an SLSQP
#: iterate is treated as infeasible rather than numerically sloppy.
CAPACITY_TOLERANCE = 1e-6

#: Iteration-count buckets for the solver histogram.
_ITERATION_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)

#: Bound lazily on the first :func:`solve` call — scipy.optimize costs
#: ~0.5s of process start-up and the closed-form fast path never needs
#: it.  Tests monkeypatch this attribute to fake solver iterates.
minimize = None


@dataclass(frozen=True)
class LogSpaceSolution:
    """A solved allocation plus solver diagnostics.

    ``success`` is the solver's own convergence flag *and* the
    capacity check: an iterate that over-commits any resource by more
    than :data:`CAPACITY_TOLERANCE` (relative) is reported as a
    failure even when SLSQP claims convergence.  ``allocation`` is
    always capacity-feasible — over-committed iterates are projected
    back onto the capacity simplex (``projected`` is then True) and
    the pre-projection overshoot is kept in ``constraint_violation``.
    """

    allocation: Allocation
    objective_value: float
    success: bool
    message: str
    n_iterations: int
    constraint_violation: float = 0.0
    projected: bool = False


def log_weighted_utilities(problem: AllocationProblem, z: np.ndarray) -> np.ndarray:
    """``log U_i`` for every agent given flattened log-allocations ``z``.

    ``log U_i = sum_r a_ir * (z_ir - log C_r)`` using each agent's raw
    elasticities (the scale constant cancels in the ``u_i(x)/u_i(C)``
    ratio).
    """
    alpha = problem.raw_alpha_matrix()
    log_caps = np.log(problem.capacity_vector)
    z_matrix = z.reshape(problem.n_agents, problem.n_resources)
    return np.einsum("ir,ir->i", alpha, z_matrix - log_caps)


def capacity_constraints(problem: AllocationProblem) -> List[Dict]:
    """Per-resource constraints ``C_r - sum_i exp(z_ir) >= 0``."""
    n, R = problem.n_agents, problem.n_resources
    caps = problem.capacity_vector

    def make(r: int) -> Callable[[np.ndarray], float]:
        def fun(z: np.ndarray) -> float:
            z_matrix = z[: n * R].reshape(n, R)
            return caps[r] - np.exp(z_matrix[:, r]).sum()

        return fun

    return [{"type": "ineq", "fun": make(r)} for r in range(R)]


def envy_free_constraints(problem: AllocationProblem) -> List[Dict]:
    """Linear-in-z EF constraints: ``u_i(x_i) >= u_i(x_j)`` for all i != j.

    In log space: ``sum_r a_ir (z_ir - z_jr) >= 0``.
    """
    n, R = problem.n_agents, problem.n_resources
    alpha = problem.raw_alpha_matrix()
    constraints: List[Dict] = []

    def make(i: int, j: int) -> Callable[[np.ndarray], float]:
        def fun(z: np.ndarray) -> float:
            z_matrix = z[: n * R].reshape(n, R)
            return float(np.dot(alpha[i], z_matrix[i] - z_matrix[j]))

        return fun

    for i in range(n):
        for j in range(n):
            if i != j:
                constraints.append({"type": "ineq", "fun": make(i, j)})
    return constraints


def sharing_incentive_constraints(problem: AllocationProblem) -> List[Dict]:
    """Linear-in-z SI constraints: ``u_i(x_i) >= u_i(C / N)`` (Eq. 3)."""
    n, R = problem.n_agents, problem.n_resources
    alpha = problem.raw_alpha_matrix()
    log_equal = np.log(problem.equal_split)
    constraints: List[Dict] = []

    def make(i: int) -> Callable[[np.ndarray], float]:
        def fun(z: np.ndarray) -> float:
            z_matrix = z[: n * R].reshape(n, R)
            return float(np.dot(alpha[i], z_matrix[i] - log_equal))

        return fun

    for i in range(n):
        constraints.append({"type": "ineq", "fun": make(i)})
    return constraints


def pareto_constraints(problem: AllocationProblem) -> List[Dict]:
    """Linear-in-z MRS-equality constraints (Eq. 10 / the PE rows of Eq. 11).

    For every agent ``i > 0`` and resource ``r > 0`` we require

        log(a_ir / a_i0) + z_i0 - z_ir == log(a_0r / a_00) + z_00 - z_0r

    i.e. agent ``i``'s MRS between resources ``r`` and ``0`` equals agent
    0's.  Pinning everything to agent 0 / resource 0 gives an
    irredundant set of ``(N - 1) * (R - 1)`` equalities.

    Zero (or non-finite) elasticities make an MRS undefined — the log
    offset would be ``-inf``/``nan`` and poison every SLSQP iterate —
    so constraints touching one are *skipped*: an agent with zero
    elasticity for a resource has zero marginal utility there, and no
    MRS equality can (or needs to) hold for it.  Agent 0's pivot
    elasticity ``alpha[0, 0]`` appears in every offset; if it is zero
    there is no valid reference MRS at all and a ``ValueError`` is
    raised — reorder the agents or drop the degenerate one.
    """
    n, R = problem.n_agents, problem.n_resources
    alpha = problem.raw_alpha_matrix()
    if not np.isfinite(alpha[0, 0]) or alpha[0, 0] <= 0:
        raise ValueError(
            "pareto_constraints pins every MRS to agent 0's trade-off against "
            f"resource 0, but agent {problem.agents[0].name!r} has a zero (or "
            "non-finite) pivot elasticity there; reorder the agents so agent 0 "
            "values resource 0, or drop the degenerate agent"
        )
    constraints: List[Dict] = []

    def usable(value: float) -> bool:
        return bool(np.isfinite(value)) and value > 0

    def make(i: int, r: int) -> Callable[[np.ndarray], float]:
        offset = float(np.log(alpha[i, r] / alpha[i, 0]) - np.log(alpha[0, r] / alpha[0, 0]))

        def fun(z: np.ndarray) -> float:
            z_matrix = z[: n * R].reshape(n, R)
            return offset + (z_matrix[i, 0] - z_matrix[i, r]) - (
                z_matrix[0, 0] - z_matrix[0, r]
            )

        return fun

    for i in range(1, n):
        for r in range(1, R):
            if not all(usable(v) for v in (alpha[i, r], alpha[i, 0], alpha[0, r])):
                continue  # MRS undefined at a zero elasticity: no constraint
            constraints.append({"type": "eq", "fun": make(i, r)})
    return constraints


def solve(
    problem: AllocationProblem,
    objective: Callable[[np.ndarray], float],
    extra_constraints: Optional[Sequence[Dict]] = None,
    extra_variables: int = 0,
    initial_extra: Optional[Sequence[float]] = None,
    mechanism: str = "logspace",
    maxiter: int = 1000,
    initial_shares: Optional[np.ndarray] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> LogSpaceSolution:
    """Maximize ``objective(vars)`` over log-allocations with SLSQP.

    Parameters
    ----------
    problem:
        The allocation instance; its capacity constraints are always
        included.
    objective:
        Function of the full variable vector (``N * R`` log-allocations
        followed by ``extra_variables`` auxiliary scalars, e.g. the
        epigraph variable of a max-min program) to be **maximized**.
    extra_constraints:
        Additional SLSQP-style constraint dicts (EF/SI/PE or epigraph).
    extra_variables / initial_extra:
        Number and initial values of auxiliary variables appended after
        the log-allocations.
    mechanism:
        Label recorded on the returned :class:`Allocation`.
    initial_shares:
        Optional ``(N, R)`` warm-start shares; defaults to the equal
        split.
    metrics:
        Registry for solver telemetry (runs, iterations, wall time,
        infeasible iterates); defaults to the process-global registry.

    Returns
    -------
    LogSpaceSolution
        The returned allocation is always capacity-feasible: iterates
        that over-commit a resource are projected back onto the
        capacity simplex, with the overshoot reported in
        ``constraint_violation`` and ``success`` forced False when it
        exceeds :data:`CAPACITY_TOLERANCE`.
    """
    global minimize
    if minimize is None:
        from scipy.optimize import minimize as _scipy_minimize

        minimize = _scipy_minimize

    registry = metrics if metrics is not None else global_registry()
    n, R = problem.n_agents, problem.n_resources
    if initial_shares is None:
        z0 = np.log(np.tile(problem.equal_split, (n, 1))).ravel()
    else:
        z0 = np.log(np.maximum(np.asarray(initial_shares, dtype=float), 1e-12)).ravel()
    x0 = np.concatenate([z0, np.asarray(initial_extra or [0.0] * extra_variables)])

    constraints = capacity_constraints(problem) + list(extra_constraints or [])
    log_caps = np.log(problem.capacity_vector)
    bounds = [
        (_Z_FLOOR, float(log_caps[r]))
        for _ in range(n)
        for r in range(R)
    ] + [(None, None)] * extra_variables

    start_time = time.perf_counter()
    result = minimize(
        lambda v: -objective(v),
        x0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": maxiter, "ftol": 1e-12},
    )
    wall_seconds = time.perf_counter() - start_time
    z_matrix = result.x[: n * R].reshape(n, R)
    shares = np.exp(z_matrix)

    # SLSQP's final iterate can violate the (nonlinear) capacity
    # constraints — slightly on a sloppy convergence, grossly on an
    # outright failure.  Returning such shares as an Allocation would
    # propagate infeasibility downstream, so project each over-committed
    # resource column back onto the capacity simplex (uniform rescale
    # preserves the agents' relative shares) and surface the overshoot.
    caps = problem.capacity_vector
    totals = shares.sum(axis=0)
    violation = float(np.max((totals - caps) / caps))
    violation = max(violation, 0.0)
    projected = False
    over = totals > caps
    if np.any(over):
        shares = shares.copy()
        shares[:, over] *= caps[over] / totals[over]
        projected = True

    success = bool(result.success) and violation <= CAPACITY_TOLERANCE
    message = str(result.message)
    if bool(result.success) and not success:
        message += f" (capacity violated by {violation:.3e} relative; projected)"

    registry.counter(
        "repro_solver_runs_total",
        help="SLSQP runs by mechanism and outcome.",
        mechanism=mechanism,
        outcome="success" if success else "failure",
    ).inc()
    if violation > CAPACITY_TOLERANCE:
        registry.counter(
            "repro_solver_infeasible_total",
            help="SLSQP iterates that over-committed capacity beyond tolerance.",
            mechanism=mechanism,
        ).inc()
    registry.histogram(
        "repro_solver_iterations",
        help="SLSQP iteration counts per run.",
        buckets=_ITERATION_BUCKETS,
        mechanism=mechanism,
    ).observe(int(result.nit))
    registry.histogram(
        "repro_solver_wall_seconds",
        help="SLSQP wall time per run.",
        mechanism=mechanism,
    ).observe(wall_seconds)

    allocation = Allocation(problem=problem, shares=shares, mechanism=mechanism)
    return LogSpaceSolution(
        allocation=allocation,
        objective_value=float(objective(result.x)),
        success=success,
        message=message,
        n_iterations=int(result.nit),
        constraint_violation=violation,
        projected=projected,
    )
