"""The REF proportional-elasticity allocation mechanism (§4, Eqs. 12-13).

The mechanism's inputs are each agent's fitted Cobb-Douglas utility and
the total capacity of each shared resource.  Its output is a closed-form
allocation: re-scale each agent's elasticities so they sum to one
(Eq. 12) and give each agent a share of every resource proportional to
her re-scaled elasticity for it (Eq. 13):

    x_ir = ( a_ir / sum_j a_jr ) * C_r

This allocation coincides with the Nash bargaining solution and the
Competitive Equilibrium from Equal Incomes, and therefore provides
sharing incentives, envy-freeness and Pareto efficiency (§4.2), plus
strategy-proofness in the large (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .utility import CobbDouglasUtility

__all__ = [
    "Agent",
    "AllocationProblem",
    "Allocation",
    "proportional_elasticity",
    "project_to_floors",
    "apply_allocation_floors",
]


@dataclass(frozen=True)
class Agent:
    """A user sharing the machine, identified by name, with fitted utility."""

    name: str
    utility: CobbDouglasUtility

    @property
    def rescaled_alpha(self) -> np.ndarray:
        """The agent's elasticities re-scaled to sum to one (Eq. 12)."""
        return self.utility.rescaled().alpha


@dataclass(frozen=True)
class AllocationProblem:
    """An N-agent, R-resource fair-division instance.

    Parameters
    ----------
    agents:
        The users sharing the system, each with a Cobb-Douglas utility
        over the same ``R`` resources.
    capacities:
        Total capacity ``C_r`` of each resource (e.g. ``(24.0, 12.0)``
        for 24 GB/s of bandwidth and 12 MB of cache in the paper's
        recurring example).
    resource_names:
        Optional human-readable labels, defaulting to ``r0, r1, ...``.
    """

    agents: Tuple[Agent, ...]
    capacities: Tuple[float, ...]
    resource_names: Tuple[str, ...] = ()

    def __init__(
        self,
        agents: Iterable[Agent],
        capacities: Iterable[float],
        resource_names: Optional[Iterable[str]] = None,
    ):
        agents = tuple(agents)
        capacities = tuple(float(c) for c in capacities)
        if not agents:
            raise ValueError("an allocation problem needs at least one agent")
        if not capacities:
            raise ValueError("an allocation problem needs at least one resource")
        if any(c <= 0 for c in capacities):
            raise ValueError(f"capacities must be strictly positive, got {capacities}")
        for agent in agents:
            if agent.utility.n_resources != len(capacities):
                raise ValueError(
                    f"agent {agent.name!r} has a utility over "
                    f"{agent.utility.n_resources} resources but the problem "
                    f"has {len(capacities)}"
                )
        names = tuple(agent.name for agent in agents)
        if len(set(names)) != len(names):
            raise ValueError(f"agent names must be unique, got {names}")
        if resource_names is None:
            resource_names = tuple(f"r{r}" for r in range(len(capacities)))
        else:
            resource_names = tuple(resource_names)
            if len(resource_names) != len(capacities):
                raise ValueError(
                    f"expected {len(capacities)} resource names, got {len(resource_names)}"
                )
        object.__setattr__(self, "agents", agents)
        object.__setattr__(self, "capacities", capacities)
        object.__setattr__(self, "resource_names", resource_names)

    @property
    def n_agents(self) -> int:
        return len(self.agents)

    @property
    def n_resources(self) -> int:
        return len(self.capacities)

    @property
    def capacity_vector(self) -> np.ndarray:
        return np.asarray(self.capacities, dtype=float)

    @property
    def equal_split(self) -> np.ndarray:
        """The equal division ``C / N`` each agent compares against for SI."""
        return self.capacity_vector / self.n_agents

    def rescaled_alpha_matrix(self) -> np.ndarray:
        """``(N, R)`` matrix of re-scaled elasticities, one row per agent."""
        return np.vstack([agent.rescaled_alpha for agent in self.agents])

    def raw_alpha_matrix(self) -> np.ndarray:
        """``(N, R)`` matrix of raw (as-fitted) elasticities."""
        return np.vstack([agent.utility.alpha for agent in self.agents])


@dataclass(frozen=True)
class Allocation:
    """A concrete division of the machine among the problem's agents.

    ``shares[i, r]`` is the amount of resource ``r`` given to agent ``i``
    (same agent order as ``problem.agents``).
    """

    problem: AllocationProblem
    shares: np.ndarray = field(repr=False)
    mechanism: str = "unspecified"

    def __post_init__(self) -> None:
        shares = np.asarray(self.shares, dtype=float)
        expected = (self.problem.n_agents, self.problem.n_resources)
        if shares.shape != expected:
            raise ValueError(f"shares must have shape {expected}, got {shares.shape}")
        if not np.all(np.isfinite(shares)):
            raise ValueError(
                "shares must be finite; a NaN/inf share means an upstream "
                "fit or mechanism produced a degenerate allocation"
            )
        if np.any(shares < -1e-12):
            raise ValueError("shares must be non-negative")
        object.__setattr__(self, "shares", shares)

    def __getitem__(self, agent_name: str) -> np.ndarray:
        """Allocation vector for the named agent."""
        for i, agent in enumerate(self.problem.agents):
            if agent.name == agent_name:
                return self.shares[i]
        raise KeyError(f"no agent named {agent_name!r}")

    def utilities(self) -> np.ndarray:
        """Each agent's utility of her own bundle, in agent order."""
        return np.array(
            [agent.utility.value(self.shares[i]) for i, agent in enumerate(self.problem.agents)]
        )

    def fractions(self) -> np.ndarray:
        """Shares normalized by total capacity (rows of per-resource fractions)."""
        return self.shares / self.problem.capacity_vector

    def is_feasible(self, tol: float = 1e-9) -> bool:
        """True when per-resource totals do not exceed capacity."""
        totals = self.shares.sum(axis=0)
        return bool(np.all(totals <= self.problem.capacity_vector * (1 + tol)))

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Nested ``{agent: {resource: amount}}`` mapping for reporting."""
        return {
            agent.name: {
                name: float(self.shares[i, r])
                for r, name in enumerate(self.problem.resource_names)
            }
            for i, agent in enumerate(self.problem.agents)
        }

    def summary(self) -> str:
        """Human-readable allocation table (used by examples and benches)."""
        lines: List[str] = []
        header = f"{'agent':<20}" + "".join(
            f"{name:>14}" for name in self.problem.resource_names
        )
        lines.append(header)
        for i, agent in enumerate(self.problem.agents):
            row = f"{agent.name:<20}" + "".join(
                f"{self.shares[i, r]:>14.4f}" for r in range(self.problem.n_resources)
            )
            lines.append(row)
        return "\n".join(lines)


def proportional_elasticity(
    problem: AllocationProblem, weights: Optional[Sequence[float]] = None
) -> Allocation:
    """Compute the REF allocation in closed form (Eq. 13).

    Each agent receives, for every resource, a share of total capacity
    proportional to her re-scaled elasticity for that resource:

        x_ir = ( a^_ir / sum_j a^_jr ) * C_r

    The computation is O(N * R) — the "computationally trivial" property
    the paper contrasts with geometric-programming alternatives (§5.5).

    Parameters
    ----------
    problem:
        The fair-division instance.
    weights:
        Optional strictly positive per-agent priorities.  Equal weights
        (the default) give CEEI / the paper's mechanism; unequal weights
        give the natural priority-class generalization — equivalent to
        a competitive equilibrium from *unequal* incomes, so PE is
        retained while SI/EF hold between equal-weight agents only.

    Returns
    -------
    Allocation
        With default weights: the fair allocation, provably satisfying
        SI, EF, PE and SPL for Cobb-Douglas agents.
    """
    alpha = problem.rescaled_alpha_matrix()
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.shape != (problem.n_agents,):
            raise ValueError(
                f"weights must have one entry per agent ({problem.n_agents}), "
                f"got shape {w.shape}"
            )
        if np.any(w <= 0):
            raise ValueError("weights must be strictly positive")
        alpha = alpha * w[:, None]
    denom = alpha.sum(axis=0)
    # Degenerate columns — every agent's (weighted, re-scaled) elasticity
    # for a resource is zero, or some report is non-finite — would turn
    # Eq. 13 into 0/0 = NaN.  Nobody expressed a preference for such a
    # resource, so equal-splitting it is the unique symmetric choice (and
    # keeps SI/EF trivially for that column).
    degenerate = ~np.isfinite(denom) | (denom <= 0.0)
    safe_denom = np.where(degenerate, 1.0, denom)
    shares = alpha / safe_denom * problem.capacity_vector
    if np.any(degenerate):
        equal = problem.capacity_vector / problem.n_agents
        shares[:, degenerate] = equal[degenerate]
    mechanism = "proportional_elasticity" if weights is None else "weighted_proportional_elasticity"
    return Allocation(problem=problem, shares=shares, mechanism=mechanism)


def project_to_floors(
    shares: np.ndarray, capacities: Sequence[float], floors: Sequence[float]
) -> np.ndarray:
    """Project per-resource shares onto the floor-constrained simplex.

    For every resource ``r`` the returned column satisfies
    ``y_ir >= floors[r]`` and ``sum_i y_ir <= capacities[r]`` while
    staying proportional to the input shares among agents that are not
    pinned at the floor.  This is the *feasible* way to impose minimum
    allocations: naively clamping starved agents up to a floor without
    taking the excess from anyone else over-commits the resource.

    When the floors themselves are infeasible (``N * floors[r]`` exceeds
    ``capacities[r]``) the column degrades to an equal split — the
    closest uniform point, still capacity-feasible.

    Parameters
    ----------
    shares:
        ``(N, R)`` non-negative share matrix (need not be feasible).
    capacities:
        Total capacity per resource.
    floors:
        Per-resource minimum each agent must receive.

    Returns
    -------
    numpy.ndarray
        An ``(N, R)`` matrix with every column summing to exactly its
        capacity and every entry at or above its (feasible) floor.
    """
    x = np.asarray(shares, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"shares must be 2-D (agents x resources), got shape {x.shape}")
    n_agents, n_resources = x.shape
    caps = np.asarray(capacities, dtype=float)
    mins = np.asarray(floors, dtype=float)
    if caps.shape != (n_resources,) or mins.shape != (n_resources,):
        raise ValueError(
            f"capacities and floors must have one entry per resource "
            f"({n_resources}), got {caps.shape} and {mins.shape}"
        )
    if np.any(caps <= 0):
        raise ValueError(f"capacities must be strictly positive, got {caps.tolist()}")
    if np.any(mins < 0):
        raise ValueError(f"floors must be non-negative, got {mins.tolist()}")

    out = np.empty_like(x)
    for r in range(n_resources):
        capacity, floor = float(caps[r]), float(mins[r])
        column = np.nan_to_num(x[:, r], nan=0.0, posinf=0.0, neginf=0.0)
        column = np.maximum(column, 0.0)
        if n_agents * floor >= capacity:
            # Floors are infeasible; equal split is the best uniform point.
            out[:, r] = capacity / n_agents
            continue
        # Iteratively pin at the floor every agent whose proportional
        # share of the remaining capacity falls below it; at most N
        # rounds since the pinned set only grows.
        pinned = np.zeros(n_agents, dtype=bool)
        while True:
            free = ~pinned
            budget = capacity - floor * int(pinned.sum())
            total = float(column[free].sum())
            scaled = np.empty(n_agents)
            if total > 0:
                scaled[free] = column[free] / total * budget
            else:
                scaled[free] = budget / max(int(free.sum()), 1)
            newly = free & (scaled < floor)
            if not newly.any():
                out[:, r] = np.where(pinned, floor, scaled)
                break
            pinned |= newly
    return out


def apply_allocation_floors(
    allocation: Allocation, floors: Sequence[float]
) -> Allocation:
    """Return a feasible copy of an allocation with per-resource floors.

    The projection (:func:`project_to_floors`) redistributes rather than
    clamps, so the result always satisfies :meth:`Allocation.is_feasible`.
    """
    shares = project_to_floors(
        allocation.shares, allocation.problem.capacity_vector, floors
    )
    return Allocation(
        problem=allocation.problem,
        shares=shares,
        mechanism=f"{allocation.mechanism}+floors",
    )
