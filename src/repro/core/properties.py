"""Game-theoretic property checkers: SI, EF, PE (§3, Eq. 11).

The paper defines a fair allocation by three properties:

* **Sharing incentives (SI)** — every agent weakly prefers her bundle to
  the equal split ``C / N`` (Eq. 3).
* **Envy-freeness (EF)** — no agent strictly prefers another agent's
  bundle to her own (§3.2).
* **Pareto efficiency (PE)** — no feasible reallocation makes someone
  strictly better off without making someone else worse off; for
  interior Cobb-Douglas allocations this is equivalent to all agents
  having equal marginal rates of substitution (§3.3, Eq. 10).

These checkers are used by the tests to certify REF allocations and by
the evaluation benches to demonstrate, as in Figs. 10-12, that the
equal-slowdown mechanism violates SI and EF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .mechanism import Allocation

__all__ = [
    "sharing_incentive_margins",
    "satisfies_sharing_incentives",
    "envy_matrix",
    "is_envy_free",
    "mrs_spread",
    "is_pareto_efficient",
    "unfairness_index",
    "FairnessReport",
    "check_fairness",
]

#: Default relative tolerance for property checks.  Property violations in
#: the paper's counterexamples are orders of magnitude larger than this.
DEFAULT_RTOL = 1e-6


def sharing_incentive_margins(allocation: Allocation) -> np.ndarray:
    """Per-agent SI margin: ``u_i(x_i) / u_i(C/N) - 1``.

    Positive margins mean the agent strictly gains from sharing; a
    negative margin is an SI violation (the agent would rather take the
    equal split).
    """
    problem = allocation.problem
    equal = problem.equal_split
    margins = np.empty(problem.n_agents)
    for i, agent in enumerate(problem.agents):
        u_equal = agent.utility.value(equal)
        u_own = agent.utility.value(allocation.shares[i])
        margins[i] = u_own / u_equal - 1.0
    return margins


def satisfies_sharing_incentives(allocation: Allocation, rtol: float = DEFAULT_RTOL) -> bool:
    """True when every agent weakly prefers her bundle to ``C / N`` (Eq. 3)."""
    return bool(np.all(sharing_incentive_margins(allocation) >= -rtol))


def envy_matrix(allocation: Allocation) -> np.ndarray:
    """``(N, N)`` matrix ``E[i, j] = u_i(x_j) / u_i(x_i) - 1``.

    ``E[i, j] > 0`` means agent ``i`` envies agent ``j`` — she would be
    strictly happier with ``j``'s bundle.  The diagonal is zero.
    """
    problem = allocation.problem
    n = problem.n_agents
    matrix = np.zeros((n, n))
    for i, agent in enumerate(problem.agents):
        u_own = agent.utility.value(allocation.shares[i])
        for j in range(n):
            if i == j:
                continue
            u_other = agent.utility.value(allocation.shares[j])
            if u_own == 0.0:
                # Zero own-utility: the agent envies any bundle she values.
                matrix[i, j] = np.inf if u_other > 0 else 0.0
            else:
                matrix[i, j] = u_other / u_own - 1.0
    return matrix


def is_envy_free(allocation: Allocation, rtol: float = DEFAULT_RTOL) -> bool:
    """True when no agent strictly prefers another agent's bundle (§3.2)."""
    return bool(np.all(envy_matrix(allocation) <= rtol))


def mrs_spread(allocation: Allocation) -> float:
    """Maximum disagreement in marginal rates of substitution across agents.

    For each agent we form the normalized utility-gradient direction
    ``g_ir = a_ir / x_ir`` (the Cobb-Douglas gradient up to the positive
    factor ``u_i``); PE at an interior allocation requires all agents'
    directions to coincide (the tangency condition of Eq. 10).  Returns
    the maximum relative deviation of any agent's direction from the
    mean direction; zero (up to floating point) at PE allocations.

    Raises
    ------
    ValueError
        If any agent holds a zero amount of some resource (the gradient
        direction is undefined at the boundary).
    """
    problem = allocation.problem
    if np.any(allocation.shares <= 0):
        raise ValueError(
            "MRS spread is only defined for interior allocations "
            "(all shares strictly positive)"
        )
    directions = np.empty_like(allocation.shares)
    for i, agent in enumerate(problem.agents):
        grad = agent.utility.alpha / allocation.shares[i]
        directions[i] = grad / grad.sum()
    mean_dir = directions.mean(axis=0)
    return float(np.max(np.abs(directions - mean_dir) / mean_dir))


def is_pareto_efficient(allocation: Allocation, rtol: float = 1e-4) -> bool:
    """True when the interior allocation satisfies the PE tangency condition.

    Checks that every agent's marginal rate of substitution agrees for
    every pair of resources (Eq. 10).  The tolerance is looser than the
    SI/EF checks because numeric optimizers only equalize MRS values to
    their convergence tolerance.
    """
    if np.any(allocation.shares <= 0):
        # Boundary allocations can be PE (the Edgeworth-box origins) but
        # are never produced by the mechanisms we evaluate; report False
        # so callers treat them as needing manual analysis.
        return False
    return mrs_spread(allocation) <= rtol


def unfairness_index(allocation: Allocation) -> float:
    """Max-over-min weighted-utility ratio (the prior-work unfairness index).

    Prior memory-scheduling work considers an allocation fair when every
    agent suffers the same slowdown, i.e. when this index is 1.0 (§6).
    Uses weighted utility ``U_i = u_i(x_i) / u_i(C)`` as the slowdown
    proxy, exactly as §5.5 does.
    """
    problem = allocation.problem
    capacity = problem.capacity_vector
    weighted = np.array(
        [
            agent.utility.value(allocation.shares[i]) / agent.utility.value(capacity)
            for i, agent in enumerate(problem.agents)
        ]
    )
    if np.any(weighted == 0):
        return float("inf")
    return float(weighted.max() / weighted.min())


@dataclass(frozen=True)
class FairnessReport:
    """Aggregate result of checking SI, EF and PE for one allocation."""

    sharing_incentives: bool
    envy_free: bool
    pareto_efficient: bool
    si_margins: np.ndarray
    envy: np.ndarray
    mrs_disagreement: Optional[float]

    @property
    def is_fair(self) -> bool:
        """Fair in the game-theoretic sense: EF and PE (§3) plus SI."""
        return self.sharing_incentives and self.envy_free and self.pareto_efficient

    def summary(self) -> str:
        """One-line-per-property report used by examples and benches."""
        lines: List[str] = [
            f"sharing incentives : {'PASS' if self.sharing_incentives else 'VIOLATED'}"
            f"  (worst margin {self.si_margins.min():+.4f})",
            f"envy-freeness      : {'PASS' if self.envy_free else 'VIOLATED'}"
            f"  (worst envy {np.max(self.envy):+.4f})",
        ]
        if self.mrs_disagreement is None:
            lines.append("pareto efficiency  : UNDEFINED (boundary allocation)")
        else:
            lines.append(
                f"pareto efficiency  : {'PASS' if self.pareto_efficient else 'VIOLATED'}"
                f"  (MRS spread {self.mrs_disagreement:.2e})"
            )
        return "\n".join(lines)


def check_fairness(
    allocation: Allocation,
    rtol: float = DEFAULT_RTOL,
    pe_rtol: float = 1e-4,
) -> FairnessReport:
    """Evaluate all three fairness properties for an allocation."""
    interior = bool(np.all(allocation.shares > 0))
    disagreement = mrs_spread(allocation) if interior else None
    return FairnessReport(
        sharing_incentives=satisfies_sharing_incentives(allocation, rtol),
        envy_free=is_envy_free(allocation, rtol),
        pareto_efficient=(disagreement is not None and disagreement <= pe_rtol),
        si_margins=sharing_incentive_margins(allocation),
        envy=envy_matrix(allocation),
        mrs_disagreement=disagreement,
    )
