"""Competitive Equilibrium from Equal Incomes (CEEI) — §4.2, executable.

The paper's fairness proof identifies the REF allocation with the CEEI
solution: start every agent with an equal budget, post prices, let
Cobb-Douglas consumers demand optimally, and clear the market.

For *re-scaled* Cobb-Douglas utilities the equilibrium is closed form.
A Cobb-Douglas consumer with budget ``B`` spends the fraction ``a_r``
of it on resource ``r`` (the classic expenditure-share property), so
demand is ``x_ir = a_ir * B_i / p_r``; market clearing
``sum_i x_ir = C_r`` pins the price

    p_r = sum_i a_ir * B_i / C_r .

With equal budgets this reproduces Eq. 13 exactly — the identity this
module verifies (and that the tests pin down).  Unequal budgets give
the natural weighted generalization (useful for priority classes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .mechanism import Allocation, AllocationProblem

__all__ = ["CompetitiveEquilibrium", "competitive_equilibrium"]


@dataclass(frozen=True)
class CompetitiveEquilibrium:
    """A market equilibrium: prices plus the demanded allocation.

    Attributes
    ----------
    prices:
        Per-resource market-clearing prices (per unit of resource).
    incomes:
        Per-agent budgets (all equal for CEEI proper).
    allocation:
        The equilibrium allocation (each agent's optimal bundle at the
        posted prices, budgets exhausted, markets cleared).
    """

    prices: np.ndarray
    incomes: np.ndarray
    allocation: Allocation

    def budget_spent(self) -> np.ndarray:
        """Money spent by each agent at the equilibrium (== incomes)."""
        return self.allocation.shares @ self.prices

    def excess_demand(self) -> np.ndarray:
        """Per-resource demand minus capacity (zero at equilibrium)."""
        return self.allocation.shares.sum(axis=0) - self.allocation.problem.capacity_vector

    def is_equilibrium(self, tol: float = 1e-9) -> bool:
        """Check budget exhaustion and market clearing."""
        budgets_ok = np.allclose(self.budget_spent(), self.incomes, rtol=tol, atol=tol)
        markets_ok = np.allclose(self.excess_demand(), 0.0, atol=tol)
        return bool(budgets_ok and markets_ok)


def competitive_equilibrium(
    problem: AllocationProblem, incomes: Optional[Sequence[float]] = None
) -> CompetitiveEquilibrium:
    """Compute the (closed-form) competitive equilibrium.

    Parameters
    ----------
    problem:
        The allocation instance; utilities are re-scaled internally
        (CEEI is defined on the homogeneous representatives).
    incomes:
        Optional positive per-agent budgets; defaults to the equal
        incomes of CEEI.  Only ratios matter.

    Returns
    -------
    CompetitiveEquilibrium
        With equal incomes, ``result.allocation`` coincides with
        :func:`repro.core.mechanism.proportional_elasticity` — the
        §4.2 equivalence.
    """
    alpha = problem.rescaled_alpha_matrix()
    if incomes is None:
        budgets = np.ones(problem.n_agents)
    else:
        budgets = np.asarray(incomes, dtype=float)
        if budgets.shape != (problem.n_agents,):
            raise ValueError(
                f"incomes must have one entry per agent "
                f"({problem.n_agents}), got shape {budgets.shape}"
            )
        if np.any(budgets <= 0):
            raise ValueError("incomes must be strictly positive")

    capacity = problem.capacity_vector
    # Market-clearing prices for Cobb-Douglas expenditure shares.
    prices = (alpha * budgets[:, None]).sum(axis=0) / capacity
    shares = alpha * budgets[:, None] / prices
    allocation = Allocation(problem=problem, shares=shares, mechanism="ceei")
    return CompetitiveEquilibrium(prices=prices, incomes=budgets, allocation=allocation)
