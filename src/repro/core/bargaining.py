"""The Nash bargaining solution — §4.2's other equivalence, executable.

Nash's solution to the bargaining problem maximizes the product of
utilities over the feasible set (Eq. 14):

    max  prod_i u^_i(x_i)   subject to   sum_i x_ir <= C_r .

For re-scaled Cobb-Douglas utilities the Lagrangian conditions yield
the proportional-elasticity allocation, which is why REF inherits the
bargaining solution's efficiency.  This module solves Eq. 14
*numerically* (log-space concave program, no closed form assumed) so
the equivalence with Eq. 13 becomes a testable statement rather than a
proof sketch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mechanism import Allocation, AllocationProblem

__all__ = ["NashBargainingSolution", "nash_bargaining"]


@dataclass(frozen=True)
class NashBargainingSolution:
    """The bargaining outcome plus the achieved Nash product."""

    allocation: Allocation
    nash_product: float
    converged: bool


def nash_bargaining(problem: AllocationProblem, maxiter: int = 500) -> NashBargainingSolution:
    """Maximize the product of re-scaled utilities over the feasible set.

    The program is solved in log space where it is concave:
    ``max sum_i sum_r a^_ir z_ir`` subject to ``sum_i exp(z_ir) <= C_r``.
    The disagreement point is the zero-utility origin (no agreement
    means no resources), so utilities enter the product unshifted.
    """
    from scipy.optimize import minimize  # deferred: heavy import, cold paths skip it

    alpha = problem.rescaled_alpha_matrix()
    n, r = alpha.shape
    capacity = problem.capacity_vector
    z0 = np.log(np.tile(problem.equal_split, (n, 1))).ravel()

    def objective(z: np.ndarray) -> float:
        return -float(np.sum(alpha * z.reshape(n, r)))

    constraints = [
        {
            "type": "ineq",
            "fun": (lambda z, rr=rr: capacity[rr] - np.exp(z.reshape(n, r)[:, rr]).sum()),
        }
        for rr in range(r)
    ]
    bounds = [(-30.0, float(np.log(capacity[rr]))) for _ in range(n) for rr in range(r)]
    result = minimize(
        objective,
        z0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": maxiter, "ftol": 1e-14},
    )
    shares = np.exp(result.x.reshape(n, r))
    allocation = Allocation(problem=problem, shares=shares, mechanism="nash_bargaining")
    rescaled = [agent.utility.rescaled() for agent in problem.agents]
    product = float(np.prod([u.value(shares[i]) for i, u in enumerate(rescaled)]))
    return NashBargainingSolution(
        allocation=allocation, nash_product=product, converged=bool(result.success)
    )
