"""Pluggable mechanism registry: allocation mechanisms as strategy objects.

Historically every consumer of "a mechanism" kept its own hard-coded
name table — the dynamic controller's if/elif chain, the CLI's static
``choices`` tuples, the shard coordinator's ``ref``-only gate.  Adding a
mechanism meant touching all of them in lock-step.  This module makes
mechanisms first-class: each is a :class:`Mechanism` strategy object
with a uniform ``solve(problem, context) -> Allocation`` interface,
capability flags, optional *persistent per-agent state* carried across
epochs, and serializable state for checkpoint/restore — registered by
name in one :class:`MechanismRegistry` that the controller, the serve
tier, the shard coordinator, and the CLI all resolve through.

Capability flags (class attributes, filterable via
:meth:`MechanismRegistry.names`):

``fast_path``
    Closed form, O(N·R); the controller counts these under
    ``repro_solver_fast_path_total``.
``warm_startable``
    SLSQP-backed; accepts the previous epoch's enforced shares as a
    warm start (``repro_solver_warm_starts_total{outcome=hit|miss}``).
``stateful``
    Carries per-agent state across epochs; the controller calls
    :meth:`Mechanism.observe` after enforcement and
    :meth:`Mechanism.forget_agent` on departure.
``controller``
    Usable by the closed-loop controller (``repro dynamic`` /
    ``repro serve``).
``one_shot``
    Meaningful as a single static solve (``repro allocate`` /
    ``repro cosim``); stateful mechanisms that need history opt out.
``hierarchical``
    Composes with the Eq. 13 capacity split, so the shard coordinator
    may run it inside cells (``repro serve --cells N``).

The :class:`CreditMechanism` is the temporal-fairness extension from
the REF authors' follow-up (*Credit Fairness: Online Fairness In
Shared Resource Pools*): agents bank credit when an epoch gives them
less than their ``C/N`` entitlement and spend it to bias later epochs,
so sharing incentives hold over *horizons* (windows of epochs) even
where a single epoch violates them.  See ``docs/mechanisms.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

import numpy as np

from ..obs import MetricsRegistry
from .mechanism import Allocation, AllocationProblem, proportional_elasticity

__all__ = [
    "Mechanism",
    "MechanismRegistry",
    "SolveContext",
    "CreditMechanism",
    "MECHANISM_REGISTRY",
    "register_mechanism",
    "create_mechanism",
    "mechanism_names",
    "cli_mechanism_names",
    "controller_mechanism_names",
    "hierarchical_mechanism_names",
]

#: Event tuples returned by :meth:`Mechanism.observe`:
#: ``(kind, agent_or_None, detail)``.
ObserveEvent = Tuple[str, Optional[str], str]


@dataclass
class SolveContext:
    """Per-epoch inputs a mechanism may consume beyond the problem.

    ``warm_shares`` is the previous epoch's enforced ``(N, R)`` share
    matrix when the agent set is unchanged (else ``None``); ``metrics``
    is the caller's registry for solver telemetry.  One-shot callers
    (the CLI) pass no context at all.
    """

    epoch: int = 0
    warm_shares: Optional[np.ndarray] = None
    metrics: Optional[MetricsRegistry] = None


class Mechanism:
    """Base strategy object: one allocation mechanism, registered by name."""

    name: ClassVar[str] = ""
    fast_path: ClassVar[bool] = False
    warm_startable: ClassVar[bool] = False
    stateful: ClassVar[bool] = False
    controller: ClassVar[bool] = True
    one_shot: ClassVar[bool] = True
    hierarchical: ClassVar[bool] = False

    def solve(
        self, problem: AllocationProblem, context: Optional[SolveContext] = None
    ) -> Allocation:
        """Allocate; counts solver telemetry when the context carries metrics.

        The counting contract predates the registry and is relied on by
        dashboards and tests: closed-form solves increment
        ``repro_solver_fast_path_total{mechanism}``, SLSQP solves
        increment ``repro_solver_warm_starts_total{mechanism,outcome}``.
        """
        ctx = context if context is not None else SolveContext()
        if ctx.metrics is not None:
            if self.fast_path:
                ctx.metrics.counter(
                    "repro_solver_fast_path_total",
                    help="Epoch allocations served by a closed-form mechanism.",
                    mechanism=self.name,
                ).inc()
            elif self.warm_startable:
                ctx.metrics.counter(
                    "repro_solver_warm_starts_total",
                    help="SLSQP epoch solves by warm-start availability.",
                    mechanism=self.name,
                    outcome="hit" if ctx.warm_shares is not None else "miss",
                ).inc()
        return self._solve(problem, ctx)

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        raise NotImplementedError

    # -- persistent state hooks (no-ops for stateless mechanisms) --------

    def observe(
        self,
        enforced: Allocation,
        epoch: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> Tuple[ObserveEvent, ...]:
        """Feed back the epoch's *enforced* allocation; returns event tuples."""
        return ()

    def forget_agent(self, name: str) -> None:
        """Drop any per-agent state for a departed agent."""

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot for checkpoint/restore."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""


class MechanismRegistry:
    """Name -> :class:`Mechanism` subclass registry with flag filtering."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Mechanism]] = {}

    def register(self, cls: Type[Mechanism]) -> Type[Mechanism]:
        """Class decorator: register ``cls`` under ``cls.name``."""
        if not cls.name:
            raise ValueError(f"{cls.__name__} must set a non-empty name")
        if cls.name in self._classes:
            raise ValueError(f"duplicate mechanism name {cls.name!r}")
        self._classes[cls.name] = cls
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> Type[Mechanism]:
        try:
            return self._classes[name]
        except KeyError:
            raise ValueError(
                f"unknown mechanism {name!r}; expected one of "
                f"{sorted(self._classes)}"
            ) from None

    def create(self, name: str, **kwargs) -> Mechanism:
        """Instantiate a registered mechanism by name."""
        return self.get(name)(**kwargs)

    def names(self, **flags: bool) -> Tuple[str, ...]:
        """Sorted mechanism names whose capability flags match ``flags``.

        ``names(controller=True)`` lists everything the closed-loop
        controller may run; ``names()`` lists every registered name.
        """
        return tuple(
            sorted(
                name
                for name, cls in self._classes.items()
                if all(getattr(cls, flag) == wanted for flag, wanted in flags.items())
            )
        )


#: The process-wide registry every consumer resolves through.
MECHANISM_REGISTRY = MechanismRegistry()

register_mechanism = MECHANISM_REGISTRY.register


def create_mechanism(name: str, **kwargs) -> Mechanism:
    """Instantiate a mechanism from the process-wide registry."""
    return MECHANISM_REGISTRY.create(name, **kwargs)


def mechanism_names(**flags: bool) -> Tuple[str, ...]:
    """Registered mechanism names, optionally filtered by capability flags."""
    return MECHANISM_REGISTRY.names(**flags)


def cli_mechanism_names() -> Tuple[str, ...]:
    """Mechanisms meaningful as one-shot solves (``repro allocate``)."""
    return MECHANISM_REGISTRY.names(one_shot=True)


def controller_mechanism_names() -> Tuple[str, ...]:
    """Mechanisms the closed-loop controller accepts (``repro dynamic``)."""
    return MECHANISM_REGISTRY.names(controller=True)


def hierarchical_mechanism_names() -> Tuple[str, ...]:
    """Controller mechanisms that compose with the Eq. 13 capacity split."""
    return MECHANISM_REGISTRY.names(controller=True, hierarchical=True)


# ---------------------------------------------------------------------------
# The ported mechanisms.  Heavy solver imports stay inside _solve so that
# importing the registry (e.g. from the CLI's lazy choices) never drags
# SciPy in, and repro.core never imports repro.optimize at module level.
# ---------------------------------------------------------------------------


@register_mechanism
class RefMechanism(Mechanism):
    """Proportional elasticity (Eq. 13): the paper's closed form."""

    name = "ref"
    fast_path = True
    hierarchical = True

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        return proportional_elasticity(problem)


@register_mechanism
class MaxWelfareUnfairMechanism(Mechanism):
    """Unconstrained Nash-welfare optimum (closed form on raw elasticities)."""

    name = "max-welfare-unfair"
    fast_path = True

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        from ..optimize.mechanisms import max_nash_welfare

        return max_nash_welfare(problem, fair=False)


@register_mechanism
class MaxWelfareFairMechanism(Mechanism):
    """Nash welfare subject to SI/EF/PE (Eq. 11), via log-space SLSQP."""

    name = "max-welfare-fair"
    warm_startable = True

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        from ..optimize.mechanisms import max_nash_welfare

        return max_nash_welfare(
            problem,
            fair=True,
            initial_shares=context.warm_shares,
            stop_on_first_success=context.warm_shares is not None,
            metrics=context.metrics,
        )


@register_mechanism
class EqualSlowdownMechanism(Mechanism):
    """Max-min weighted utility (the equal-slowdown status quo, §4.5)."""

    name = "equal-slowdown"
    warm_startable = True

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        from ..optimize.mechanisms import equal_slowdown

        return equal_slowdown(
            problem,
            initial_shares=context.warm_shares,
            stop_on_first_success=context.warm_shares is not None,
            metrics=context.metrics,
        )


@register_mechanism
class DrfMechanism(Mechanism):
    """Dominant-resource fairness on elasticity-derived demand vectors."""

    name = "drf"
    controller = False  # allocate-only: no epoch loop semantics

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        from ..optimize.drf import drf_allocation

        return drf_allocation(problem)


@register_mechanism
class EqualSplitFallbackMechanism(Mechanism):
    """The always-feasible last resort (``C / N`` to everyone).

    Not user-selectable (``controller=False``, ``one_shot=False``): the
    controller instantiates it directly when the configured mechanism
    raises.  The allocation keeps the historical ``equal_split_fallback``
    tag so event consumers and dashboards are unaffected.
    """

    name = "equal-split-fallback"
    controller = False
    one_shot = False

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        shares = np.tile(problem.equal_split, (problem.n_agents, 1))
        return Allocation(
            problem=problem, shares=shares, mechanism="equal_split_fallback"
        )


@register_mechanism
class CreditMechanism(Mechanism):
    """Credit-based temporal fairness on top of the Eq. 13 closed form.

    Every epoch each agent's *credit balance* per resource moves by the
    gap between its entitlement fraction (``1/N`` of capacity) and the
    fraction it actually received: under-served agents bank credit,
    over-served agents go into debt.  The next epoch's solve multiplies
    each re-scaled elasticity by ``exp(spend_rate * balance)`` and
    renormalizes per resource, so banked credit buys a larger share
    later while every single epoch stays exactly capacity-feasible.

    Balances are clipped to ``[-max_balance, +max_balance]`` (capacity
    fractions), which bounds both the drift and how hard one epoch can
    be biased; credit that would overflow the bank is forfeited (and
    counted).  Because enforced allocations partition capacity exactly,
    unclipped balance updates are zero-sum per resource.

    With no history the bias is ``exp(0) = 1`` everywhere, so the first
    epoch *is* the REF allocation; the mechanism inherits REF's per-epoch
    PE and trades per-epoch SI/EF for their windowed (horizon) forms —
    see :mod:`repro.experiments.credit_horizon` for the empirical check.
    """

    name = "credit"
    fast_path = True  # one O(N·R) reweighted Eq. 13 pass
    stateful = True
    one_shot = False  # needs history; a single solve is just REF
    hierarchical = True  # within-cell credit under the Eq. 13 split

    def __init__(self, spend_rate: float = 2.0, max_balance: float = 0.5):
        if spend_rate <= 0 or not np.isfinite(spend_rate):
            raise ValueError(f"spend_rate must be positive, got {spend_rate}")
        if max_balance <= 0 or not np.isfinite(max_balance):
            raise ValueError(f"max_balance must be positive, got {max_balance}")
        self.spend_rate = float(spend_rate)
        self.max_balance = float(max_balance)
        #: agent name -> (R,) balance vector in capacity fractions.
        self._balances: Dict[str, np.ndarray] = {}

    def balance(self, name: str, n_resources: int = 2) -> np.ndarray:
        """The agent's current balance vector (zeros when unseen)."""
        stored = self._balances.get(name)
        if stored is None:
            return np.zeros(n_resources)
        return stored.copy()

    def _weights(self, problem: AllocationProblem) -> np.ndarray:
        rows = [
            self._balances.get(agent.name, np.zeros(problem.n_resources))
            for agent in problem.agents
        ]
        balances = np.vstack(rows)
        return np.exp(self.spend_rate * balances)

    def _solve(self, problem: AllocationProblem, context: SolveContext) -> Allocation:
        alpha = problem.rescaled_alpha_matrix()
        alpha = np.where(np.isfinite(alpha) & (alpha > 0.0), alpha, 0.0)
        weights = self._weights(problem)
        biased = alpha * weights
        denom = biased.sum(axis=0)
        degenerate = ~np.isfinite(denom) | (denom <= 0.0)
        safe = np.where(degenerate, 1.0, denom)
        shares = biased / safe * problem.capacity_vector
        if np.any(degenerate):
            # Nobody values the resource: split it by credit weight
            # alone, so banked credit is still honored (equal split
            # when nobody holds credit either).
            fallback = weights / weights.sum(axis=0) * problem.capacity_vector
            shares[:, degenerate] = fallback[:, degenerate]
        return Allocation(problem=problem, shares=shares, mechanism="credit")

    def observe(
        self,
        enforced: Allocation,
        epoch: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> Tuple[ObserveEvent, ...]:
        """Update balances from the gap between entitlement and receipt."""
        problem = enforced.problem
        entitlement = 1.0 / problem.n_agents
        fractions = enforced.shares / problem.capacity_vector
        events: List[ObserveEvent] = []
        for i, agent in enumerate(problem.agents):
            delta = entitlement - fractions[i]
            before = self._balances.get(agent.name, np.zeros(problem.n_resources))
            raw = before + delta
            clipped = np.clip(raw, -self.max_balance, self.max_balance)
            forfeited = float(np.abs(raw - clipped).sum())
            self._balances[agent.name] = clipped
            if metrics is not None:
                banked = float(delta[delta > 0].sum())
                spent = float(-delta[delta < 0].sum())
                if banked > 0:
                    metrics.counter(
                        "repro_credit_banked_total",
                        help="Credit banked by under-served agents (capacity fractions).",
                        agent=agent.name,
                    ).inc(banked)
                if spent > 0:
                    metrics.counter(
                        "repro_credit_spent_total",
                        help="Credit spent by over-served agents (capacity fractions).",
                        agent=agent.name,
                    ).inc(spent)
                if forfeited > 0:
                    metrics.counter(
                        "repro_credit_forfeited_total",
                        help="Credit lost to the balance clip (capacity fractions).",
                        agent=agent.name,
                    ).inc(forfeited)
                for r, resource in enumerate(problem.resource_names):
                    metrics.gauge(
                        "repro_credit_balance",
                        help="Per-agent credit balance in capacity fractions.",
                        agent=agent.name,
                        resource=resource,
                    ).set(float(clipped[r]))
            if forfeited > 1e-12:
                events.append(
                    (
                        "credit_clipped",
                        agent.name,
                        f"forfeited {forfeited:.3g} at |balance| = {self.max_balance:g}",
                    )
                )
        return tuple(events)

    def forget_agent(self, name: str) -> None:
        self._balances.pop(name, None)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "spend_rate": self.spend_rate,
            "max_balance": self.max_balance,
            "balances": {
                name: [float(v) for v in vector]
                for name, vector in sorted(self._balances.items())
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.spend_rate = float(state.get("spend_rate", self.spend_rate))
        self.max_balance = float(state.get("max_balance", self.max_balance))
        self._balances = {
            name: np.asarray(vector, dtype=float)
            for name, vector in state.get("balances", {}).items()
        }
