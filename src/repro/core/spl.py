"""Strategy-proofness in the large (SPL): strategic reporting analysis.

REF is not exactly strategy-proof — no Cobb-Douglas mechanism combining
PE with SP exists (§4.3) — but it is *strategy-proof in the large*: when
the sum of all agents' elasticities dwarfs any individual's, the optimal
misreport converges to the truth (Appendix A).

This module implements the strategic agent's problem explicitly.  Given
everyone else's (re-scaled) elasticities, agent ``i`` who reports
``a'_i`` receives ``x_ir = a'_ir / (a'_ir + S_r) * C_r`` where
``S_r = sum_{j != i} a_jr``, and evaluates the outcome with her *true*
elasticities (Eq. 15).  :func:`best_response` maximizes this lying
utility over the reported simplex, and :func:`manipulation_gain`
measures how much lying can help — the quantity that vanishes as the
system grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .mechanism import AllocationProblem
from .utility import rescale_elasticities

__all__ = [
    "lying_utility",
    "best_response",
    "manipulation_gain",
    "BestResponse",
    "max_manipulation_gain",
]


def lying_utility(
    true_alpha: Sequence[float],
    reported_alpha: Sequence[float],
    others_alpha_sum: Sequence[float],
    capacities: Sequence[float],
) -> float:
    """Agent ``i``'s true utility when she reports ``reported_alpha`` (Eq. 15).

    Parameters
    ----------
    true_alpha:
        The agent's true re-scaled elasticities (sum to one).
    reported_alpha:
        The elasticities she reports to the mechanism (sum to one).
    others_alpha_sum:
        ``S_r = sum_{j != i} a_jr`` — the per-resource totals of every
        other agent's re-scaled elasticities.
    capacities:
        Total resource capacities ``C_r``.
    """
    true = np.asarray(true_alpha, dtype=float)
    reported = np.asarray(reported_alpha, dtype=float)
    others = np.asarray(others_alpha_sum, dtype=float)
    caps = np.asarray(capacities, dtype=float)
    shares = reported / (reported + others) * caps
    return float(np.prod(shares ** true))


def _log_lying_utility(
    reported: np.ndarray, true: np.ndarray, others: np.ndarray, caps: np.ndarray
) -> float:
    """Log of :func:`lying_utility`; concave-ish and numerically stable."""
    return float(
        np.dot(true, np.log(reported) - np.log(reported + others) + np.log(caps))
    )


@dataclass(frozen=True)
class BestResponse:
    """Result of a strategic agent's misreport optimization."""

    true_alpha: np.ndarray
    reported_alpha: np.ndarray
    truthful_utility: float
    lying_utility: float

    @property
    def gain(self) -> float:
        """Relative utility gain from the optimal misreport, >= 0."""
        return self.lying_utility / self.truthful_utility - 1.0

    @property
    def deviation(self) -> float:
        """L-infinity distance between the optimal report and the truth."""
        return float(np.max(np.abs(self.reported_alpha - self.true_alpha)))


def best_response(
    true_alpha: Sequence[float],
    others_alpha_sum: Sequence[float],
    capacities: Sequence[float],
) -> BestResponse:
    """Solve the strategic agent's problem: the utility-maximizing report.

    Maximizes Eq. 15 over the reported simplex
    ``{ a' : a'_r > 0, sum_r a'_r = 1 }`` with SLSQP from several
    starting points (the truth plus simplex corners smoothed toward the
    interior) and returns the best.

    In a *large* system (``1 << S_r`` for all ``r``) the optimum is the
    truthful report itself (Appendix A); in small systems the agent can
    profitably shade her report toward contested resources.
    """
    true = rescale_elasticities(true_alpha)
    others = np.asarray(others_alpha_sum, dtype=float)
    caps = np.asarray(capacities, dtype=float)
    n = true.size
    if others.shape != (n,) or caps.shape != (n,):
        raise ValueError("true_alpha, others_alpha_sum and capacities must align")
    if np.any(others <= 0):
        raise ValueError("others_alpha_sum must be strictly positive per resource")

    def objective(reported: np.ndarray) -> float:
        reported = np.maximum(reported, 1e-12)
        return -_log_lying_utility(reported, true, others, caps)

    constraints = [{"type": "eq", "fun": lambda a: a.sum() - 1.0}]
    from scipy.optimize import minimize  # deferred: heavy import, cold paths skip it

    bounds = [(1e-9, 1.0)] * n
    starts = [true.copy()]
    for r in range(n):
        corner = np.full(n, 0.1 / max(n - 1, 1))
        corner[r] = 0.9
        starts.append(corner)

    best_report, best_value = true, -objective(true)
    for start in starts:
        result = minimize(
            objective,
            start,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 500, "ftol": 1e-14},
        )
        if result.success and -result.fun > best_value + 1e-15:
            best_report, best_value = np.asarray(result.x), -result.fun

    truthful = lying_utility(true, true, others, caps)
    lying = lying_utility(true, best_report, others, caps)
    if lying < truthful:
        # The optimizer never beats truth-telling; report truth exactly.
        best_report, lying = true, truthful
    return BestResponse(
        true_alpha=true,
        reported_alpha=best_report,
        truthful_utility=truthful,
        lying_utility=lying,
    )


def manipulation_gain(
    true_alpha: Sequence[float],
    others_alpha_sum: Sequence[float],
    capacities: Sequence[float],
) -> float:
    """Relative utility gain from optimal lying; ~0 in large systems."""
    return best_response(true_alpha, others_alpha_sum, capacities).gain


def max_manipulation_gain(
    problem: AllocationProblem, agent_indices: Optional[Sequence[int]] = None
) -> float:
    """Worst-case manipulation gain over (a subset of) the problem's agents.

    Used by the §4.3 experiment: with 64 agents whose elasticities are
    drawn uniformly, the maximum gain is negligible, demonstrating SPL.
    """
    alpha = problem.rescaled_alpha_matrix()
    caps = problem.capacity_vector
    indices = range(problem.n_agents) if agent_indices is None else agent_indices
    worst = 0.0
    for i in indices:
        others = alpha.sum(axis=0) - alpha[i]
        worst = max(worst, manipulation_gain(alpha[i], others, caps))
    return worst
