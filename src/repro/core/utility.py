"""Utility functions over multi-resource hardware allocations.

This module implements the preference domains the paper reasons about:

* :class:`CobbDouglasUtility` — the paper's central modeling choice
  (Eq. 1): ``u(x) = a0 * prod_r x_r ** a_r``.  Elasticities ``a_r``
  capture diminishing marginal returns and substitution effects between
  hardware resources such as cache capacity and memory bandwidth.
* :class:`LeontiefUtility` — the perfect-complements domain used by prior
  work (Dominant Resource Fairness); included for the paper's
  Cobb-Douglas-versus-Leontief comparison (Figs. 3-4).

Both classes expose the preference relation of §3 (``prefers``,
``indifferent``, ``weakly_prefers``) and the marginal rate of substitution
(Eq. 9) where defined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "Utility",
    "CobbDouglasUtility",
    "LeontiefUtility",
    "rescale_elasticities",
]

#: Tolerance used for indifference comparisons between utility values.
INDIFFERENCE_RTOL = 1e-9


def _as_allocation(x: Sequence[float], n_resources: int) -> np.ndarray:
    """Validate and convert an allocation vector to a numpy array."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"allocation must be one-dimensional, got shape {arr.shape}")
    if arr.shape[0] != n_resources:
        raise ValueError(
            f"allocation has {arr.shape[0]} entries but utility is defined "
            f"over {n_resources} resources"
        )
    if np.any(arr < 0):
        raise ValueError(f"allocation must be non-negative, got {arr.tolist()}")
    return arr


def rescale_elasticities(elasticities: Sequence[float]) -> np.ndarray:
    """Re-scale elasticities so they sum to one (paper Eq. 12).

    Re-scaling makes Cobb-Douglas utilities homogeneous of degree one,
    which is what lets the proportional-elasticity allocation coincide
    with the CEEI solution (§4.2).

    Parameters
    ----------
    elasticities:
        Raw per-resource elasticities, all strictly positive.

    Returns
    -------
    numpy.ndarray
        Elasticities scaled by ``1 / sum(elasticities)``.
    """
    alpha = np.asarray(elasticities, dtype=float)
    if alpha.ndim != 1 or alpha.size == 0:
        raise ValueError("elasticities must be a non-empty one-dimensional sequence")
    if np.any(alpha <= 0):
        raise ValueError(f"elasticities must be strictly positive, got {alpha.tolist()}")
    return alpha / alpha.sum()


class Utility:
    """Common preference-relation interface shared by utility families."""

    n_resources: int

    def value(self, x: Sequence[float]) -> float:
        """Utility of allocation ``x``."""
        raise NotImplementedError

    def __call__(self, x: Sequence[float]) -> float:
        return self.value(x)

    def prefers(self, x: Sequence[float], y: Sequence[float]) -> bool:
        """Strict preference ``x > y`` (§3: ``u(x) > u(y)``)."""
        return self.value(x) > self.value(y) and not self.indifferent(x, y)

    def indifferent(self, x: Sequence[float], y: Sequence[float]) -> bool:
        """Indifference ``x ~ y`` (§3: ``u(x) == u(y)`` up to tolerance)."""
        ux, uy = self.value(x), self.value(y)
        return math.isclose(ux, uy, rel_tol=INDIFFERENCE_RTOL, abs_tol=1e-12)

    def weakly_prefers(self, x: Sequence[float], y: Sequence[float]) -> bool:
        """Weak preference ``x >= y`` (§3: ``u(x) >= u(y)``)."""
        return self.value(x) >= self.value(y) or self.indifferent(x, y)


@dataclass(frozen=True)
class CobbDouglasUtility(Utility):
    """Cobb-Douglas utility ``u(x) = scale * prod_r x_r ** elasticities[r]``.

    Parameters
    ----------
    elasticities:
        Per-resource exponents ``(a_1, ..., a_R)``; each must be strictly
        positive.  Larger ``a_r`` means the agent benefits more from
        resource ``r``.
    scale:
        The multiplicative constant ``a_0`` (Eq. 1).  It never affects the
        preference ordering, only absolute utility values such as fitted
        IPC predictions.

    Examples
    --------
    The paper's recurring cache/bandwidth example (Eq. 2):

    >>> u1 = CobbDouglasUtility((0.6, 0.4))
    >>> u2 = CobbDouglasUtility((0.2, 0.8))
    >>> round(u1.value([18.0, 4.0]), 3)
    9.863
    """

    elasticities: Tuple[float, ...]
    scale: float = 1.0

    def __init__(self, elasticities: Iterable[float], scale: float = 1.0):
        elasticities = tuple(float(a) for a in elasticities)
        if not elasticities:
            raise ValueError("Cobb-Douglas utility requires at least one resource")
        if any(a <= 0 for a in elasticities):
            raise ValueError(
                f"Cobb-Douglas elasticities must be strictly positive, got {elasticities}"
            )
        if scale <= 0:
            raise ValueError(f"scale must be strictly positive, got {scale}")
        object.__setattr__(self, "elasticities", elasticities)
        object.__setattr__(self, "scale", float(scale))

    @property
    def n_resources(self) -> int:
        return len(self.elasticities)

    @property
    def alpha(self) -> np.ndarray:
        """Elasticities as a numpy vector."""
        return np.asarray(self.elasticities, dtype=float)

    def value(self, x: Sequence[float]) -> float:
        arr = _as_allocation(x, self.n_resources)
        return float(self.scale * np.prod(arr ** self.alpha))

    def log_value(self, x: Sequence[float]) -> float:
        """``log u(x)``; ``-inf`` when any resource allocation is zero.

        The log form is what the fitting procedure (Eq. 16) and the
        log-space convex solvers work with.
        """
        arr = _as_allocation(x, self.n_resources)
        if np.any(arr == 0):
            return float("-inf")
        return float(math.log(self.scale) + np.dot(self.alpha, np.log(arr)))

    def rescaled(self) -> "CobbDouglasUtility":
        """Return the re-scaled utility of §4.1: exponents sum to one, scale 1.

        Re-scaling preserves the preference ordering (it is a monotone
        transformation) while making the function homogeneous of degree
        one, the property the SI/EF/PE proofs rely on.
        """
        return CobbDouglasUtility(rescale_elasticities(self.elasticities), scale=1.0)

    def is_rescaled(self, tol: float = 1e-9) -> bool:
        """True when elasticities already sum to one and scale is one."""
        return (
            math.isclose(sum(self.elasticities), 1.0, abs_tol=tol)
            and math.isclose(self.scale, 1.0, abs_tol=tol)
        )

    def marginal_rate_of_substitution(
        self, x: Sequence[float], r: int = 0, s: int = 1
    ) -> float:
        """Marginal rate of substitution between resources ``r`` and ``s``.

        Implements Eq. 9: ``MRS_{r,s} = (a_r / a_s) * (x_s / x_r)`` — the
        rate at which the agent will trade resource ``s`` for resource
        ``r`` while staying on the same indifference curve.
        """
        arr = _as_allocation(x, self.n_resources)
        if arr[r] == 0:
            raise ZeroDivisionError(
                f"MRS undefined: allocation of resource {r} is zero"
            )
        return (self.elasticities[r] / self.elasticities[s]) * (arr[s] / arr[r])

    def indifference_curve(
        self, utility_level: float, x_values: Sequence[float], r: int = 0, s: int = 1
    ) -> np.ndarray:
        """Resource-``s`` amounts tracing the ``u = utility_level`` curve.

        Only defined for two-resource utilities (used to regenerate the
        indifference-curve figures, Fig. 3).  Solves
        ``scale * x_r**a_r * x_s**a_s = utility_level`` for ``x_s``.
        """
        if self.n_resources != 2:
            raise ValueError("indifference_curve is only defined for two resources")
        if utility_level <= 0:
            raise ValueError("utility_level must be strictly positive")
        xs = np.asarray(x_values, dtype=float)
        if np.any(xs <= 0):
            raise ValueError("x_values must be strictly positive")
        a_r, a_s = self.elasticities[r], self.elasticities[s]
        return ((utility_level / self.scale) / xs ** a_r) ** (1.0 / a_s)


@dataclass(frozen=True)
class LeontiefUtility(Utility):
    """Leontief utility ``u(x) = min_r x_r / demands[r]`` (Eq. 8 analogue).

    Resources are perfect complements: extra amounts of a single resource
    beyond the demanded ratio are wasted, which is exactly why the paper
    argues Leontief is the wrong domain for microarchitectural resources.
    """

    demands: Tuple[float, ...]

    def __init__(self, demands: Iterable[float]):
        demands = tuple(float(d) for d in demands)
        if not demands:
            raise ValueError("Leontief utility requires at least one resource")
        if any(d <= 0 for d in demands):
            raise ValueError(f"Leontief demands must be strictly positive, got {demands}")
        object.__setattr__(self, "demands", demands)

    @property
    def n_resources(self) -> int:
        return len(self.demands)

    def value(self, x: Sequence[float]) -> float:
        arr = _as_allocation(x, self.n_resources)
        return float(np.min(arr / np.asarray(self.demands)))

    def marginal_rate_of_substitution(
        self, x: Sequence[float], r: int = 0, s: int = 1
    ) -> float:
        """MRS for Leontief preferences: zero, infinity, or undefined.

        Along the vertical leg of the L-shaped indifference curve the MRS
        is infinite; along the horizontal leg it is zero; at the kink it
        is undefined (we raise).  This is the paper's Fig. 4 contrast.
        """
        arr = _as_allocation(x, self.n_resources)
        ratio_r = arr[r] / self.demands[r]
        ratio_s = arr[s] / self.demands[s]
        if math.isclose(ratio_r, ratio_s, rel_tol=1e-12):
            raise ValueError("MRS undefined at the kink of a Leontief indifference curve")
        return float("inf") if ratio_r < ratio_s else 0.0
