"""Workload classification from re-scaled elasticities (§5.3, Fig. 9).

After fitting, the paper re-scales elasticities and sorts workloads into
two groups: group **C** demands cache capacity (``a_cache > 0.5``) and
group **M** demands memory bandwidth (``a_mem > 0.5``).  The grouping
drives the workload-mix experiments of Table 2 and Figs. 10-14.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping

from .fitting import CobbDouglasFit
from .utility import CobbDouglasUtility

__all__ = ["ResourceGroup", "ResourcePreference", "classify", "classify_many"]


class ResourceGroup(str, Enum):
    """The paper's two workload groups for the cache/bandwidth case study."""

    CACHE = "C"
    MEMORY = "M"


@dataclass(frozen=True)
class ResourcePreference:
    """A workload's re-scaled elasticity profile and derived group.

    Attributes
    ----------
    name:
        Workload name.
    cache_elasticity / memory_elasticity:
        Re-scaled elasticities (Eq. 12); they sum to one.
    group:
        ``ResourceGroup.CACHE`` when ``cache_elasticity > 0.5``,
        otherwise ``ResourceGroup.MEMORY``.
    """

    name: str
    memory_elasticity: float
    cache_elasticity: float

    @property
    def group(self) -> ResourceGroup:
        if self.cache_elasticity > 0.5:
            return ResourceGroup.CACHE
        return ResourceGroup.MEMORY

    @property
    def dominant_elasticity(self) -> float:
        return max(self.cache_elasticity, self.memory_elasticity)


def classify(
    name: str,
    utility: CobbDouglasUtility,
    memory_index: int = 0,
    cache_index: int = 1,
) -> ResourcePreference:
    """Classify one workload from its (possibly un-rescaled) utility.

    Parameters
    ----------
    name:
        Workload label.
    utility:
        Fitted Cobb-Douglas utility over (bandwidth, cache) — or any
        two-resource ordering selected by ``memory_index``/``cache_index``.
    """
    alpha = utility.rescaled().alpha
    return ResourcePreference(
        name=name,
        memory_elasticity=float(alpha[memory_index]),
        cache_elasticity=float(alpha[cache_index]),
    )


def classify_many(
    fits: Mapping[str, CobbDouglasFit],
    memory_index: int = 0,
    cache_index: int = 1,
) -> Dict[str, ResourcePreference]:
    """Classify a suite of fitted workloads; preserves mapping order."""
    return {
        name: classify(name, fit.utility, memory_index, cache_index)
        for name, fit in fits.items()
    }
