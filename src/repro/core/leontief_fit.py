"""Fitting Leontief utilities to performance profiles — the hard road.

§2's second argument for Cobb-Douglas: "since Leontief is concave
piecewise-linear, fitting it would require non-convex optimization,
which is computationally expensive and possibly NP-hard ... Fitting
architectural performance to Leontief is equivalent to finding the
demand vector for substitutable microarchitectural resources."

This module makes that claim testable.  It fits
``u = scale * min_r(x_r / d_r)`` by the best method available for a
non-convex piecewise-linear family: search over demand-ratio space
(log-spaced grid plus local refinement), with the scale solved in
closed form per candidate.  Used by
``benchmarks/bench_leontief_fit.py`` to compare goodness of fit — and
fitting cost — against the one-shot least-squares Cobb-Douglas fit on
the same profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from .utility import LeontiefUtility

__all__ = ["LeontiefFit", "fit_leontief"]


@dataclass(frozen=True)
class LeontiefFit:
    """Result of a Leontief fit (two-resource, with affine head-room).

    The fitted model is ``u = intercept + scale * min(x, ratio * y)`` —
    deliberately *more* expressive than the paper's pure Leontief form,
    so the comparison against Cobb-Douglas errs in Leontief's favour.
    """

    utility: LeontiefUtility
    scale: float
    intercept: float
    r_squared: float
    n_evaluations: int
    residuals: np.ndarray = field(repr=False)

    def predict(self, allocations: Sequence[Sequence[float]]) -> np.ndarray:
        """Predicted performance at each allocation row."""
        rows = np.atleast_2d(np.asarray(allocations, dtype=float))
        basis = np.minimum(
            rows[:, 0] / self.utility.demands[0], rows[:, 1] / self.utility.demands[1]
        )
        return self.intercept + self.scale * basis


def _evaluate(ratio: float, x: np.ndarray, u: np.ndarray) -> Tuple[float, float, float]:
    """Best (intercept, scale) and SSE for ``u = c + s * min(x, ratio*y)``."""
    basis = np.minimum(x[:, 0], ratio * x[:, 1])
    design = np.column_stack([np.ones_like(basis), basis])
    coef, _, _, _ = np.linalg.lstsq(design, u, rcond=None)
    residual = u - design @ coef
    return float(coef[0]), float(coef[1]), float(np.dot(residual, residual))


def fit_leontief(
    allocations: Sequence[Sequence[float]],
    performance: Sequence[float],
    n_grid: int = 200,
    n_refinements: int = 3,
) -> LeontiefFit:
    """Fit a two-resource Leontief utility by demand-ratio search.

    Parameters
    ----------
    allocations:
        ``(n_samples, 2)`` strictly positive allocations.
    performance:
        Strictly positive measured performance per row.
    n_grid:
        Log-spaced candidate ratios per search pass.
    n_refinements:
        Zoom-in passes around the best ratio found.

    Returns
    -------
    LeontiefFit
        The best piecewise-linear fit found, its (linear-space) R², and
        the number of candidate evaluations spent — the cost the paper
        contrasts with one least-squares solve.
    """
    x = np.asarray(allocations, dtype=float)
    u = np.asarray(performance, dtype=float)
    if x.ndim != 2 or x.shape[1] != 2:
        raise ValueError(f"allocations must be (n, 2), got shape {x.shape}")
    if u.shape != (x.shape[0],):
        raise ValueError("performance must have one entry per allocation row")
    if np.any(x <= 0) or np.any(u <= 0):
        raise ValueError("allocations and performance must be strictly positive")
    if n_grid < 3 or n_refinements < 0:
        raise ValueError("n_grid must be >= 3 and n_refinements >= 0")

    # Ratio r in u = c + s * min(x, r*y): bracket by the data's aspects.
    lo = float(np.min(x[:, 0] / x[:, 1])) / 10.0
    hi = float(np.max(x[:, 0] / x[:, 1])) * 10.0
    best = (1.0, 0.0, 1.0, np.inf)  # ratio, intercept, scale, sse
    evaluations = 0
    for _ in range(n_refinements + 1):
        ratios = np.geomspace(lo, hi, n_grid)
        for ratio in ratios:
            intercept, scale, sse = _evaluate(float(ratio), x, u)
            evaluations += 1
            if sse < best[3]:
                best = (float(ratio), intercept, scale, sse)
        # Zoom around the incumbent.
        step = (np.log(hi) - np.log(lo)) / (n_grid - 1)
        lo = float(np.exp(np.log(best[0]) - 2 * step))
        hi = float(np.exp(np.log(best[0]) + 2 * step))

    best_ratio, intercept, scale, sse = best
    # u = c + s * min(x / 1, y / (1/r)) -> demands (1, 1/r).
    utility = LeontiefUtility((1.0, 1.0 / best_ratio))
    predictions = intercept + scale * np.minimum(x[:, 0], best_ratio * x[:, 1])
    residuals = u - predictions
    ss_tot = float(np.sum((u - u.mean()) ** 2))
    r_squared = 1.0 - sse / ss_tot if ss_tot > 0 else 0.0
    return LeontiefFit(
        utility=utility,
        scale=scale,
        intercept=intercept,
        r_squared=r_squared,
        n_evaluations=evaluations,
        residuals=residuals,
    )
