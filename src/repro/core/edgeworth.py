"""Edgeworth-box analysis for two agents and two resources (Figs. 1-7).

The paper visualizes its constraints in an Edgeworth box: the box width
is the total amount of resource 0 (memory bandwidth in the recurring
example), the height is the total amount of resource 1 (cache size),
agent 1's origin is the lower-left corner and agent 2's is the upper
right.  Every interior point is a feasible split.

This module computes, in closed form or by root finding, the geometric
objects the figures draw:

* the **contract curve** of Pareto-efficient allocations (Fig. 5),
* each agent's **envy-free region** (Fig. 2),
* each agent's **sharing-incentive region** (Fig. 7),
* the **fair set** — the segment of the contract curve that is envy-free
  for both agents (Fig. 6), optionally intersected with SI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .mechanism import Allocation, AllocationProblem, proportional_elasticity

__all__ = ["EdgeworthBox", "CurveSegment"]


@dataclass(frozen=True)
class CurveSegment:
    """A parametric segment of the contract curve.

    ``x`` and ``y`` are agent 1's coordinates (agent 2 holds the
    complement).  ``lo`` and ``hi`` are the segment's endpoints in
    agent 1's resource-0 coordinate.
    """

    x: np.ndarray
    y: np.ndarray
    lo: float
    hi: float

    @property
    def is_empty(self) -> bool:
        return self.x.size == 0


class EdgeworthBox:
    """Geometric analysis of a two-agent, two-resource allocation problem.

    Parameters
    ----------
    problem:
        Must have exactly two agents and two resources; utilities may be
        un-rescaled (the geometry only depends on preference orderings).

    Notes
    -----
    All curves are expressed in agent 1's coordinates ``(x, y)`` where
    ``x`` is agent 1's amount of resource 0 and ``y`` her amount of
    resource 1.  Agent 2 then holds ``(Cx - x, Cy - y)``.
    """

    def __init__(self, problem: AllocationProblem):
        if problem.n_agents != 2 or problem.n_resources != 2:
            raise ValueError(
                "Edgeworth-box analysis requires exactly 2 agents and 2 resources; "
                f"got {problem.n_agents} agents, {problem.n_resources} resources"
            )
        self.problem = problem
        self.u1 = problem.agents[0].utility
        self.u2 = problem.agents[1].utility
        self.cx, self.cy = problem.capacities

    # ------------------------------------------------------------------
    # Contract curve (Pareto-efficient allocations, Eq. 10)
    # ------------------------------------------------------------------

    def contract_curve_y(self, x: np.ndarray) -> np.ndarray:
        """Agent 1's resource-1 amount on the contract curve at resource-0 ``x``.

        Interior PE requires equal marginal rates of substitution
        (Eq. 10).  Writing ``a = a_1x / a_1y`` and ``b = a_2x / a_2y``,
        tangency gives the closed form

            y(x) = b * Cy * x / ( a * (Cx - x) + b * x )
        """
        x = np.asarray(x, dtype=float)
        a = self.u1.elasticities[0] / self.u1.elasticities[1]
        b = self.u2.elasticities[0] / self.u2.elasticities[1]
        denominator = a * (self.cx - x) + b * x
        return b * self.cy * x / denominator

    def contract_curve(self, n_points: int = 201) -> CurveSegment:
        """Sampled contract curve from origin to origin (Fig. 5)."""
        x = np.linspace(0.0, self.cx, n_points)
        return CurveSegment(x=x, y=self.contract_curve_y(x), lo=0.0, hi=self.cx)

    # ------------------------------------------------------------------
    # Envy-freeness and sharing-incentive regions
    # ------------------------------------------------------------------

    def envy_margin(self, agent: int, x: float, y: float) -> float:
        """``u_i(own) - u_i(other's bundle)`` at box point ``(x, y)``.

        Non-negative values mean the agent does not envy (Eqs. 6-7).
        """
        own, other = (x, y), (self.cx - x, self.cy - y)
        if agent == 0:
            return self.u1.value(own) - self.u1.value(other)
        if agent == 1:
            return self.u2.value(other) - self.u2.value(own)
        raise ValueError(f"agent must be 0 or 1, got {agent}")

    def si_margin(self, agent: int, x: float, y: float) -> float:
        """``u_i(bundle) - u_i(C/2)`` at box point ``(x, y)`` (Eqs. 4-5)."""
        half = (self.cx / 2.0, self.cy / 2.0)
        if agent == 0:
            return self.u1.value((x, y)) - self.u1.value(half)
        if agent == 1:
            bundle = (self.cx - x, self.cy - y)
            return self.u2.value(bundle) - self.u2.value(half)
        raise ValueError(f"agent must be 0 or 1, got {agent}")

    def region_masks(
        self, n_grid: int = 101
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Boolean grids over the box: (EF1, EF2, SI1, SI2, x-y meshgrid).

        Returns masks evaluated on an ``n_grid x n_grid`` lattice with
        agent 1's coordinates; used to regenerate the shaded regions of
        Figs. 2, 6 and 7.
        """
        xs = np.linspace(0.0, self.cx, n_grid)
        ys = np.linspace(0.0, self.cy, n_grid)
        grid_x, grid_y = np.meshgrid(xs, ys)
        ef1 = np.empty_like(grid_x, dtype=bool)
        ef2 = np.empty_like(grid_x, dtype=bool)
        si1 = np.empty_like(grid_x, dtype=bool)
        si2 = np.empty_like(grid_x, dtype=bool)
        for idx in np.ndindex(grid_x.shape):
            x, y = float(grid_x[idx]), float(grid_y[idx])
            ef1[idx] = self.envy_margin(0, x, y) >= -1e-12
            ef2[idx] = self.envy_margin(1, x, y) >= -1e-12
            si1[idx] = self.si_margin(0, x, y) >= -1e-12
            si2[idx] = self.si_margin(1, x, y) >= -1e-12
        return ef1, ef2, si1, si2, np.stack([grid_x, grid_y])

    # ------------------------------------------------------------------
    # Fair set: contract curve ∩ EF (∩ SI)
    # ------------------------------------------------------------------

    def _fair_margin(self, x: float, include_si: bool) -> float:
        """Worst margin over the fairness constraints at contract point ``x``."""
        y = float(self.contract_curve_y(np.asarray(x)))
        margins = [self.envy_margin(0, x, y), self.envy_margin(1, x, y)]
        if include_si:
            margins.append(self.si_margin(0, x, y))
            margins.append(self.si_margin(1, x, y))
        return min(margins)

    def fair_segment(
        self, include_si: bool = False, n_scan: int = 2001
    ) -> Optional[Tuple[float, float]]:
        """Endpoints (in agent 1's resource-0 coordinate) of the fair set.

        Scans the open contract curve for the sub-interval where both
        agents' EF constraints (and optionally SI) hold, refining the
        boundary points with Brent's method.  For Cobb-Douglas agents
        the feasible set on the contract curve is a single interval and
        always contains the REF point (which satisfies every
        constraint), so the scan is seeded with it; when the interval
        is degenerate (identical agents), the REF point itself is
        returned as a zero-length segment.  Returns ``None`` only if
        even the REF point fails the margin check numerically.
        """
        eps = self.cx * 1e-9
        ref_x = float(proportional_elasticity(self.problem).shares[0, 0])
        xs = np.unique(
            np.concatenate([np.linspace(eps, self.cx - eps, n_scan), [ref_x]])
        )
        margins = np.array([self._fair_margin(float(x), include_si) for x in xs])
        feasible = margins >= -1e-12
        if not feasible.any():
            return None
        first, last = int(np.argmax(feasible)), int(len(xs) - 1 - np.argmax(feasible[::-1]))
        lo, hi = float(xs[first]), float(xs[last])

        from scipy.optimize import brentq  # deferred: heavy import, cold paths skip it

        def margin(x: float) -> float:
            return self._fair_margin(x, include_si)

        if first > 0 and margin(xs[first - 1]) < 0 < margin(xs[first]):
            lo = float(brentq(margin, xs[first - 1], xs[first]))
        if last < len(xs) - 1 and margin(xs[last + 1]) < 0 < margin(xs[last]):
            hi = float(brentq(margin, xs[last], xs[last + 1]))
        return lo, hi

    def fair_allocations(
        self, include_si: bool = False, n_points: int = 51
    ) -> List[Allocation]:
        """Sampled fair allocations along the contract curve (Fig. 6/7)."""
        segment = self.fair_segment(include_si=include_si)
        if segment is None:
            return []
        xs = np.linspace(segment[0], segment[1], n_points)
        ys = self.contract_curve_y(xs)
        allocations = []
        for x, y in zip(xs, ys):
            shares = np.array([[x, y], [self.cx - x, self.cy - y]])
            allocations.append(
                Allocation(problem=self.problem, shares=shares, mechanism="edgeworth_fair_set")
            )
        return allocations

    # ------------------------------------------------------------------
    # Canonical always-EF points (§3.2)
    # ------------------------------------------------------------------

    def trivially_envy_free_points(self) -> List[Tuple[float, float]]:
        """The midpoint and the two zero-utility corners (always EF, §3.2)."""
        return [
            (self.cx / 2.0, self.cy / 2.0),
            (0.0, self.cy),
            (self.cx, 0.0),
        ]
