"""Fitting Cobb-Douglas utilities to performance profiles (§4.4, Eq. 16).

The paper derives each agent's utility function from performance profiles:
measure IPC at several (cache size, memory bandwidth) allocations, apply a
log transformation to linearize ``u = a0 * prod_r x_r**a_r`` into

    log u = log a0 + sum_r a_r * log x_r

and estimate the elasticities ``a_r`` with ordinary least squares.  Fit
quality is summarized with the coefficient of determination (R²), which
the paper reports per benchmark in Fig. 8a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .utility import CobbDouglasUtility

__all__ = ["CobbDouglasFit", "fit_cobb_douglas", "fit_cobb_douglas_batch"]

#: Elasticities fitted below this value are clamped to it so the resulting
#: utility stays inside the (strictly positive exponent) Cobb-Douglas domain.
#: Near-zero or slightly negative fitted elasticities arise for workloads
#: that are insensitive to a resource (the paper's "negligible variance"
#: cases such as radiosity).
MIN_ELASTICITY = 1e-6


@dataclass(frozen=True)
class CobbDouglasFit:
    """Result of a least-squares Cobb-Douglas fit.

    Attributes
    ----------
    utility:
        The fitted :class:`~repro.core.utility.CobbDouglasUtility`
        (with the fitted ``scale = a0``).
    r_squared:
        Coefficient of determination of the *log-space* regression, the
        quantity Fig. 8a reports.  Approaches 1.0 as fit improves; near
        zero when the profile has negligible variance for the model to
        capture.
    r_squared_linear:
        R² computed in the original (IPC) space between measured and
        predicted performance; a secondary diagnostic.
    residuals:
        Log-space residuals, one per profile sample.
    n_samples:
        Number of profile points used for the fit.
    condition_number:
        Condition number of the (weighted) log-space design matrix.  A
        large value flags a nearly collinear sample set whose fitted
        elasticities are numerically meaningless; consumers such as the
        on-line profiler use it to reject degenerate fits.
    """

    utility: CobbDouglasUtility
    r_squared: float
    r_squared_linear: float
    residuals: np.ndarray = field(repr=False)
    n_samples: int
    condition_number: float = float("nan")

    @property
    def elasticities(self) -> Tuple[float, ...]:
        """Fitted raw (un-rescaled) elasticities."""
        return self.utility.elasticities

    @property
    def rescaled_elasticities(self) -> np.ndarray:
        """Elasticities re-scaled to sum to one (Eq. 12)."""
        return self.utility.rescaled().alpha

    def predict(self, allocations: Sequence[Sequence[float]]) -> np.ndarray:
        """Predicted performance for each allocation row."""
        return np.array([self.utility.value(row) for row in np.atleast_2d(allocations)])


def _r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination; 1.0 for a perfect fit.

    When the observed data has zero variance the usual definition is
    degenerate; we return 1.0 if the predictions are exact and 0.0
    otherwise, matching the paper's treatment of no-trend benchmarks.
    """
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    ss_res = float(np.sum((observed - predicted) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _validate_fit_inputs(
    allocations: Sequence[Sequence[float]],
    performance: Sequence[float],
    weights: Optional[Sequence[float]],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Shared input validation for the single and batched fitters."""
    x = np.asarray(allocations, dtype=float)
    u = np.asarray(performance, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"allocations must be 2-D (samples x resources), got shape {x.shape}")
    n_samples, n_resources = x.shape
    if u.shape != (n_samples,):
        raise ValueError(
            f"performance must have one entry per allocation row: "
            f"expected {n_samples}, got {u.shape}"
        )
    if n_samples < n_resources + 1:
        raise ValueError(
            f"need at least n_resources + 1 = {n_resources + 1} samples to fit, "
            f"got {n_samples}"
        )
    if np.any(x <= 0):
        raise ValueError("allocations must be strictly positive for the log transform")
    if np.any(u <= 0):
        raise ValueError("performance must be strictly positive for the log transform")
    w: Optional[np.ndarray] = None
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n_samples,):
            raise ValueError(f"weights must have shape ({n_samples},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    return x, u, w


def fit_cobb_douglas(
    allocations: Sequence[Sequence[float]],
    performance: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> CobbDouglasFit:
    """Fit a Cobb-Douglas utility to a performance profile (Eq. 16).

    Parameters
    ----------
    allocations:
        An ``(n_samples, n_resources)`` array-like of strictly positive
        resource allocations — e.g. rows of (memory bandwidth GB/s,
        cache size MB) from the 5x5 sweep of Table 1.
    performance:
        Strictly positive measured performance (IPC) per allocation row.
    weights:
        Optional non-negative per-sample weights for weighted least
        squares (used by the online profiler to emphasize recent samples).

    Returns
    -------
    CobbDouglasFit
        Fitted utility plus goodness-of-fit diagnostics.

    Raises
    ------
    ValueError
        On shape mismatches, non-positive data, or fewer samples than
        parameters (``n_resources + 1``).
    """
    x, u, w = _validate_fit_inputs(allocations, performance, weights)
    n_samples = x.shape[0]

    # Standard linear model after the log transformation (Eq. 16):
    # columns are [1, log x_1, ..., log x_R].
    design = np.column_stack([np.ones(n_samples), np.log(x)])
    target = np.log(u)

    if w is not None:
        sqrt_w = np.sqrt(w)
        design = design * sqrt_w[:, None]
        target = target * sqrt_w

    coef, _, _, singular_values = np.linalg.lstsq(design, target, rcond=None)
    log_scale, alpha = coef[0], coef[1:]
    return _assemble_fit(x, u, log_scale, alpha, singular_values)


def _assemble_fit(
    x: np.ndarray,
    u: np.ndarray,
    log_scale: float,
    alpha: np.ndarray,
    singular_values: np.ndarray,
) -> CobbDouglasFit:
    """Clamp, diagnose and package one solved log-space regression."""
    n_samples = x.shape[0]
    smallest = float(singular_values.min()) if singular_values.size else 0.0
    condition = (
        float(singular_values.max()) / smallest if smallest > 0 else float("inf")
    )

    # Clamp into the Cobb-Douglas domain (strictly positive exponents).
    alpha = np.maximum(alpha, MIN_ELASTICITY)

    utility = CobbDouglasUtility(alpha, scale=float(np.exp(log_scale)))

    # Diagnostics are always computed on the unweighted data so that R²
    # is comparable across weighted and unweighted fits.
    plain_design = np.column_stack([np.ones(n_samples), np.log(x)])
    log_target = np.log(u)
    log_pred = plain_design @ np.concatenate([[log_scale], alpha])
    residuals = log_target - log_pred
    return CobbDouglasFit(
        utility=utility,
        r_squared=_r_squared(log_target, log_pred),
        r_squared_linear=_r_squared(u, np.exp(log_pred)),
        residuals=residuals,
        n_samples=n_samples,
        condition_number=condition,
    )


def fit_cobb_douglas_batch(
    allocations: Sequence[Sequence[Sequence[float]]],
    performance: Sequence[Sequence[float]],
    weights: Optional[Sequence[Optional[Sequence[float]]]] = None,
) -> List[CobbDouglasFit]:
    """Fit every agent's Cobb-Douglas utility in one stacked lstsq solve.

    Semantically equivalent to calling :func:`fit_cobb_douglas` once per
    agent, but the ``A`` per-agent regressions are solved by a *single*
    batched SVD over a zero-padded ``(A, max_samples, R + 1)`` design
    tensor instead of ``A`` Python-looped LAPACK calls.  Zero-padded
    rows contribute nothing to the normal equations, so each agent's
    solution — coefficients, singular values, and therefore the
    condition number — matches the per-agent SVD-based ``lstsq`` up to
    floating-point noise.  This is the serving hot path: an epoch tick
    refits every live agent with one call regardless of agent count.

    Parameters
    ----------
    allocations:
        One ``(n_k, n_resources)`` array-like per agent.  Sample counts
        ``n_k`` may differ across agents; the resource count may not.
    performance:
        One strictly positive ``(n_k,)`` array-like per agent.
    weights:
        Optional per-agent weight vectors (entries may be ``None`` for
        unweighted agents), as produced by the online profiler's decay.

    Returns
    -------
    list of CobbDouglasFit
        One fit per agent, in input order, with the same diagnostics
        (R², residuals, condition number) as the per-agent path.

    Raises
    ------
    ValueError
        On any agent's invalid input (message prefixed with the agent
        index), mismatched outer lengths, or inconsistent resource
        counts across agents.
    """
    n_agents = len(allocations)
    if len(performance) != n_agents:
        raise ValueError(
            f"need one performance vector per agent: "
            f"expected {n_agents}, got {len(performance)}"
        )
    if weights is not None and len(weights) != n_agents:
        raise ValueError(
            f"need one weight vector (or None) per agent: "
            f"expected {n_agents}, got {len(weights)}"
        )
    if n_agents == 0:
        return []

    xs: List[np.ndarray] = []
    us: List[np.ndarray] = []
    ws: List[Optional[np.ndarray]] = []
    n_resources: Optional[int] = None
    for k in range(n_agents):
        try:
            x, u, w = _validate_fit_inputs(
                allocations[k], performance[k], None if weights is None else weights[k]
            )
        except ValueError as error:
            raise ValueError(f"agent {k}: {error}") from None
        if n_resources is None:
            n_resources = x.shape[1]
        elif x.shape[1] != n_resources:
            raise ValueError(
                f"agent {k}: every agent in a batch must share the resource "
                f"count; expected {n_resources}, got {x.shape[1]}"
            )
        xs.append(x)
        us.append(u)
        ws.append(w)

    p = n_resources + 1
    counts = np.array([x.shape[0] for x in xs])
    m_max = int(counts.max())

    # Zero-padded stacked design/target.  `plain` keeps the unweighted
    # design for diagnostics (R² must be weight-invariant, as in the
    # per-agent path).
    design = np.zeros((n_agents, m_max, p))
    plain = np.zeros((n_agents, m_max, p))
    target = np.zeros((n_agents, m_max))
    plain_target = np.zeros((n_agents, m_max))
    u_padded = np.zeros((n_agents, m_max))
    for k, (x, u, w) in enumerate(zip(xs, us, ws)):
        m = x.shape[0]
        d = np.column_stack([np.ones(m), np.log(x)])
        t = np.log(u)
        plain[k, :m] = d
        plain_target[k, :m] = t
        u_padded[k, :m] = u
        if w is not None:
            sqrt_w = np.sqrt(w)
            d = d * sqrt_w[:, None]
            t = t * sqrt_w
        design[k, :m] = d
        target[k, :m] = t

    # One batched SVD solves every regression at once.  The minimum-norm
    # least-squares solution with `lstsq`'s default cutoff (machine eps
    # times max(M, N), relative to the largest singular value) is
    # reproduced per agent using each agent's true sample count.
    u_basis, sigma, vt = np.linalg.svd(design, full_matrices=False)
    eps = np.finfo(design.dtype).eps
    cutoff = sigma[:, :1] * (np.maximum(counts, p) * eps)[:, None]
    keep = sigma > cutoff
    sigma_inv = np.where(keep, 1.0 / np.where(keep, sigma, 1.0), 0.0)
    projected = np.einsum("amk,am->ak", u_basis, target)
    coef = np.einsum("akp,ak->ap", vt, sigma_inv * projected)

    # Clamp and diagnose every agent in stacked form (matching
    # `_assemble_fit` exactly); the final loop only slices padded rows
    # off and packages dataclasses — no per-agent linear algebra.
    log_scale = coef[:, 0]
    alpha = np.maximum(coef[:, 1:], MIN_ELASTICITY)
    smallest = sigma[:, -1]
    with np.errstate(divide="ignore"):
        condition = np.where(
            smallest > 0, sigma[:, 0] / np.where(smallest > 0, smallest, 1.0), np.inf
        )
    full_coef = np.concatenate([log_scale[:, None], alpha], axis=1)
    log_pred = np.einsum("amp,ap->am", plain, full_coef)

    # Masked, stacked R² in log and linear space (same degenerate-variance
    # semantics as `_r_squared`).  Padded rows carry zero design, target,
    # and performance, so they vanish under the mask.
    mask = np.arange(m_max)[None, :] < counts[:, None]
    residuals = (plain_target - log_pred) * mask
    scales = np.exp(log_scale)
    r_squared = _r_squared_stacked(plain_target, log_pred, counts, mask)
    r_squared_linear = _r_squared_stacked(
        u_padded, np.exp(log_pred) * mask, counts, mask
    )

    fits: List[CobbDouglasFit] = []
    for k in range(n_agents):
        m = int(counts[k])
        utility = CobbDouglasUtility(alpha[k], scale=float(scales[k]))
        fits.append(
            CobbDouglasFit(
                utility=utility,
                r_squared=float(r_squared[k]),
                r_squared_linear=float(r_squared_linear[k]),
                residuals=residuals[k, :m],
                n_samples=m,
                condition_number=float(condition[k]),
            )
        )
    return fits


def _r_squared_stacked(
    observed: np.ndarray,
    predicted: np.ndarray,
    counts: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Vectorized `_r_squared` over a zero-padded ``(A, m_max)`` stack."""
    means = observed.sum(axis=1) / counts
    ss_tot = np.sum(((observed - means[:, None]) * mask) ** 2, axis=1)
    ss_res = np.sum(((observed - predicted) * mask) ** 2, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = 1.0 - ss_res / ss_tot
    return np.where(ss_tot == 0.0, np.where(ss_res == 0.0, 1.0, 0.0), r2)
