"""Fitting Cobb-Douglas utilities to performance profiles (§4.4, Eq. 16).

The paper derives each agent's utility function from performance profiles:
measure IPC at several (cache size, memory bandwidth) allocations, apply a
log transformation to linearize ``u = a0 * prod_r x_r**a_r`` into

    log u = log a0 + sum_r a_r * log x_r

and estimate the elasticities ``a_r`` with ordinary least squares.  Fit
quality is summarized with the coefficient of determination (R²), which
the paper reports per benchmark in Fig. 8a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .utility import CobbDouglasUtility

__all__ = ["CobbDouglasFit", "fit_cobb_douglas"]

#: Elasticities fitted below this value are clamped to it so the resulting
#: utility stays inside the (strictly positive exponent) Cobb-Douglas domain.
#: Near-zero or slightly negative fitted elasticities arise for workloads
#: that are insensitive to a resource (the paper's "negligible variance"
#: cases such as radiosity).
MIN_ELASTICITY = 1e-6


@dataclass(frozen=True)
class CobbDouglasFit:
    """Result of a least-squares Cobb-Douglas fit.

    Attributes
    ----------
    utility:
        The fitted :class:`~repro.core.utility.CobbDouglasUtility`
        (with the fitted ``scale = a0``).
    r_squared:
        Coefficient of determination of the *log-space* regression, the
        quantity Fig. 8a reports.  Approaches 1.0 as fit improves; near
        zero when the profile has negligible variance for the model to
        capture.
    r_squared_linear:
        R² computed in the original (IPC) space between measured and
        predicted performance; a secondary diagnostic.
    residuals:
        Log-space residuals, one per profile sample.
    n_samples:
        Number of profile points used for the fit.
    condition_number:
        Condition number of the (weighted) log-space design matrix.  A
        large value flags a nearly collinear sample set whose fitted
        elasticities are numerically meaningless; consumers such as the
        on-line profiler use it to reject degenerate fits.
    """

    utility: CobbDouglasUtility
    r_squared: float
    r_squared_linear: float
    residuals: np.ndarray = field(repr=False)
    n_samples: int
    condition_number: float = float("nan")

    @property
    def elasticities(self) -> Tuple[float, ...]:
        """Fitted raw (un-rescaled) elasticities."""
        return self.utility.elasticities

    @property
    def rescaled_elasticities(self) -> np.ndarray:
        """Elasticities re-scaled to sum to one (Eq. 12)."""
        return self.utility.rescaled().alpha

    def predict(self, allocations: Sequence[Sequence[float]]) -> np.ndarray:
        """Predicted performance for each allocation row."""
        return np.array([self.utility.value(row) for row in np.atleast_2d(allocations)])


def _r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination; 1.0 for a perfect fit.

    When the observed data has zero variance the usual definition is
    degenerate; we return 1.0 if the predictions are exact and 0.0
    otherwise, matching the paper's treatment of no-trend benchmarks.
    """
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    ss_res = float(np.sum((observed - predicted) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_cobb_douglas(
    allocations: Sequence[Sequence[float]],
    performance: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> CobbDouglasFit:
    """Fit a Cobb-Douglas utility to a performance profile (Eq. 16).

    Parameters
    ----------
    allocations:
        An ``(n_samples, n_resources)`` array-like of strictly positive
        resource allocations — e.g. rows of (memory bandwidth GB/s,
        cache size MB) from the 5x5 sweep of Table 1.
    performance:
        Strictly positive measured performance (IPC) per allocation row.
    weights:
        Optional non-negative per-sample weights for weighted least
        squares (used by the online profiler to emphasize recent samples).

    Returns
    -------
    CobbDouglasFit
        Fitted utility plus goodness-of-fit diagnostics.

    Raises
    ------
    ValueError
        On shape mismatches, non-positive data, or fewer samples than
        parameters (``n_resources + 1``).
    """
    x = np.asarray(allocations, dtype=float)
    u = np.asarray(performance, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"allocations must be 2-D (samples x resources), got shape {x.shape}")
    n_samples, n_resources = x.shape
    if u.shape != (n_samples,):
        raise ValueError(
            f"performance must have one entry per allocation row: "
            f"expected {n_samples}, got {u.shape}"
        )
    if n_samples < n_resources + 1:
        raise ValueError(
            f"need at least n_resources + 1 = {n_resources + 1} samples to fit, "
            f"got {n_samples}"
        )
    if np.any(x <= 0):
        raise ValueError("allocations must be strictly positive for the log transform")
    if np.any(u <= 0):
        raise ValueError("performance must be strictly positive for the log transform")

    # Standard linear model after the log transformation (Eq. 16):
    # columns are [1, log x_1, ..., log x_R].
    design = np.column_stack([np.ones(n_samples), np.log(x)])
    target = np.log(u)

    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n_samples,):
            raise ValueError(f"weights must have shape ({n_samples},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        sqrt_w = np.sqrt(w)
        design = design * sqrt_w[:, None]
        target = target * sqrt_w

    coef, _, _, singular_values = np.linalg.lstsq(design, target, rcond=None)
    log_scale, alpha = coef[0], coef[1:]
    smallest = float(singular_values.min()) if singular_values.size else 0.0
    condition = (
        float(singular_values.max()) / smallest if smallest > 0 else float("inf")
    )

    # Clamp into the Cobb-Douglas domain (strictly positive exponents).
    alpha = np.maximum(alpha, MIN_ELASTICITY)

    utility = CobbDouglasUtility(alpha, scale=float(np.exp(log_scale)))

    # Diagnostics are always computed on the unweighted data so that R²
    # is comparable across weighted and unweighted fits.
    plain_design = np.column_stack([np.ones(n_samples), np.log(x)])
    log_target = np.log(u)
    log_pred = plain_design @ np.concatenate([[log_scale], alpha])
    residuals = log_target - log_pred
    return CobbDouglasFit(
        utility=utility,
        r_squared=_r_squared(log_target, log_pred),
        r_squared_linear=_r_squared(u, np.exp(log_pred)),
        residuals=residuals,
        n_samples=n_samples,
        condition_number=condition,
    )
