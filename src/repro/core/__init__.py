"""Core REF library: utilities, fitting, the mechanism, and fairness analysis."""

from .bargaining import NashBargainingSolution, nash_bargaining
from .ceei import CompetitiveEquilibrium, competitive_equilibrium
from .classify import ResourceGroup, ResourcePreference, classify, classify_many
from .edgeworth import CurveSegment, EdgeworthBox
from .fitting import CobbDouglasFit, fit_cobb_douglas, fit_cobb_douglas_batch
from .leontief_fit import LeontiefFit, fit_leontief
from .mechanism import Agent, Allocation, AllocationProblem, proportional_elasticity
from .properties import (
    FairnessReport,
    check_fairness,
    envy_matrix,
    is_envy_free,
    is_pareto_efficient,
    mrs_spread,
    satisfies_sharing_incentives,
    sharing_incentive_margins,
    unfairness_index,
)
from .spl import (
    BestResponse,
    best_response,
    lying_utility,
    manipulation_gain,
    max_manipulation_gain,
)
from .utility import CobbDouglasUtility, LeontiefUtility, Utility, rescale_elasticities
from .welfare import (
    egalitarian_welfare,
    nash_welfare,
    weighted_system_throughput,
    weighted_utilities,
    weighted_utility,
)

__all__ = [
    "Agent",
    "Allocation",
    "AllocationProblem",
    "BestResponse",
    "CobbDouglasFit",
    "CompetitiveEquilibrium",
    "CobbDouglasUtility",
    "CurveSegment",
    "EdgeworthBox",
    "FairnessReport",
    "LeontiefFit",
    "LeontiefUtility",
    "NashBargainingSolution",
    "ResourceGroup",
    "ResourcePreference",
    "Utility",
    "best_response",
    "check_fairness",
    "classify",
    "classify_many",
    "competitive_equilibrium",
    "egalitarian_welfare",
    "envy_matrix",
    "fit_cobb_douglas",
    "fit_cobb_douglas_batch",
    "fit_leontief",
    "is_envy_free",
    "is_pareto_efficient",
    "lying_utility",
    "manipulation_gain",
    "max_manipulation_gain",
    "mrs_spread",
    "nash_bargaining",
    "nash_welfare",
    "proportional_elasticity",
    "rescale_elasticities",
    "satisfies_sharing_incentives",
    "sharing_incentive_margins",
    "unfairness_index",
    "weighted_system_throughput",
    "weighted_utilities",
    "weighted_utility",
]
