"""Core REF library: utilities, fitting, the mechanism, and fairness analysis."""

from .bargaining import NashBargainingSolution, nash_bargaining
from .ceei import CompetitiveEquilibrium, competitive_equilibrium
from .classify import ResourceGroup, ResourcePreference, classify, classify_many
from .edgeworth import CurveSegment, EdgeworthBox
from .fitting import CobbDouglasFit, fit_cobb_douglas, fit_cobb_douglas_batch
from .leontief_fit import LeontiefFit, fit_leontief
from .mechanism import Agent, Allocation, AllocationProblem, proportional_elasticity
from .registry import (
    MECHANISM_REGISTRY,
    CreditMechanism,
    Mechanism,
    MechanismRegistry,
    SolveContext,
    cli_mechanism_names,
    controller_mechanism_names,
    create_mechanism,
    hierarchical_mechanism_names,
    mechanism_names,
    register_mechanism,
)
from .properties import (
    FairnessReport,
    check_fairness,
    envy_matrix,
    is_envy_free,
    is_pareto_efficient,
    mrs_spread,
    satisfies_sharing_incentives,
    sharing_incentive_margins,
    unfairness_index,
)
from .spl import (
    BestResponse,
    best_response,
    lying_utility,
    manipulation_gain,
    max_manipulation_gain,
)
from .utility import CobbDouglasUtility, LeontiefUtility, Utility, rescale_elasticities
from .welfare import (
    egalitarian_welfare,
    nash_welfare,
    weighted_system_throughput,
    weighted_utilities,
    weighted_utility,
)

__all__ = [
    "Agent",
    "Allocation",
    "AllocationProblem",
    "BestResponse",
    "CobbDouglasFit",
    "CreditMechanism",
    "MECHANISM_REGISTRY",
    "Mechanism",
    "MechanismRegistry",
    "SolveContext",
    "CompetitiveEquilibrium",
    "CobbDouglasUtility",
    "CurveSegment",
    "EdgeworthBox",
    "FairnessReport",
    "LeontiefFit",
    "LeontiefUtility",
    "NashBargainingSolution",
    "ResourceGroup",
    "ResourcePreference",
    "Utility",
    "best_response",
    "check_fairness",
    "classify",
    "classify_many",
    "cli_mechanism_names",
    "competitive_equilibrium",
    "controller_mechanism_names",
    "create_mechanism",
    "egalitarian_welfare",
    "envy_matrix",
    "fit_cobb_douglas",
    "fit_cobb_douglas_batch",
    "fit_leontief",
    "hierarchical_mechanism_names",
    "is_envy_free",
    "is_pareto_efficient",
    "lying_utility",
    "manipulation_gain",
    "max_manipulation_gain",
    "mechanism_names",
    "mrs_spread",
    "nash_bargaining",
    "nash_welfare",
    "proportional_elasticity",
    "register_mechanism",
    "rescale_elasticities",
    "satisfies_sharing_incentives",
    "sharing_incentive_margins",
    "unfairness_index",
    "weighted_system_throughput",
    "weighted_utilities",
    "weighted_utility",
]
