"""Weighted utility and system-welfare metrics (§4.5, Eq. 17).

To compare allocation mechanisms, the paper adapts the architecture
community's *weighted progress* metric: each agent's utility under the
shared allocation is divided by her utility when given the whole
machine, ``U_i(x_i) = u_i(x_i) / u_i(C)``.  Summing over agents gives
*weighted system throughput* (Eq. 17), the y-axis of Figs. 13-14.  The
same normalized quantity doubles as the "slowdown" the equal-slowdown
mechanism equalizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .mechanism import Allocation, AllocationProblem

__all__ = [
    "weighted_utility",
    "weighted_utilities",
    "weighted_system_throughput",
    "nash_welfare",
    "egalitarian_welfare",
]


def weighted_utility(
    problem: AllocationProblem, agent_index: int, bundle: Sequence[float]
) -> float:
    """``U_i(x) = u_i(x) / u_i(C)`` for one agent and bundle (§4.5).

    ``U_i`` is dimensionless and lies in ``[0, 1]`` for any feasible
    bundle because Cobb-Douglas utilities are monotone: no bundle beats
    owning the whole machine.
    """
    agent = problem.agents[agent_index]
    u_full = agent.utility.value(problem.capacity_vector)
    if u_full == 0.0:
        raise ZeroDivisionError(
            f"agent {agent.name!r} derives zero utility from the full machine"
        )
    return agent.utility.value(bundle) / u_full


def weighted_utilities(allocation: Allocation) -> np.ndarray:
    """Vector of ``U_i(x_i)`` for all agents, in agent order."""
    problem = allocation.problem
    return np.array(
        [
            weighted_utility(problem, i, allocation.shares[i])
            for i in range(problem.n_agents)
        ]
    )


def weighted_system_throughput(allocation: Allocation) -> float:
    """Weighted system throughput: ``sum_i U_i(x_i)`` (Eq. 17).

    This is the metric reported on the y-axis of Figs. 13 and 14.  An
    ideal (infeasible) value of ``N`` would mean every agent performs as
    if she owned the whole machine.
    """
    return float(weighted_utilities(allocation).sum())


def nash_welfare(allocation: Allocation) -> float:
    """Nash social welfare: ``prod_i U_i(x_i)`` (§5.5).

    The quantity the max-welfare mechanisms maximize; tractable because
    its log is concave in log-allocations.
    """
    return float(np.prod(weighted_utilities(allocation)))


def egalitarian_welfare(allocation: Allocation) -> float:
    """Egalitarian welfare: ``min_i U_i(x_i)`` (§4.5).

    Maximizing this max-min objective without fairness constraints is
    the paper's formalization of the equal-slowdown mechanism.
    """
    return float(weighted_utilities(allocation).min())
