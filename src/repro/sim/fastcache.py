"""Vectorized LRU stack-distance kernel (single-pass cache simulation).

The reference :class:`~repro.sim.cache.SetAssociativeCache` walks a
trace one access at a time through per-set Python lists.  This module
computes the same answer with a handful of NumPy passes by exploiting
the *Mattson inclusion property* of true LRU: within one set, the
lines held by a w-way cache are always the w most recently used tags,
i.e. the top-w prefix of the full LRU stack.  An access therefore hits
a w-way set-associative LRU cache **iff its per-set stack distance**
(the number of distinct tags touched in the same set since the
previous access to this tag) **is less than w** — for every w at once.

One pass over a trace thus yields the per-set reuse-distance profile,
and from it exact hit/miss counts for *every* way-partition size
simultaneously, plus the exact DRAM miss stream for any particular
partition.  :class:`FastHierarchy` stacks two of these passes into the
L1 -> L2 hierarchy of :class:`~repro.sim.cache.CacheHierarchy`
(bit-exact: same hits, same miss indices, same warm-up semantics).

Algorithm
---------
Stack distances are computed without any per-access Python loop:

1. group accesses by set (stable argsort), so each set occupies a
   contiguous block in time order;
2. link each access to the previous access of the same (set, tag) via
   one more stable sort (``prev``, with a per-set sentinel for cold
   first touches);
3. observe that the stack distance of access ``g`` equals
   ``rank(g) - prev(g) - 1`` where ``rank(g)`` counts earlier accesses
   ``h < g`` with ``prev(h) <= prev(g)``: every distinct tag touched
   in ``(prev(g), g)`` contributes exactly its first occurrence, and
   the block grouping makes cross-set contributions collapse into the
   closed-form correction;
4. compute all ranks at once with a bottom-up merge ("count
   smaller-or-equal before me"), i.e. O(log n) vectorized passes.

The result is exact, skew-immune (no dependence on how unevenly
accesses spread over sets), and independent of the way count — the
distances are capped at ``ways`` only on return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .cache import CacheStats, HierarchyResult
from .platform import CacheConfig

__all__ = ["stack_distances", "FastHierarchy", "FastHierarchySweep"]


def _count_leq_before(values: np.ndarray) -> np.ndarray:
    """For each i, count j < i with ``values[j] <= values[i]``.

    Bottom-up vectorized merge counting: every (j, i) pair is counted
    at the unique level where j falls in the left half and i in the
    right half of the same block pair.  Each level is one sort plus one
    ``searchsorted`` over keys offset per block pair, so the whole
    computation is O(n log n) work in O(log n) NumPy passes.
    """
    n = values.size
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    # Pad to a power of two with a sentinel larger than every real key:
    # pads sort last within their block and are never counted against a
    # real query, so they only dilute block tails.
    m = 1 << int(n - 1).bit_length()
    big = np.int64(int(values.max()) + 2)  # strictly above every real key
    sv = np.full(m, big, dtype=np.int64)
    sv[:n] = values + 1  # values >= -1 by contract, keys stay non-negative

    # Bootstrap: solve blocks of up to 32 with one all-pairs broadcast
    # (cheaper than five overhead-bound merge levels), leaving each
    # block sorted so the merge loop can start at this width.
    width = min(32, m)
    nb0 = m // width
    v2 = sv.reshape(nb0, width)
    tri = np.tril(np.ones((width, width), dtype=bool), k=-1)
    rank = ((v2[:, None, :] <= v2[:, :, None]) & tri).sum(axis=2).ravel()
    order = np.argsort(v2, axis=1, kind="stable")
    sv = np.take_along_axis(v2, order, axis=1).ravel()
    perm = (order + (np.arange(nb0) * width)[:, None]).ravel()

    while width < m:
        pair = 2 * width
        nb = m // pair
        blocks = sv.reshape(nb, pair)
        pblocks = perm.reshape(nb, pair)
        left = blocks[:, :width]
        right = blocks[:, width:]
        # Offset keys: each block's slice is sorted (maintained below),
        # so the flat offset-keyed arrays are globally sorted and one
        # searchsorted answers every block pair at once.
        row_offset = np.arange(nb, dtype=np.int64)[:, None] * (big + 1)
        lk = (left + row_offset).ravel()
        rk = (right + row_offset).ravel()
        base = np.repeat(np.arange(nb, dtype=np.int64) * width, width)
        cnt_leq = np.searchsorted(lk, rk, side="right") - base
        rank[pblocks[:, width:].ravel()] += cnt_leq
        # Stable in-place merge of each block pair, keeping sv sorted
        # per (doubled) block for the next level without re-sorting.
        # Right elements land at (own offset + #left <= them); left
        # elements fill the complementary slots in order.
        within = np.tile(np.arange(width, dtype=np.int64), nb)
        row_base = np.repeat(np.arange(nb, dtype=np.int64) * pair, width)
        pos_right = row_base + within + cnt_leq
        left_slot = np.ones(m, dtype=bool)
        left_slot[pos_right] = False
        pos_left = np.flatnonzero(left_slot)
        merged_v = np.empty(m, dtype=np.int64)
        merged_p = np.empty(m, dtype=np.int64)
        merged_v[pos_left] = left.ravel()
        merged_p[pos_left] = pblocks[:, :width].ravel()
        merged_v[pos_right] = right.ravel()
        merged_p[pos_right] = pblocks[:, width:].ravel()
        sv, perm = merged_v, merged_p
        width = pair
    return rank[:n]


def stack_distances(line_addresses, n_sets: int, ways: int) -> np.ndarray:
    """Per-access LRU stack distances for an ``n_sets``-set cache.

    Returns an ``int64`` array the length of the trace: entry ``i`` is
    the number of distinct tags that mapped to access ``i``'s set since
    the previous access to the same tag, capped at ``ways``.  An access
    hits a ``w``-way (``w <= ways``) true-LRU cache of this set count
    iff its entry is strictly less than ``w``; the value ``ways`` means
    the access misses at every partition size up to ``ways`` (including
    cold first touches).
    """
    if n_sets < 1:
        raise ValueError(f"n_sets must be >= 1, got {n_sets}")
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    addresses = np.asarray(line_addresses, dtype=np.int64)
    n = addresses.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if addresses.min() < 0:
        raise ValueError("line addresses must be non-negative")

    set_idx = addresses % n_sets
    tags = addresses // n_sets

    # Group accesses by set: each set becomes one contiguous block, in
    # time order within the block.  (Stable argsort of small ints hits
    # NumPy's radix path, several times faster than comparison sort.)
    sort_sets = set_idx.astype(np.int16) if n_sets <= 1 << 15 else set_idx
    order = np.argsort(sort_sets, kind="stable")
    g_set = set_idx[order]
    g_tag = tags[order]
    counts = np.bincount(set_idx, minlength=n_sets)
    block_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

    # prev[g]: grouped position of the previous access to the same
    # (set, tag), or (block start - 1) as the cold-touch sentinel.
    # One combined-key stable argsort == lexsort((g_tag, g_set)).
    occ = np.argsort(g_set * (np.int64(tags.max()) + 1) + g_tag, kind="stable")
    same = np.zeros(n, dtype=bool)
    same[1:] = (g_set[occ[1:]] == g_set[occ[:-1]]) & (g_tag[occ[1:]] == g_tag[occ[:-1]])
    prev = np.empty(n, dtype=np.int64)
    first_pos = occ[~same]
    prev[occ[1:][same[1:]]] = occ[:-1][same[1:]]
    prev[first_pos] = block_starts[g_set[first_pos]] - 1

    # rank(g) counts h < g with prev[h] <= prev[g].  Within g's set the
    # surplus over the closed-form part is exactly the number of
    # distinct tags seen in (prev[g], g); accesses from earlier blocks
    # always satisfy prev[h] <= prev[g] and contribute a constant that
    # the correction absorbs, so depth = rank - prev - 1.
    depth = _count_leq_before(prev) - prev - 1
    depth[first_pos] = ways
    np.minimum(depth, ways, out=depth)

    result = np.empty(n, dtype=np.int64)
    result[order] = depth
    return result


@dataclass(frozen=True)
class FastHierarchySweep:
    """One kernel pass over a (warm + measured) stream — all answers.

    Holds the per-access L1 stack distances over the full stream and
    the L2 stack distances over the L1-miss substream.  Every query
    (statistics, hit vectors, DRAM miss indices) is answered for the
    measured region only, exactly as the reference hierarchy reports
    after :meth:`~repro.sim.cache.CacheHierarchy.warm`, and — thanks
    to the inclusion property — for *any* L2 way partition
    ``1 <= ways <= l2_ways`` without re-running anything.
    """

    l1_ways: int
    l2_ways: int
    n_warm: int
    n_accesses: int
    l1_depths: np.ndarray
    l2_positions: np.ndarray
    l2_depths: np.ndarray

    def _ways(self, ways: Optional[int]) -> int:
        if ways is None:
            return self.l2_ways
        if not 1 <= ways <= self.l2_ways:
            raise ValueError(f"ways must be in [1, {self.l2_ways}], got {ways}")
        return int(ways)

    @property
    def _measured_l2(self) -> np.ndarray:
        return self.l2_positions >= self.n_warm

    @property
    def l1_stats(self) -> CacheStats:
        """Demand L1 statistics over the measured region."""
        misses = int(np.count_nonzero(self.l1_depths[self.n_warm :] >= self.l1_ways))
        return CacheStats(accesses=self.n_accesses, misses=misses)

    def l1_hits(self) -> np.ndarray:
        """Boolean per-access L1 hit vector over the measured region."""
        return self.l1_depths[self.n_warm :] < self.l1_ways

    def l2_stats(self, ways: Optional[int] = None) -> CacheStats:
        """Measured L2 statistics for a ``ways``-way partition."""
        ways = self._ways(ways)
        measured = self.l2_depths[self._measured_l2]
        misses = int(np.count_nonzero(measured >= ways))
        return CacheStats(accesses=int(measured.size), misses=misses)

    def l2_hits(self, ways: Optional[int] = None) -> np.ndarray:
        """Boolean hit vector over measured L2 accesses (L1 misses)."""
        return self.l2_depths[self._measured_l2] < self._ways(ways)

    def l2_miss_curve(self) -> np.ndarray:
        """Measured L2 miss count for every partition size at once.

        Entry ``w - 1`` is the number of DRAM requests a ``w``-way L2
        partition would issue, for ``w`` in ``1..l2_ways`` — the whole
        way-partition sweep from the single pass.
        """
        hist = self.l2_reuse_histogram()
        total = int(hist.sum())
        return total - np.cumsum(hist[:-1])

    def l2_reuse_histogram(self) -> np.ndarray:
        """Histogram of measured L2 stack distances (capped at l2_ways).

        ``hist[d]`` counts L2 accesses at distance ``d``; the last bin
        aggregates everything at or beyond ``l2_ways`` (always-miss,
        including cold touches).
        """
        measured = self.l2_depths[self._measured_l2]
        return np.bincount(measured, minlength=self.l2_ways + 1)

    def hierarchy_result(self, ways: Optional[int] = None) -> HierarchyResult:
        """The reference :class:`HierarchyResult` for one partition size."""
        return HierarchyResult(
            l1=self.l1_stats, l2=self.l2_stats(ways), n_accesses=self.n_accesses
        )

    def dram_request_indices(self, ways: Optional[int] = None) -> np.ndarray:
        """Measured-trace indices that miss both levels (the DRAM stream)."""
        ways = self._ways(ways)
        mask = self._measured_l2 & (self.l2_depths >= ways)
        return self.l2_positions[mask] - self.n_warm


class FastHierarchy:
    """Stack-distance counterpart of :class:`~repro.sim.cache.CacheHierarchy`.

    Two kernel passes — one over the full stream for the L1, one over
    the L1-miss substream for the L2 — reproduce the reference
    hierarchy bit-exactly for demand accesses: the L2 access stream
    depends only on the (fixed-geometry) L1, and L2 hit/miss per
    partition size follows from the stack distances alone.  Features
    that break the inclusion property (next-line prefetch, whose fills
    depend on whether the demand access missed at the *configured* way
    count) cannot be expressed here; callers fall back to the
    reference simulator for those.
    """

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig):
        self.l1_config = l1_config
        self.l2_config = l2_config

    def l1_pass(self, stream) -> tuple:
        """L1 depths and L1-miss positions for a full (warm + trace) stream.

        Exposed separately so sweeps over multiple L2 geometries with an
        identical warm prefix (``top_lines`` saturates once the locality
        model runs out of popular lines) can share the L1 work: the L1
        filter depends only on the stream and the fixed L1 geometry.
        """
        l1_depths = stack_distances(stream, self.l1_config.n_sets, self.l1_config.ways)
        return l1_depths, np.flatnonzero(l1_depths >= self.l1_config.ways)

    def run(self, trace, warm=None, l1_pass=None) -> FastHierarchySweep:
        """One pass over ``warm + trace``; statistics cover ``trace`` only.

        ``warm`` plays the role of
        :meth:`~repro.sim.cache.CacheHierarchy.warm`: it conditions the
        stack state (cold touches land in the warm region) but is
        excluded from every reported statistic, and DRAM miss indices
        are relative to ``trace``.  ``l1_pass`` may carry the result of
        :meth:`l1_pass` over exactly ``concatenate([warm, trace])`` to
        skip recomputing the L1 filter.
        """
        trace = np.asarray(trace, dtype=np.int64)
        if warm is None:
            stream = trace
            n_warm = 0
        else:
            warm = np.asarray(warm, dtype=np.int64)
            stream = np.concatenate((warm, trace)) if warm.size else trace
            n_warm = int(warm.size)
        l1_depths, l2_positions = l1_pass if l1_pass is not None else self.l1_pass(stream)
        l2_depths = stack_distances(
            stream[l2_positions], self.l2_config.n_sets, self.l2_config.ways
        )
        return FastHierarchySweep(
            l1_ways=self.l1_config.ways,
            l2_ways=self.l2_config.ways,
            n_warm=n_warm,
            n_accesses=int(trace.size),
            l1_depths=l1_depths,
            l2_positions=l2_positions,
            l2_depths=l2_depths,
        )
