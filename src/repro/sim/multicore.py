"""Shared-machine co-simulation: N agents under a chosen memory policy.

The evaluation pipeline (§5) reasons about shared performance through
fitted utilities.  This module closes the loop in the *simulator*: it
runs all N agents of a workload mix concurrently on one machine with
the last-level cache **way-partitioned** per agent and the DRAM channel
arbitrated by a pluggable **memory-scheduling policy** — the §6 design
space the paper positions itself within:

* ``"fcfs"``   — first-come first-served, no fairness substrate at all
  (the baseline prior work improves on);
* ``"wfq"``    — weighted fair queueing on the data bus with the
  agents' bandwidth shares as weights (Nesbit et al.'s fair-queueing
  memory system; the enforcement §4.4 assumes).  Work-conserving:
  agents receive *at least* their share;
* ``"stfm"``   — a stall-time-fair scheduler in the spirit of Mutlu &
  Moscibroda: always grant the request of the agent currently
  suffering the largest estimated DRAM slowdown.

Each agent executes its own reference trace closed-loop (core progress
paces DRAM arrivals, measured latency is charged back at latency/MLP),
so agents genuinely contend for banks and the bus.

This is what lets the reproduction verify sharing incentives *in the
machine* (``benchmarks/bench_enforced_si.py``) and compare memory
policies on the prior-work unfairness index
(``benchmarks/bench_memory_policies.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .cache import CacheHierarchy
from .fastcache import FastHierarchy
from .platform import PlatformConfig
from .trace import generate_trace

__all__ = ["AgentShare", "SharedRunResult", "SharedMachine", "MEMORY_POLICIES"]

#: Valid DRAM arbitration policies.
MEMORY_POLICIES = ("fcfs", "wfq", "stfm")


@dataclass(frozen=True)
class AgentShare:
    """One agent's enforced resource share on the shared machine."""

    name: str
    workload: object
    bandwidth_gbps: float
    l2_ways: int

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth share must be positive, got {self.bandwidth_gbps}")
        if self.l2_ways < 1:
            raise ValueError(f"each agent needs at least one L2 way, got {self.l2_ways}")


@dataclass(frozen=True)
class SharedRunResult:
    """Per-agent outcome of one shared-machine co-simulation."""

    ipc: Dict[str, float]
    dram_requests: Dict[str, int]
    mean_latency_ns: Dict[str, float]
    achieved_bandwidth_gbps: Dict[str, float]
    makespan_ns: float
    policy: str = "wfq"

    def slowdowns(self, alone_ipc: Dict[str, float]) -> Dict[str, float]:
        """Per-agent slowdown versus a solo (alone) run: alone / shared."""
        return {name: alone_ipc[name] / self.ipc[name] for name in self.ipc}

    @staticmethod
    def unfairness_index(slowdowns: Dict[str, float]) -> float:
        """Prior work's metric: max slowdown over min slowdown (§6)."""
        values = list(slowdowns.values())
        return max(values) / min(values)


class _AgentState:
    """Mutable per-agent replay state for the event loop."""

    __slots__ = (
        "miss_instrs",
        "miss_addresses",
        "cursor",
        "core_time_ns",
        "instr_done",
        "core_cpi_ns",
        "mlp",
        "total_latency",
        "unloaded_latency",
        "last_completion",
        "virtual_finish",
        "instructions",
    )

    def __init__(self, miss_instrs, miss_addresses, core_cpi_ns, mlp, instructions=None):
        self.miss_instrs = miss_instrs
        self.miss_addresses = miss_addresses
        self.cursor = 0
        self.core_time_ns = 0.0
        self.instr_done = 0.0
        self.core_cpi_ns = core_cpi_ns
        self.mlp = mlp
        self.total_latency = 0.0
        self.unloaded_latency = 0.0
        self.last_completion = 0.0
        self.virtual_finish = 0.0
        self.instructions = instructions

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.miss_instrs)

    def next_issue_time(self) -> float:
        """When the core will reach its next miss (inf when done)."""
        if self.done:
            return float("inf")
        gap_instr = self.miss_instrs[self.cursor] - self.instr_done
        return self.core_time_ns + gap_instr * self.core_cpi_ns


class SharedMachine:
    """Co-simulates N agents sharing one L2 and one DRAM channel.

    Parameters
    ----------
    platform:
        Machine geometry/timing.  ``platform.l2`` describes the *total*
        shared cache (its way count bounds the partition) and
        ``platform.dram.channel_gbps`` the physical channel.
    n_instructions:
        Instructions each agent executes.
    use_fast_kernel:
        Extract each agent's miss stream with the stack-distance kernel
        (:mod:`repro.sim.fastcache`) — bit-identical to the reference
        per-access loop, partition ways included.  Only the partitioned
        cache mode qualifies; the shared (unpartitioned) mode
        interleaves agents through one mutable L2 and always uses the
        reference simulator.
    """

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        n_instructions: int = 200_000,
        use_fast_kernel: bool = True,
    ):
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive, got {n_instructions}")
        self.platform = platform if platform is not None else PlatformConfig()
        self.n_instructions = n_instructions
        self.use_fast_kernel = bool(use_fast_kernel)

    # ------------------------------------------------------------------

    def run(
        self,
        shares: Sequence[AgentShare],
        seed: int = 99,
        policy: str = "wfq",
        cache_mode: str = "partitioned",
    ) -> SharedRunResult:
        """Run all agents to completion under one memory policy.

        Parameters
        ----------
        cache_mode:
            ``"partitioned"`` (default) gives each agent its
            ``l2_ways`` slice of the shared cache — the §4.4
            enforcement.  ``"shared"`` runs everyone through one
            *unpartitioned* L2: agents' lines evict one another, so a
            streaming neighbour can destroy a cache-lover's hit rate —
            the interference that motivates enforcement in the first
            place (``benchmarks/bench_why_partition.py``).
        """
        shares = list(shares)
        if not shares:
            raise ValueError("at least one agent share is required")
        if policy not in MEMORY_POLICIES:
            raise ValueError(f"policy must be one of {MEMORY_POLICIES}, got {policy!r}")
        if cache_mode not in ("partitioned", "shared"):
            raise ValueError(
                f"cache_mode must be 'partitioned' or 'shared', got {cache_mode!r}"
            )
        names = [share.name for share in shares]
        if len(set(names)) != len(names):
            raise ValueError(f"agent names must be unique, got {names}")
        if cache_mode == "partitioned":
            total_ways = sum(share.l2_ways for share in shares)
            if total_ways > self.platform.l2.ways:
                raise ValueError(
                    f"partition uses {total_ways} ways but the shared L2 has "
                    f"{self.platform.l2.ways}"
                )
            states = [
                self._prepare_agent(index, share, seed)
                for index, share in enumerate(shares)
            ]
        else:
            states = self._prepare_shared_cache(shares, seed)
        return self._interleave(shares, states, policy)

    def run_alone(self, share: AgentShare, seed: int = 99) -> SharedRunResult:
        """Run one agent with the machine to itself (same partition).

        The baseline the slowdown/unfairness metrics divide by: the
        agent keeps its cache partition but faces no DRAM contention.
        """
        return self.run([share], seed=seed, policy="fcfs")

    # ------------------------------------------------------------------

    def _prepare_agent(self, index: int, share: AgentShare, seed: int) -> _AgentState:
        """Warm the agent's cache partition and extract its miss stream."""
        workload = share.workload
        partition_lines = (
            self.platform.l2.n_lines * share.l2_ways // self.platform.l2.ways
        )
        warm = workload.locality.top_lines(max(partition_lines, 1))
        n_accesses = max(int(self.n_instructions * workload.refs_per_instr), 1)
        trace = generate_trace(workload.locality, n_accesses, seed=seed + index)
        if self.use_fast_kernel:
            run = FastHierarchy(self.platform.l1, self.platform.l2).run(trace, warm=warm)
            miss_indices = run.dram_request_indices(ways=share.l2_ways)
            l1_stats = run.l1_stats
            l1_miss = l1_stats.miss_ratio
            global_miss = run.l2_stats(ways=share.l2_ways).misses / max(
                l1_stats.accesses, 1
            )
        else:
            hierarchy = CacheHierarchy(
                self.platform.l1, self.platform.l2, l2_partition_ways=share.l2_ways
            )
            hierarchy.warm(warm)
            miss_indices = hierarchy.dram_request_indices(trace)
            l1_miss = hierarchy.l1.stats.miss_ratio
            global_miss = hierarchy.l2.stats.misses / max(hierarchy.l1.stats.accesses, 1)
        core = self.platform.core
        l2_hits_per_instr = workload.refs_per_instr * (l1_miss - global_miss)
        core_cpi = (
            max(workload.base_cpi, 1.0 / core.issue_width)
            + l2_hits_per_instr * self.platform.l2.latency_cycles * 0.3
        )
        return _AgentState(
            miss_instrs=miss_indices / workload.refs_per_instr,
            miss_addresses=trace[miss_indices],
            core_cpi_ns=core_cpi * core.cycle_ns,
            mlp=workload.mlp,
        )

    def _prepare_shared_cache(self, shares: List[AgentShare], seed: int) -> List[_AgentState]:
        """Interleave all agents through one *unpartitioned* L2.

        Access streams merge in instruction order (instruction progress
        approximated as uniform across agents — adequate for measuring
        cache interference, which depends on interleaving density, not
        exact timing).  The first 30% of the merged stream warms the
        shared cache; statistics and miss streams come from the rest.
        """
        import heapq

        from .cache import SetAssociativeCache

        l2 = SetAssociativeCache(self.platform.l2)
        l1s = [SetAssociativeCache(self.platform.l1) for _ in shares]
        traces = []
        instr_of = []
        for index, share in enumerate(shares):
            workload = share.workload
            n_accesses = max(int(self.n_instructions * workload.refs_per_instr), 1)
            trace = generate_trace(workload.locality, n_accesses, seed=seed + index)
            traces.append(trace)
            instr_of.append(np.arange(n_accesses) / workload.refs_per_instr)

        # Merge by instruction index.
        heap = [(instr_of[i][0], i, 0) for i in range(len(shares)) if len(traces[i])]
        heapq.heapify(heap)
        warm_until = int(0.3 * sum(len(t) for t in traces))
        served = 0
        miss_records: List[List] = [[] for _ in shares]
        l1_misses = [0] * len(shares)
        measured_accesses = [0] * len(shares)
        while heap:
            _, agent, pos = heapq.heappop(heap)
            address = int(traces[agent][pos])
            warming = served < warm_until
            served += 1
            if not warming:
                measured_accesses[agent] += 1
            if not l1s[agent].access(address):
                if not warming:
                    l1_misses[agent] += 1
                if not l2.access(address) and not warming:
                    miss_records[agent].append((instr_of[agent][pos], address))
            next_pos = pos + 1
            if next_pos < len(traces[agent]):
                heapq.heappush(heap, (instr_of[agent][next_pos], agent, next_pos))

        states = []
        core = self.platform.core
        for index, share in enumerate(shares):
            workload = share.workload
            accesses = max(measured_accesses[index], 1)
            l1_miss_ratio = l1_misses[index] / accesses
            global_miss_ratio = len(miss_records[index]) / accesses
            l2_hits_per_instr = workload.refs_per_instr * (
                l1_miss_ratio - global_miss_ratio
            )
            core_cpi = (
                max(workload.base_cpi, 1.0 / core.issue_width)
                + l2_hits_per_instr * self.platform.l2.latency_cycles * 0.3
            )
            if miss_records[index]:
                miss_instrs = np.array([instr for instr, _ in miss_records[index]])
                miss_addresses = np.array([addr for _, addr in miss_records[index]])
                # Re-base instruction indices so replay starts at zero.
                miss_instrs = miss_instrs - miss_instrs[0]
            else:
                miss_instrs = np.empty(0)
                miss_addresses = np.empty(0, dtype=np.int64)
            states.append(
                _AgentState(
                    miss_instrs=miss_instrs,
                    miss_addresses=miss_addresses,
                    core_cpi_ns=core_cpi * core.cycle_ns,
                    mlp=workload.mlp,
                    instructions=accesses / workload.refs_per_instr,
                )
            )
        return states

    def _pick(
        self,
        policy: str,
        candidates: List[int],
        states: List[_AgentState],
    ) -> int:
        """Arbitrate among agents whose requests are ready."""
        if len(candidates) == 1:
            return candidates[0]
        if policy == "fcfs":
            return min(candidates, key=lambda i: states[i].next_issue_time())
        if policy == "wfq":
            return min(candidates, key=lambda i: states[i].virtual_finish)
        # stfm: serve the agent with the worst estimated DRAM slowdown.
        def slowdown(i: int) -> float:
            state = states[i]
            if state.unloaded_latency == 0:
                return 1.0
            return state.total_latency / state.unloaded_latency

        return max(candidates, key=slowdown)

    def _interleave(
        self, shares: List[AgentShare], states: List[_AgentState], policy: str
    ) -> SharedRunResult:
        """Serve agents' misses on the shared channel under the policy."""
        dram = self.platform.dram
        banks_per_channel = dram.n_ranks * dram.n_banks
        bank_free = np.zeros(dram.n_channels * banks_per_channel)
        bus_free = [0.0] * dram.n_channels
        # Bandwidth shares act as WFQ weights (only ratios matter); the
        # physical per-channel rate bounds each channel's service.
        burst_ns = dram.line_bytes / dram.per_channel_gbps
        weights = [share.bandwidth_gbps for share in shares]

        pending = {i for i in range(len(states)) if not states[i].done}
        while pending:
            issues = {i: states[i].next_issue_time() for i in pending}
            earliest = min(issues.values())
            # Requests issued by the time a bus frees compete; if every
            # bus is idle past every issue, the earliest goes alone.
            horizon = max(min(bus_free), earliest)
            candidates = [i for i in pending if issues[i] <= horizon]
            chosen = self._pick(policy, candidates, states)
            state = states[chosen]
            issue = issues[chosen]
            address = int(state.miss_addresses[state.cursor])
            channel = address % dram.n_channels
            bank = channel * banks_per_channel + (
                (address // dram.n_channels) % banks_per_channel
            )

            start = max(issue, bank_free[bank])
            data_start = max(start + dram.t_rcd_ns + dram.t_cl_ns, bus_free[channel])
            done = data_start + burst_ns
            bus_free[channel] = done
            bank_free[bank] = done + dram.t_rp_ns
            # Virtual time for WFQ: one line's worth of service divided
            # by the agent's weight (start-time fair queueing flavour).
            state.virtual_finish = (
                max(state.virtual_finish, data_start) + dram.line_bytes / weights[chosen]
            )

            state.total_latency += done - issue
            state.unloaded_latency += dram.t_rcd_ns + dram.t_cl_ns + burst_ns
            state.last_completion = done
            state.core_time_ns = issue + (done - issue) / state.mlp
            state.instr_done = state.miss_instrs[state.cursor]
            state.cursor += 1
            if state.done:
                pending.discard(chosen)

        return self._collect(shares, states, policy)

    def _collect(
        self, shares: List[AgentShare], states: List[_AgentState], policy: str
    ) -> SharedRunResult:
        ipc: Dict[str, float] = {}
        requests: Dict[str, int] = {}
        latency: Dict[str, float] = {}
        achieved: Dict[str, float] = {}
        makespan = 0.0
        core = self.platform.core
        for share, state in zip(shares, states):
            instructions = state.instructions or self.n_instructions
            finish_ns = state.core_time_ns + (
                (instructions - state.instr_done) * state.core_cpi_ns
            )
            finish_ns = max(finish_ns, state.last_completion)
            cycles = finish_ns * core.frequency_ghz
            ipc[share.name] = instructions / cycles if cycles > 0 else 0.0
            n_requests = int(state.cursor)
            requests[share.name] = n_requests
            latency[share.name] = state.total_latency / n_requests if n_requests else 0.0
            achieved[share.name] = (
                n_requests * self.platform.dram.line_bytes / finish_ns if finish_ns else 0.0
            )
            makespan = max(makespan, finish_ns)
        return SharedRunResult(
            ipc=ipc,
            dram_requests=requests,
            mean_latency_ns=latency,
            achieved_bandwidth_gbps=achieved,
            makespan_ns=makespan,
            policy=policy,
        )
