"""Set-associative LRU cache simulator and two-level hierarchy.

Substitutes for the cache models inside MARSSx86 (Table 1): a 32 KB
4-way L1 backed by a swept-size 8-way L2, both with 64-byte lines and
true LRU replacement.  The simulator consumes line-address traces from
:mod:`repro.sim.trace` and reports hit/miss statistics; the miss stream
of the L2 feeds the DRAM model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .platform import CacheConfig

__all__ = ["CacheStats", "SetAssociativeCache", "CacheHierarchy", "HierarchyResult"]


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class SetAssociativeCache:
    """A single set-associative cache level with true LRU replacement.

    Each set is kept as a most-recently-used-first list of line tags;
    way counts are small (4-8), so list operations are effectively
    constant time.

    Parameters
    ----------
    config:
        Geometry (size, associativity, line size).
    n_partition_ways:
        Optional way-partitioning limit: the cache behaves as if only
        this many ways per set exist.  Used by
        :mod:`repro.sched.partition` to enforce capacity allocations the
        way real CMPs do.
    """

    def __init__(self, config: CacheConfig, n_partition_ways: Optional[int] = None):
        self.config = config
        ways = config.ways if n_partition_ways is None else n_partition_ways
        if not 1 <= ways <= config.ways:
            raise ValueError(
                f"n_partition_ways must be in [1, {config.ways}], got {n_partition_ways}"
            )
        self.effective_ways = ways
        self.n_sets = config.n_sets
        self.stats = CacheStats()
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]

    @property
    def effective_size_kb(self) -> float:
        """Capacity visible after way partitioning."""
        return self.config.size_kb * self.effective_ways / self.config.ways

    def access(self, line_address: int) -> bool:
        """Access one line; returns True on hit.  Misses allocate (LRU evict)."""
        index = line_address % self.n_sets
        tag = line_address // self.n_sets
        ways = self._sets[index]
        self.stats.accesses += 1
        try:
            position = ways.index(tag)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.effective_ways:
                ways.pop()
            ways.insert(0, tag)
            return False
        if position:
            ways.pop(position)
            ways.insert(0, tag)
        return True

    def access_trace(self, line_addresses) -> np.ndarray:
        """Access a whole trace; returns a boolean hit vector."""
        addresses = np.asarray(line_addresses, dtype=np.int64)
        hits = np.empty(addresses.size, dtype=bool)
        for i, address in enumerate(addresses.tolist()):
            hits[i] = self.access(address)
        return hits

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        self._sets = [[] for _ in range(self.n_sets)]

    def resident_lines(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(ways) for ways in self._sets)


@dataclass(frozen=True)
class HierarchyResult:
    """Summary of running a trace through the two-level hierarchy."""

    l1: CacheStats
    l2: CacheStats
    n_accesses: int

    @property
    def l1_miss_ratio(self) -> float:
        return self.l1.miss_ratio

    @property
    def l2_miss_ratio(self) -> float:
        """L2 misses per L2 access (local miss ratio)."""
        return self.l2.miss_ratio

    @property
    def global_l2_miss_ratio(self) -> float:
        """L2 misses per *L1* access — the DRAM traffic fraction."""
        if self.n_accesses == 0:
            return 0.0
        return self.l2.misses / self.n_accesses


class CacheHierarchy:
    """An inclusive L1 -> L2 hierarchy fed by a line-address trace.

    L1 misses propagate to the L2; L2 misses are the DRAM request
    stream.  Inclusion is maintained implicitly (both levels allocate on
    miss; L1 is far smaller than any swept L2 size).
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        l2_partition_ways: Optional[int] = None,
        next_line_prefetch: bool = False,
    ):
        self.l1 = SetAssociativeCache(l1_config)
        self.l2 = SetAssociativeCache(l2_config, n_partition_ways=l2_partition_ways)
        self.next_line_prefetch = next_line_prefetch
        self.prefetches_issued = 0

    def access(self, line_address: int) -> Tuple[bool, bool]:
        """Access one line; returns (l1_hit, l2_hit).

        ``l2_hit`` is True when the L1 hit (no L2 access was needed) or
        when the L2 itself hit; it is False exactly when the access
        reaches DRAM.

        With ``next_line_prefetch`` enabled, every L2 demand miss also
        installs line ``A + 1`` into the L2 (a classic next-line
        prefetcher): sequential streams then hit on their next access.
        Prefetch fills do not count as demand accesses in the L2's
        statistics, but they do consume DRAM bandwidth — callers that
        time DRAM should account for ``prefetches_issued``.
        """
        if self.l1.access(line_address):
            return True, True
        l2_hit = self.l2.access(line_address)
        if not l2_hit and self.next_line_prefetch:
            self._prefetch(line_address + 1)
        return False, l2_hit

    def _prefetch(self, line_address: int) -> None:
        """Install a line into the L2 without perturbing demand stats."""
        accesses, misses = self.l2.stats.accesses, self.l2.stats.misses
        already_resident = self.l2.access(line_address)
        self.l2.stats.accesses, self.l2.stats.misses = accesses, misses
        if not already_resident:
            self.prefetches_issued += 1

    def warm(self, line_addresses: np.ndarray) -> None:
        """Pre-load lines (checkpoint-style warm-up) and reset statistics.

        Touch the given addresses in order (most-popular-last leaves the
        hottest lines MRU in every set), then clear the counters so only
        the measured region contributes to miss ratios.  Warm-up
        prefetches are cleared too: ``prefetches_issued`` feeds DRAM
        bandwidth accounting, which must cover the measured region only.
        """
        for address in np.asarray(line_addresses, dtype=np.int64).tolist():
            self.access(address)
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.prefetches_issued = 0

    def run(self, line_addresses) -> HierarchyResult:
        """Run a full trace, returning per-level statistics.

        Also returns, via the result's counters, the number of DRAM
        requests (``result.l2.misses``).
        """
        for address in np.asarray(line_addresses, dtype=np.int64).tolist():
            self.access(address)
        return HierarchyResult(
            l1=self.l1.stats, l2=self.l2.stats, n_accesses=self.l1.stats.accesses
        )

    def dram_request_indices(self, line_addresses) -> np.ndarray:
        """Run a trace and return the indices that missed all levels.

        Used by the machine model to time DRAM requests: the index of a
        miss within the instruction stream locates its arrival time.
        """
        addresses = np.asarray(line_addresses, dtype=np.int64)
        missed = np.empty(addresses.size, dtype=np.int64)
        count = 0
        for i, address in enumerate(addresses.tolist()):
            _, l2_hit = self.access(address)
            if not l2_hit:
                missed[count] = i
                count += 1
        return missed[:count]
