"""Fast analytic machine model: closed-form IPC over the allocation grid.

Combines the three analytic component models — Che's-approximation LRU
miss ratios (:class:`~repro.sim.trace.LocalityModel`), the M/D/1 loaded
DRAM latency (:func:`~repro.sim.dram.loaded_latency`) and the interval
core model (:func:`~repro.sim.cpu.solve_ipc`) — into a single
``ipc(workload, cache_kb, bandwidth_gbps)`` evaluation.

This is the model used for the full 28-benchmark x 25-configuration
sweep (the paper's Table 1 grid): it is deterministic and fast, and the
trace-driven :class:`~repro.sim.machine.TraceMachine` validates it on
representative workloads (see ``tests/integration``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from .cpu import IpcSolution, MemoryProfile, solve_ipc
from .platform import PlatformConfig

__all__ = ["AnalyticMachine", "SweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """IPC measured over a grid of (bandwidth, cache) allocations.

    ``allocations[k] = (bandwidth_gbps, cache_kb)`` and ``ipc[k]`` is the
    matching performance — exactly the profile shape
    :func:`repro.core.fitting.fit_cobb_douglas` consumes (with cache
    expressed in KB and bandwidth in GB/s).
    """

    workload_name: str
    allocations: np.ndarray
    ipc: np.ndarray

    def __post_init__(self) -> None:
        if self.allocations.shape[0] != self.ipc.shape[0]:
            raise ValueError("allocations and ipc must have matching lengths")

    @property
    def n_points(self) -> int:
        return int(self.ipc.shape[0])


class AnalyticMachine:
    """Closed-form IPC model for a platform (Table 1 by default).

    Parameters
    ----------
    platform:
        Platform whose L1 geometry, core and DRAM timing parameters are
        used.  The L2 size and DRAM bandwidth are overridden per query.
    """

    def __init__(self, platform: PlatformConfig = None):
        self.platform = platform if platform is not None else PlatformConfig()

    def memory_profile(self, workload, cache_kb: float) -> MemoryProfile:
        """Per-instruction memory behaviour at a given L2 capacity.

        The L1 filters the hottest lines; for an inclusive LRU hierarchy
        the global L2 miss ratio depends (to first order) only on the L2
        capacity, so both levels are evaluated on the same locality
        model (the LRU stack-inclusion property).
        """
        l1_lines = self.platform.l1.n_lines
        l2_lines = max(int(round(cache_kb * 1024 / self.platform.l2.line_bytes)), 1)
        l1_miss = workload.locality.miss_ratio(l1_lines)
        l2_global_miss = workload.locality.miss_ratio(max(l2_lines, l1_lines))
        l2_accesses = workload.refs_per_instr * l1_miss
        l2_misses = min(workload.refs_per_instr * l2_global_miss, l2_accesses)
        return MemoryProfile(
            l2_accesses_per_instr=l2_accesses,
            l2_misses_per_instr=l2_misses,
            base_cpi=workload.base_cpi,
            mlp=workload.mlp,
            l2_hit_latency_cycles=self.platform.l2.latency_cycles,
        )

    def solve(self, workload, cache_kb: float, bandwidth_gbps: float) -> IpcSolution:
        """Full operating point (IPC, latency, utilization) for one allocation."""
        if cache_kb <= 0 or bandwidth_gbps <= 0:
            raise ValueError(
                f"allocations must be positive, got cache={cache_kb} KB, "
                f"bandwidth={bandwidth_gbps} GB/s"
            )
        profile = self.memory_profile(workload, cache_kb)
        dram = replace(self.platform.dram, bandwidth_gbps=float(bandwidth_gbps))
        return solve_ipc(profile, self.platform.core, dram)

    def ipc(self, workload, cache_kb: float, bandwidth_gbps: float) -> float:
        """Instructions per cycle for one (cache, bandwidth) allocation."""
        return self.solve(workload, cache_kb, bandwidth_gbps).ipc

    def sweep(
        self,
        workload,
        bandwidths_gbps: Sequence[float] = None,
        cache_sizes_kb: Sequence[float] = None,
    ) -> SweepResult:
        """IPC over the (bandwidth x cache) grid; defaults to Table 1's 5x5.

        Points are ordered bandwidth-major to match Figs. 8b/8c.
        """
        if bandwidths_gbps is None:
            bandwidths_gbps = self.platform.bandwidth_sweep_gbps
        if cache_sizes_kb is None:
            cache_sizes_kb = self.platform.l2_sweep_kb
        points: List[Tuple[float, float]] = [
            (float(bw), float(kb)) for bw in bandwidths_gbps for kb in cache_sizes_kb
        ]
        ipc = np.array([self.ipc(workload, kb, bw) for bw, kb in points])
        return SweepResult(
            workload_name=workload.name,
            allocations=np.asarray(points),
            ipc=ipc,
        )
