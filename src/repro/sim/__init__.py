"""Simulation substrate: caches, DRAM, core model, traces, machines.

This package substitutes for the MARSSx86 + DRAMSim2 stack of §5.1:
trace-driven set-associative caches, an event-driven closed-page DRAM
controller, an interval out-of-order core model, and a fast analytic
machine used for full allocation sweeps.
"""

from .analytic import AnalyticMachine, SweepResult
from .cache import CacheHierarchy, CacheStats, HierarchyResult, SetAssociativeCache
from .cores import ParallelWorkload, ThreeResourceMachine, amdahl_speedup
from .cpu import IpcSolution, MemoryProfile, interval_ipc, solve_ipc
from .dram import DramRequest, DramResult, DramSimulator, loaded_latency
from .fastcache import FastHierarchy, FastHierarchySweep, stack_distances
from .machine import TraceMachine, TraceSimulationResult
from .multicore import MEMORY_POLICIES, AgentShare, SharedMachine, SharedRunResult
from .platform import (
    TABLE1_PLATFORM,
    CacheConfig,
    CoreConfig,
    DramConfig,
    PlatformConfig,
)
from .trace import LocalityModel, generate_trace

__all__ = [
    "AgentShare",
    "AnalyticMachine",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "CoreConfig",
    "DramConfig",
    "DramRequest",
    "DramResult",
    "DramSimulator",
    "FastHierarchy",
    "FastHierarchySweep",
    "HierarchyResult",
    "IpcSolution",
    "LocalityModel",
    "MEMORY_POLICIES",
    "MemoryProfile",
    "ParallelWorkload",
    "PlatformConfig",
    "SetAssociativeCache",
    "SharedMachine",
    "SharedRunResult",
    "SweepResult",
    "TABLE1_PLATFORM",
    "ThreeResourceMachine",
    "TraceMachine",
    "TraceSimulationResult",
    "amdahl_speedup",
    "generate_trace",
    "interval_ipc",
    "loaded_latency",
    "solve_ipc",
    "stack_distances",
]
