"""Out-of-order core performance model (interval analysis).

Substitutes for the MARSSx86 core timing model.  We use the standard
interval/CPI-stack decomposition: a core with enough ILP executes at a
workload-specific base CPI, and long-latency L2 misses insert stall
intervals whose cost is the loaded memory latency divided by the
workload's memory-level parallelism (MLP).  L2 hits add their access
latency weighted by how often the L1 misses.

Because the loaded memory latency itself depends on how fast the core
generates misses (bandwidth demand = IPC * misses-per-instruction *
line size), IPC is the solution of a fixed point, computed by
:func:`solve_ipc` with damped iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dram import MAX_UTILIZATION, loaded_latency
from .platform import CoreConfig, DramConfig

__all__ = ["MemoryProfile", "interval_ipc", "solve_ipc", "IpcSolution"]

#: Fixed-point iteration parameters.
_MAX_ITERATIONS = 200
_TOLERANCE = 1e-10
_DAMPING = 0.5


@dataclass(frozen=True)
class MemoryProfile:
    """Per-instruction memory behaviour of a workload on some platform.

    Attributes
    ----------
    l2_accesses_per_instr:
        L1 misses per instruction (each reaches the L2).
    l2_misses_per_instr:
        L2 misses per instruction (each reaches DRAM).
    base_cpi:
        Core-limited CPI with a perfect memory hierarchy.
    mlp:
        Average number of overlapping outstanding L2 misses; stall
        cycles per miss are ``latency / mlp``.
    l2_hit_latency_cycles:
        L2 access latency charged to L1 misses that hit in L2.
    l2_hit_overlap:
        Fraction of L2 hit latency hidden by out-of-order execution.
    """

    l2_accesses_per_instr: float
    l2_misses_per_instr: float
    base_cpi: float
    mlp: float
    l2_hit_latency_cycles: float = 20.0
    l2_hit_overlap: float = 0.7

    def __post_init__(self) -> None:
        if self.l2_accesses_per_instr < 0 or self.l2_misses_per_instr < 0:
            raise ValueError("per-instruction access rates must be non-negative")
        if self.l2_misses_per_instr > self.l2_accesses_per_instr + 1e-12:
            raise ValueError("cannot miss in L2 more often than accessing it")
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {self.base_cpi}")
        if self.mlp < 1:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")
        if not 0 <= self.l2_hit_overlap <= 1:
            raise ValueError(f"l2_hit_overlap must be in [0, 1], got {self.l2_hit_overlap}")


def interval_ipc(profile: MemoryProfile, mem_latency_cycles: float, core: CoreConfig) -> float:
    """IPC for a *fixed* loaded memory latency (one interval-model step).

        CPI = base + hits * exposed_hit_latency + misses * latency / MLP
    """
    if mem_latency_cycles < 0:
        raise ValueError(f"mem_latency_cycles must be non-negative, got {mem_latency_cycles}")
    l2_hits_per_instr = profile.l2_accesses_per_instr - profile.l2_misses_per_instr
    hit_cost = l2_hits_per_instr * profile.l2_hit_latency_cycles * (1.0 - profile.l2_hit_overlap)
    miss_cost = profile.l2_misses_per_instr * mem_latency_cycles / profile.mlp
    cpi = max(profile.base_cpi, 1.0 / core.issue_width) + hit_cost + miss_cost
    return 1.0 / cpi


@dataclass(frozen=True)
class IpcSolution:
    """Converged operating point of the core/memory fixed point."""

    ipc: float
    memory_latency_cycles: float
    bandwidth_demand_gbps: float
    utilization: float
    iterations: int
    converged: bool


def solve_ipc(profile: MemoryProfile, core: CoreConfig, dram: DramConfig) -> IpcSolution:
    """Solve the IPC / memory-latency fixed point with damped iteration.

    At a candidate IPC, the DRAM channel sees traffic

        demand [GB/s] = IPC * misses_per_instr * line_bytes * freq [GHz]

    whose utilization of the allocated bandwidth sets the loaded latency
    (:func:`repro.sim.dram.loaded_latency`), which in turn sets IPC via
    the interval model.  Damped iteration converges quickly because the
    map is monotone and bounded.
    """
    ipc = interval_ipc(profile, core.ns_to_cycles(dram.access_ns), core)
    latency_cycles = core.ns_to_cycles(dram.access_ns)
    converged = False
    iterations = 0
    for iterations in range(1, _MAX_ITERATIONS + 1):
        demand = ipc * profile.l2_misses_per_instr * dram.line_bytes * core.frequency_ghz
        utilization = demand / dram.bandwidth_gbps
        latency_ns = loaded_latency(dram, utilization)
        latency_cycles = core.ns_to_cycles(latency_ns)
        next_ipc = interval_ipc(profile, latency_cycles, core)
        # When demand exceeds what the channel can carry, IPC is
        # bandwidth-bound: cap it at the sustainable rate.
        max_ipc = _bandwidth_bound_ipc(profile, core, dram)
        next_ipc = min(next_ipc, max_ipc)
        new_ipc = ipc + _DAMPING * (next_ipc - ipc)
        if abs(new_ipc - ipc) <= _TOLERANCE:
            ipc = new_ipc
            converged = True
            break
        ipc = new_ipc

    demand = ipc * profile.l2_misses_per_instr * dram.line_bytes * core.frequency_ghz
    return IpcSolution(
        ipc=float(ipc),
        memory_latency_cycles=float(latency_cycles),
        bandwidth_demand_gbps=float(demand),
        utilization=float(demand / dram.bandwidth_gbps),
        iterations=iterations,
        converged=converged,
    )


def _bandwidth_bound_ipc(profile: MemoryProfile, core: CoreConfig, dram: DramConfig) -> float:
    """Highest IPC the allocated bandwidth can sustain."""
    bytes_per_instr = profile.l2_misses_per_instr * dram.line_bytes
    if bytes_per_instr == 0:
        return float("inf")
    return MAX_UTILIZATION * dram.bandwidth_gbps / (bytes_per_instr * core.frequency_ghz)
