"""Trace-driven machine: caches, DRAM channel and core coupled closed-loop.

This is the detailed counterpart of the analytic machine — the stand-in
for the MARSSx86 + DRAMSim2 stack of §5.1.  For one workload and one
(cache, bandwidth) allocation it:

1. synthesizes a reference trace from the workload's locality model,
2. runs it through the two-level set-associative LRU hierarchy,
3. replays execution on a closed-loop timing model: the core advances
   at its non-DRAM CPI between L2 misses, each miss is scheduled on the
   closed-page DRAM channel at the moment the core reaches it, and the
   core is charged the *measured* loaded latency amortized over its
   memory-level parallelism.

Because arrivals are paced by core progress, the loop is
self-stabilizing under bandwidth saturation: when the channel backs up,
the core slows, and the offered load settles at what the allocated
share can carry — the same operating point the analytic fixed point
finds.

Step 2 normally runs on the stack-distance kernel
(:mod:`repro.sim.fastcache`), which is bit-exact against the reference
hierarchy and lets :meth:`TraceMachine.sweep` collapse a whole
allocation grid: the cache dimension costs one kernel pass per distinct
cache size (the miss stream never depends on bandwidth), and each
bandwidth point only replays DRAM timing over that miss stream.
``use_fast_kernel=False`` — or a configuration the kernel cannot
express, such as next-line prefetch — falls back to the per-access
reference simulator, producing identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import MetricsRegistry, global_registry, timed
from .cache import CacheHierarchy
from .dram import DramChannel
from .fastcache import FastHierarchy
from .platform import PlatformConfig
from .trace import generate_trace

__all__ = ["TraceSimulationResult", "TraceMachine"]


@dataclass(frozen=True)
class TraceSimulationResult:
    """Everything measured by one trace-driven simulation."""

    workload_name: str
    cache_kb: float
    bandwidth_gbps: float
    ipc: float
    l1_miss_ratio: float
    l2_miss_ratio_global: float
    mean_memory_latency_ns: float
    achieved_bandwidth_gbps: float
    n_instructions: int
    n_dram_requests: int
    dram_row_hit_rate: float = 0.0


class TraceMachine:
    """Detailed trace-driven simulator for one platform.

    Parameters
    ----------
    platform:
        Geometry and timing (Table 1 defaults).
    n_instructions:
        Simulated instruction count per run.  The paper simulates 100M
        instructions per configuration on a cycle-accurate simulator;
        our synthetic workloads reach steady state much sooner, so the
        default is sized for sub-second runs while keeping sampling
        noise small.
    warmup:
        Checkpoint-style warm-up: pre-load the steady-state working set
        (the most popular lines, up to L2 capacity) so a finite trace
        measures warm behaviour, as the paper's 100M-ROI simulations do.
    use_fast_kernel:
        Simulate the hierarchy on the vectorized stack-distance kernel
        (:mod:`repro.sim.fastcache`) instead of the per-access reference
        loop.  Results are bit-identical; disable to cross-check or to
        measure the reference path.
    next_line_prefetch:
        Enable the L2 next-line prefetcher of
        :class:`~repro.sim.cache.CacheHierarchy`.  Prefetch fills break
        the LRU inclusion property, so this configuration automatically
        falls back to the reference simulator even when
        ``use_fast_kernel`` is set.  (Prefetch fills perturb the demand
        miss stream but are not separately timed on the DRAM channel.)
    metrics:
        :class:`~repro.obs.MetricsRegistry` for the kernel's fast-path /
        fallback counters (``repro_fastcache_points_total{path=...}``)
        and kernel latency histogram
        (``repro_fastcache_kernel_seconds``).  Defaults to the
        process-global registry.
    """

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        n_instructions: int = 400_000,
        warmup: bool = True,
        use_fast_kernel: bool = True,
        next_line_prefetch: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive, got {n_instructions}")
        self.platform = platform if platform is not None else PlatformConfig()
        self.n_instructions = n_instructions
        self.warmup = warmup
        self.use_fast_kernel = bool(use_fast_kernel)
        self.next_line_prefetch = bool(next_line_prefetch)
        self.metrics = metrics if metrics is not None else global_registry()

    @property
    def kernel_active(self) -> bool:
        """Whether sweeps run on the stack-distance fast path.

        False when the kernel is disabled *or* when the configuration
        cannot be expressed by it (next-line prefetch).
        """
        return self.use_fast_kernel and not self.next_line_prefetch

    def simulate(
        self,
        workload,
        cache_kb: float,
        bandwidth_gbps: float,
        seed: int = 12345,
    ) -> TraceSimulationResult:
        """Run one workload at one allocation; returns measured IPC etc."""
        if cache_kb <= 0 or bandwidth_gbps <= 0:
            raise ValueError(
                f"allocations must be positive, got cache={cache_kb} KB, "
                f"bandwidth={bandwidth_gbps} GB/s"
            )
        return self.sweep(workload, [(bandwidth_gbps, cache_kb)], seed=seed)[0]

    def sweep(
        self,
        workload,
        points: Sequence[Tuple[float, float]],
        seed: int = 12345,
    ) -> List[TraceSimulationResult]:
        """Simulate one workload at every ``(bandwidth_gbps, cache_kb)`` point.

        Returns one result per point, in input order, bit-identical to
        calling :meth:`simulate` per point.  On the fast path the grid
        collapses: the trace is generated once, each distinct cache size
        costs one stack-distance pass (warm-up included — the warm
        prefix scales with L2 capacity), and every bandwidth point
        reuses that size's DRAM miss stream for a cheap timing replay.
        """
        point_list = [(float(bw), float(kb)) for bw, kb in points]
        for bw, kb in point_list:
            if kb <= 0 or bw <= 0:
                raise ValueError(
                    f"allocations must be positive, got cache={kb} KB, "
                    f"bandwidth={bw} GB/s"
                )
        if not point_list:
            return []
        if not self.kernel_active:
            if self.use_fast_kernel:
                self.metrics.counter(
                    "repro_fastcache_points_total",
                    help="Trace grid points by simulation path",
                    path="fallback",
                ).inc(len(point_list))
            return [
                self._simulate_reference(workload, kb, bw, seed)
                for bw, kb in point_list
            ]

        n_accesses = max(int(self.n_instructions * workload.refs_per_instr), 1)
        trace = generate_trace(workload.locality, n_accesses, seed=seed)
        results = {}
        l1_memo = {}  # warm length -> shared L1 pass (filter is L2-independent)
        for kb in dict.fromkeys(kb for _, kb in point_list):
            platform_kb = self.platform.with_allocation(kb, self.platform.dram.bandwidth_gbps)
            warm = (
                workload.locality.top_lines(platform_kb.l2.n_lines)
                if self.warmup
                else None
            )
            hierarchy = FastHierarchy(platform_kb.l1, platform_kb.l2)
            with timed(
                self.metrics,
                "repro_fastcache_kernel_seconds",
                help="Stack-distance kernel pass latency (one cache size)",
            ):
                memo_key = warm.size if warm is not None else 0
                if memo_key not in l1_memo:
                    stream = np.concatenate((warm, trace)) if warm is not None else trace
                    l1_memo[memo_key] = hierarchy.l1_pass(stream)
                run = hierarchy.run(trace, warm=warm, l1_pass=l1_memo[memo_key])
            miss_indices = run.dram_request_indices()
            l1_stats = run.l1_stats
            l1_miss_ratio = l1_stats.miss_ratio
            global_miss_ratio = run.l2_stats().misses / max(l1_stats.accesses, 1)
            for bw in dict.fromkeys(bw for bw, kb2 in point_list if kb2 == kb):
                results[(bw, kb)] = self._replay(
                    workload,
                    self.platform.with_allocation(kb, bw),
                    kb,
                    bw,
                    trace,
                    miss_indices,
                    l1_miss_ratio,
                    global_miss_ratio,
                )
        self.metrics.counter(
            "repro_fastcache_points_total",
            help="Trace grid points by simulation path",
            path="fast",
        ).inc(len(point_list))
        return [results[point] for point in point_list]

    def _simulate_reference(
        self, workload, cache_kb: float, bandwidth_gbps: float, seed: int
    ) -> TraceSimulationResult:
        """The per-access reference path (also the fallback target)."""
        platform = self.platform.with_allocation(cache_kb, bandwidth_gbps)
        n_accesses = max(int(self.n_instructions * workload.refs_per_instr), 1)
        trace = generate_trace(workload.locality, n_accesses, seed=seed)

        hierarchy = CacheHierarchy(
            platform.l1, platform.l2, next_line_prefetch=self.next_line_prefetch
        )
        if self.warmup:
            hierarchy.warm(workload.locality.top_lines(platform.l2.n_lines))
        miss_indices = hierarchy.dram_request_indices(trace)
        l1_stats = hierarchy.l1.stats
        l2_stats = hierarchy.l2.stats
        l1_miss_ratio = l1_stats.miss_ratio
        global_miss_ratio = l2_stats.misses / max(l1_stats.accesses, 1)
        return self._replay(
            workload,
            platform,
            cache_kb,
            bandwidth_gbps,
            trace,
            miss_indices,
            l1_miss_ratio,
            global_miss_ratio,
        )

    def _replay(
        self,
        workload,
        platform: PlatformConfig,
        cache_kb: float,
        bandwidth_gbps: float,
        trace: np.ndarray,
        miss_indices: np.ndarray,
        l1_miss_ratio: float,
        global_miss_ratio: float,
    ) -> TraceSimulationResult:
        """Closed-loop DRAM timing replay over one miss stream.

        Shared by the reference and fast paths: given identical miss
        indices and miss ratios, the replay — and hence the final
        result — is bit-identical.
        """
        # Non-DRAM CPI: core-limited base plus exposed L2-hit latency.
        core = platform.core
        l2_hits_per_instr = workload.refs_per_instr * l1_miss_ratio - (
            workload.refs_per_instr * global_miss_ratio
        )
        hit_cost_cpi = l2_hits_per_instr * platform.l2.latency_cycles * 0.3
        core_cpi = max(workload.base_cpi, 1.0 / core.issue_width) + hit_cost_cpi
        core_cpi_ns = core_cpi * core.cycle_ns

        # Closed-loop replay: walk the miss stream, advancing core time
        # by the instruction gap, issuing each miss when reached, and
        # charging measured latency amortized over MLP.
        channel = DramChannel(platform.dram)
        instr_of_miss = miss_indices / workload.refs_per_instr
        core_time_ns = 0.0
        instr_done = 0.0
        for access_index, instr_index in zip(miss_indices, instr_of_miss):
            core_time_ns += (instr_index - instr_done) * core_cpi_ns
            instr_done = instr_index
            done = channel.service(core_time_ns, int(trace[access_index]))
            core_time_ns += (done - core_time_ns) / workload.mlp
        core_time_ns += (self.n_instructions - instr_done) * core_cpi_ns

        total_cycles = core_time_ns * core.frequency_ghz
        ipc = self.n_instructions / total_cycles if total_cycles > 0 else 0.0

        return TraceSimulationResult(
            workload_name=workload.name,
            cache_kb=cache_kb,
            bandwidth_gbps=bandwidth_gbps,
            ipc=float(ipc),
            l1_miss_ratio=float(l1_miss_ratio),
            l2_miss_ratio_global=float(global_miss_ratio),
            mean_memory_latency_ns=float(channel.mean_latency_ns),
            achieved_bandwidth_gbps=float(channel.achieved_bandwidth_gbps),
            n_instructions=self.n_instructions,
            n_dram_requests=int(miss_indices.size),
            dram_row_hit_rate=(
                channel.row_hits / channel.n_requests if channel.n_requests else 0.0
            ),
        )
