"""Trace-driven machine: caches, DRAM channel and core coupled closed-loop.

This is the detailed counterpart of the analytic machine — the stand-in
for the MARSSx86 + DRAMSim2 stack of §5.1.  For one workload and one
(cache, bandwidth) allocation it:

1. synthesizes a reference trace from the workload's locality model,
2. runs it through the two-level set-associative LRU hierarchy,
3. replays execution on a closed-loop timing model: the core advances
   at its non-DRAM CPI between L2 misses, each miss is scheduled on the
   closed-page DRAM channel at the moment the core reaches it, and the
   core is charged the *measured* loaded latency amortized over its
   memory-level parallelism.

Because arrivals are paced by core progress, the loop is
self-stabilizing under bandwidth saturation: when the channel backs up,
the core slows, and the offered load settles at what the allocated
share can carry — the same operating point the analytic fixed point
finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cache import CacheHierarchy
from .dram import DramChannel
from .platform import PlatformConfig
from .trace import generate_trace

__all__ = ["TraceSimulationResult", "TraceMachine"]


@dataclass(frozen=True)
class TraceSimulationResult:
    """Everything measured by one trace-driven simulation."""

    workload_name: str
    cache_kb: float
    bandwidth_gbps: float
    ipc: float
    l1_miss_ratio: float
    l2_miss_ratio_global: float
    mean_memory_latency_ns: float
    achieved_bandwidth_gbps: float
    n_instructions: int
    n_dram_requests: int
    dram_row_hit_rate: float = 0.0


class TraceMachine:
    """Detailed trace-driven simulator for one platform.

    Parameters
    ----------
    platform:
        Geometry and timing (Table 1 defaults).
    n_instructions:
        Simulated instruction count per run.  The paper simulates 100M
        instructions per configuration on a cycle-accurate simulator;
        our synthetic workloads reach steady state much sooner, so the
        default is sized for sub-second runs while keeping sampling
        noise small.
    """

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        n_instructions: int = 400_000,
        warmup: bool = True,
    ):
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive, got {n_instructions}")
        self.platform = platform if platform is not None else PlatformConfig()
        self.n_instructions = n_instructions
        self.warmup = warmup

    def simulate(
        self,
        workload,
        cache_kb: float,
        bandwidth_gbps: float,
        seed: int = 12345,
    ) -> TraceSimulationResult:
        """Run one workload at one allocation; returns measured IPC etc."""
        if cache_kb <= 0 or bandwidth_gbps <= 0:
            raise ValueError(
                f"allocations must be positive, got cache={cache_kb} KB, "
                f"bandwidth={bandwidth_gbps} GB/s"
            )
        platform = self.platform.with_allocation(cache_kb, bandwidth_gbps)
        n_accesses = max(int(self.n_instructions * workload.refs_per_instr), 1)
        trace = generate_trace(workload.locality, n_accesses, seed=seed)

        hierarchy = CacheHierarchy(platform.l1, platform.l2)
        if self.warmup:
            # Checkpoint-style warm-up: pre-load the steady-state working
            # set (the most popular lines, up to L2 capacity) so a finite
            # trace measures warm behaviour, as the paper's 100M-ROI
            # simulations do.
            hierarchy.warm(workload.locality.top_lines(platform.l2.n_lines))
        miss_indices = hierarchy.dram_request_indices(trace)
        l1_stats = hierarchy.l1.stats
        l2_stats = hierarchy.l2.stats
        l1_miss_ratio = l1_stats.miss_ratio
        global_miss_ratio = l2_stats.misses / max(l1_stats.accesses, 1)

        # Non-DRAM CPI: core-limited base plus exposed L2-hit latency.
        core = platform.core
        l2_hits_per_instr = workload.refs_per_instr * l1_miss_ratio - (
            workload.refs_per_instr * global_miss_ratio
        )
        hit_cost_cpi = l2_hits_per_instr * platform.l2.latency_cycles * 0.3
        core_cpi = max(workload.base_cpi, 1.0 / core.issue_width) + hit_cost_cpi
        core_cpi_ns = core_cpi * core.cycle_ns

        # Closed-loop replay: walk the miss stream, advancing core time
        # by the instruction gap, issuing each miss when reached, and
        # charging measured latency amortized over MLP.
        channel = DramChannel(platform.dram)
        instr_of_miss = miss_indices / workload.refs_per_instr
        core_time_ns = 0.0
        instr_done = 0.0
        for access_index, instr_index in zip(miss_indices, instr_of_miss):
            core_time_ns += (instr_index - instr_done) * core_cpi_ns
            instr_done = instr_index
            done = channel.service(core_time_ns, int(trace[access_index]))
            core_time_ns += (done - core_time_ns) / workload.mlp
        core_time_ns += (self.n_instructions - instr_done) * core_cpi_ns

        total_cycles = core_time_ns * core.frequency_ghz
        ipc = self.n_instructions / total_cycles if total_cycles > 0 else 0.0

        return TraceSimulationResult(
            workload_name=workload.name,
            cache_kb=cache_kb,
            bandwidth_gbps=bandwidth_gbps,
            ipc=float(ipc),
            l1_miss_ratio=float(l1_miss_ratio),
            l2_miss_ratio_global=float(global_miss_ratio),
            mean_memory_latency_ns=float(channel.mean_latency_ns),
            achieved_bandwidth_gbps=float(channel.achieved_bandwidth_gbps),
            n_instructions=self.n_instructions,
            n_dram_requests=int(miss_indices.size),
            dram_row_hit_rate=(
                channel.row_hits / channel.n_requests if channel.n_requests else 0.0
            ),
        )
