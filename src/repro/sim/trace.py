"""Synthetic memory reference streams with controllable locality.

The paper profiles PARSEC / SPLASH-2x / Phoenix binaries; without those
traces we synthesize reference streams whose *locality structure* is the
tunable input.  A :class:`LocalityModel` mixes three components that
span the behaviours §5.3 discusses:

* a **hot working set** (uniform reuse over a small set of lines) —
  data that fits in cache captures "exploitable locality";
* a **Zipf-popular region** (power-law reuse over a large footprint) —
  produces the smooth diminishing returns of cache sizing;
* a **streaming** component (every access touches a fresh line) — the
  facesim/streamcluster-style behaviour where "increasing the cache
  size would only marginally increase performance".

The same model yields both a concrete address trace (consumed by the
set-associative cache simulator) and a closed-form LRU miss-ratio curve
via Che's approximation, so the trace-driven and analytic machines are
two views of one workload definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional

import numpy as np

__all__ = ["LocalityModel", "generate_trace"]

#: Virtual line-address regions for the three components, kept disjoint so
#: a trace's components never alias in the cache.
_HOT_BASE = 0
_ZIPF_BASE = 1 << 26
_STREAM_BASE = 1 << 28


@dataclass(frozen=True)
class LocalityModel:
    """A mixture locality model over cache-line addresses.

    Parameters
    ----------
    hot_weight, hot_lines:
        Probability mass and footprint (in 64-byte lines) of the
        uniformly re-referenced hot working set.
    zipf_weight, zipf_lines, zipf_exponent:
        Probability mass, footprint and skew of the power-law region
        (``P(line i) ~ i ** -zipf_exponent``).
    stream_weight:
        Probability that an access touches a never-before-seen line.

    Weights must be non-negative and sum to one.
    """

    hot_weight: float
    hot_lines: int
    zipf_weight: float
    zipf_lines: int
    zipf_exponent: float
    stream_weight: float

    def __post_init__(self) -> None:
        weights = (self.hot_weight, self.zipf_weight, self.stream_weight)
        if any(w < 0 for w in weights):
            raise ValueError(f"mixture weights must be non-negative: {weights}")
        if not np.isclose(sum(weights), 1.0, atol=1e-9):
            raise ValueError(f"mixture weights must sum to one, got {sum(weights)}")
        if self.hot_weight > 0 and self.hot_lines <= 0:
            raise ValueError("hot_lines must be positive when hot_weight > 0")
        if self.zipf_weight > 0 and self.zipf_lines <= 0:
            raise ValueError("zipf_lines must be positive when zipf_weight > 0")
        if self.zipf_weight > 0 and self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive when zipf_weight > 0")

    # ------------------------------------------------------------------
    # Popularity distribution (independent reference model)
    # ------------------------------------------------------------------

    @cached_property
    def _zipf_probabilities(self) -> np.ndarray:
        """Per-line probabilities of the Zipf component (sum to one)."""
        if self.zipf_weight == 0:
            return np.empty(0)
        ranks = np.arange(1, self.zipf_lines + 1, dtype=float)
        raw = ranks ** -self.zipf_exponent
        return raw / raw.sum()

    @cached_property
    def _zipf_cdf(self) -> np.ndarray:
        return np.cumsum(self._zipf_probabilities)

    @cached_property
    def _line_rates(self) -> np.ndarray:
        """Access rate of every *finite-footprint* line (hot then Zipf)."""
        rates = []
        if self.hot_weight > 0:
            rates.append(np.full(self.hot_lines, self.hot_weight / self.hot_lines))
        if self.zipf_weight > 0:
            rates.append(self.zipf_weight * self._zipf_probabilities)
        if not rates:
            return np.empty(0)
        return np.concatenate(rates)

    # ------------------------------------------------------------------
    # Analytic LRU miss ratio (Che's approximation)
    # ------------------------------------------------------------------

    def characteristic_time(self, cache_lines: int) -> float:
        """Che's characteristic time ``T`` for an LRU cache of given size.

        Solves ``sum_i (1 - exp(-rate_i * T)) + stream_weight * T = L``:
        the expected number of distinct reusable lines touched in a
        window of ``T`` accesses, plus the one-touch streaming lines that
        pollute the cache during the window, equals the cache size.
        """
        if cache_lines <= 0:
            raise ValueError(f"cache_lines must be positive, got {cache_lines}")
        rates = self._line_rates

        def occupancy(t: float) -> float:
            fill = self.stream_weight * t
            if rates.size:
                fill += float(np.sum(-np.expm1(-rates * t)))
            return fill - cache_lines

        max_fill = rates.size + (np.inf if self.stream_weight > 0 else 0.0)
        if max_fill <= cache_lines:
            return np.inf  # everything reusable fits; cache never evicts
        from scipy.optimize import brentq  # deferred: heavy import, cold paths skip it

        hi = 1.0
        while occupancy(hi) < 0:
            hi *= 2.0
            if hi > 1e15:
                return np.inf
        return float(brentq(occupancy, 0.0, hi, xtol=1e-9, rtol=1e-12))

    def miss_ratio(self, cache_lines: int) -> float:
        """Expected LRU miss ratio for a cache of ``cache_lines`` lines.

        Streaming accesses always miss; a reusable line of rate ``r``
        hits with probability ``1 - exp(-r * T)`` (Che's approximation).
        """
        t = self.characteristic_time(cache_lines)
        if np.isinf(t):
            return float(self.stream_weight)
        rates = self._line_rates
        hit = float(np.sum(rates * -np.expm1(-rates * t))) if rates.size else 0.0
        return float(np.clip(1.0 - hit, 0.0, 1.0))

    @property
    def footprint_lines(self) -> int:
        """Total reusable footprint (hot + Zipf lines)."""
        total = 0
        if self.hot_weight > 0:
            total += self.hot_lines
        if self.zipf_weight > 0:
            total += self.zipf_lines
        return total

    def top_lines(self, n: int) -> np.ndarray:
        """The ``n`` most frequently re-referenced line addresses.

        Used for checkpoint-style cache warm-up: an LRU cache in steady
        state holds (approximately) the most popular lines, so touching
        them before measurement removes the cold-start transient that a
        finite trace cannot amortize.  Returned most-popular-last so
        that sequential warm-up accesses leave the hottest lines MRU.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        rates: List[float] = []
        addresses: List[int] = []
        if self.hot_weight > 0:
            rates.extend([self.hot_weight / self.hot_lines] * self.hot_lines)
            addresses.extend(range(_HOT_BASE, _HOT_BASE + self.hot_lines))
        if self.zipf_weight > 0:
            zipf_rates = self.zipf_weight * self._zipf_probabilities
            rates.extend(zipf_rates.tolist())
            addresses.extend(range(_ZIPF_BASE, _ZIPF_BASE + self.zipf_lines))
        if not rates:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(np.asarray(rates))  # ascending: hottest last
        selected = np.asarray(addresses, dtype=np.int64)[order]
        return selected[-n:] if n < selected.size else selected

    # ------------------------------------------------------------------
    # Trace synthesis
    # ------------------------------------------------------------------

    def sample_lines(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` line addresses from the mixture (vectorized).

        Streaming addresses are monotonically increasing and never
        repeat; hot and Zipf addresses live in disjoint regions.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        component = rng.choice(
            3, size=n, p=[self.hot_weight, self.zipf_weight, self.stream_weight]
        )
        addresses = np.empty(n, dtype=np.int64)

        hot_mask = component == 0
        n_hot = int(hot_mask.sum())
        if n_hot:
            addresses[hot_mask] = _HOT_BASE + rng.integers(0, self.hot_lines, size=n_hot)

        zipf_mask = component == 1
        n_zipf = int(zipf_mask.sum())
        if n_zipf:
            uniform = rng.random(n_zipf)
            ranks = np.searchsorted(self._zipf_cdf, uniform, side="right")
            addresses[zipf_mask] = _ZIPF_BASE + ranks

        stream_mask = component == 2
        n_stream = int(stream_mask.sum())
        if n_stream:
            addresses[stream_mask] = _STREAM_BASE + np.arange(n_stream)

        return addresses


def generate_trace(
    model: LocalityModel,
    n_accesses: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Generate a line-address trace of ``n_accesses`` references.

    Parameters
    ----------
    model:
        The locality mixture to draw from.
    n_accesses:
        Trace length in memory references.
    seed / rng:
        Either a seed (constructs a fresh generator) or an existing
        generator; providing both is an error.
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    return model.sample_lines(n_accesses, rng)
