"""Third-resource extension: processor cores (§7 / future work).

The paper closes: "In future, the mechanism can support additional
resources, such as the number of processor cores."  The REF mechanism
is already R-resource; what is missing is a performance model in which
core count is elastic.  This module supplies it:

* parallel speedup follows **Amdahl's law** (the paper cites Hill &
  Marty's multicore Amdahl analysis as a canonical diminishing-returns
  effect): with parallel fraction ``f`` and ``n`` cores the throughput
  multiplier is ``S(n) = 1 / ((1 - f) + f / n)``;
* memory behaviour composes with the two-resource machine: aggregate
  DRAM demand scales with aggregate throughput, so cores, cache and
  bandwidth genuinely substitute for one another — exactly the regime
  Cobb-Douglas models.

Core allocations are treated as divisible (time-multiplexed), matching
the mechanism's divisible-resource assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from .analytic import AnalyticMachine
from .cpu import interval_ipc
from .dram import MAX_UTILIZATION, loaded_latency
from .platform import PlatformConfig

__all__ = ["ParallelWorkload", "amdahl_speedup", "ThreeResourceMachine"]

#: Fixed-point iteration parameters (same regime as repro.sim.cpu).
_MAX_ITERATIONS = 200
_TOLERANCE = 1e-10
_DAMPING = 0.5


def amdahl_speedup(parallel_fraction: float, cores: float) -> float:
    """Amdahl's-law throughput multiplier for a divisible core allocation.

    ``S(n) = 1 / ((1 - f) + f / n)`` — strictly increasing and concave
    in ``n``, saturating at ``1 / (1 - f)``.
    """
    if not 0 <= parallel_fraction < 1:
        raise ValueError(
            f"parallel_fraction must be in [0, 1), got {parallel_fraction}"
        )
    if cores <= 0:
        raise ValueError(f"cores must be positive, got {cores}")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / cores)


@dataclass(frozen=True)
class ParallelWorkload:
    """A base workload plus its exploitable parallelism.

    Wraps a two-resource :class:`~repro.workloads.spec.WorkloadSpec`
    with the Amdahl parallel fraction; all locality and intensity
    parameters are inherited from the base spec.
    """

    base: object
    parallel_fraction: float

    def __post_init__(self) -> None:
        if not 0 <= self.parallel_fraction < 1:
            raise ValueError(
                f"parallel_fraction must be in [0, 1), got {self.parallel_fraction}"
            )

    @property
    def name(self) -> str:
        return self.base.name


class ThreeResourceMachine:
    """IPC as a function of (cores, memory bandwidth, cache capacity).

    The fixed point extends :func:`repro.sim.cpu.solve_ipc`: per-core
    IPC comes from the interval model at the loaded memory latency;
    aggregate throughput is per-core IPC times the Amdahl multiplier;
    and the loaded latency depends on aggregate throughput through the
    bandwidth share's utilization.
    """

    def __init__(self, platform: PlatformConfig = None):
        self.platform = platform if platform is not None else PlatformConfig()
        self._two_resource = AnalyticMachine(self.platform)
        #: Default sweep grid for the cores dimension.
        self.cores_sweep: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)

    def ipc(
        self,
        workload: ParallelWorkload,
        cores: float,
        cache_kb: float,
        bandwidth_gbps: float,
    ) -> float:
        """Aggregate instructions per (reference-core) cycle."""
        if cores <= 0 or cache_kb <= 0 or bandwidth_gbps <= 0:
            raise ValueError(
                f"allocations must be positive, got cores={cores}, "
                f"cache={cache_kb} KB, bandwidth={bandwidth_gbps} GB/s"
            )
        profile = self._two_resource.memory_profile(workload.base, cache_kb)
        core_cfg = self.platform.core
        dram = replace(self.platform.dram, bandwidth_gbps=float(bandwidth_gbps))
        speedup = amdahl_speedup(workload.parallel_fraction, cores)

        aggregate = speedup * interval_ipc(
            profile, core_cfg.ns_to_cycles(dram.access_ns), core_cfg
        )
        for _ in range(_MAX_ITERATIONS):
            demand = (
                aggregate * profile.l2_misses_per_instr * dram.line_bytes
                * core_cfg.frequency_ghz
            )
            latency_cycles = core_cfg.ns_to_cycles(
                loaded_latency(dram, demand / dram.bandwidth_gbps)
            )
            per_core = interval_ipc(profile, latency_cycles, core_cfg)
            next_aggregate = min(
                speedup * per_core, self._bandwidth_bound(profile, dram)
            )
            updated = aggregate + _DAMPING * (next_aggregate - aggregate)
            if abs(updated - aggregate) <= _TOLERANCE:
                aggregate = updated
                break
            aggregate = updated
        return float(aggregate)

    def _bandwidth_bound(self, profile, dram) -> float:
        bytes_per_instr = profile.l2_misses_per_instr * dram.line_bytes
        if bytes_per_instr == 0:
            return float("inf")
        return (
            MAX_UTILIZATION * dram.bandwidth_gbps
            / (bytes_per_instr * self.platform.core.frequency_ghz)
        )

    def sweep(
        self,
        workload: ParallelWorkload,
        cores: Sequence[float] = None,
        bandwidths_gbps: Sequence[float] = None,
        cache_sizes_kb: Sequence[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Throughput over the (cores x bandwidth x cache) grid.

        Returns ``(allocations, ipc)`` where each allocation row is
        ``(cores, bandwidth_gbps, cache_kb)`` — ready for
        :func:`repro.core.fitting.fit_cobb_douglas` with three
        resources.
        """
        if cores is None:
            cores = self.cores_sweep
        if bandwidths_gbps is None:
            bandwidths_gbps = self.platform.bandwidth_sweep_gbps
        if cache_sizes_kb is None:
            cache_sizes_kb = self.platform.l2_sweep_kb
        points: List[Tuple[float, float, float]] = [
            (float(n), float(bw), float(kb))
            for n in cores
            for bw in bandwidths_gbps
            for kb in cache_sizes_kb
        ]
        ipc = np.array([self.ipc(workload, n, kb, bw) for n, bw, kb in points])
        return np.asarray(points), ipc
