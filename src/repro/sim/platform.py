"""Simulated platform configuration (Table 1).

The paper characterizes application sensitivity by simulating 25
architectures: five L2 (last-level) cache sizes crossed with five DRAM
bandwidths, on a 3 GHz 4-wide out-of-order core with a 32 KB L1.  This
module captures those parameters and the sweep grid; the simulators in
:mod:`repro.sim` consume a :class:`PlatformConfig`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterator, List, Tuple

__all__ = ["CacheConfig", "DramConfig", "CoreConfig", "PlatformConfig", "TABLE1_PLATFORM"]

#: Cache line size used throughout the hierarchy (bytes).
LINE_BYTES = 64


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache level.

    Table 1: L1 is 32 KB, 4-way, 64-byte blocks, 2-cycle latency; the L2
    sweeps [128 KB .. 2 MB] at 8-way, 64-byte blocks, 20-cycle latency.
    """

    size_kb: int
    ways: int
    line_bytes: int = LINE_BYTES
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_kb <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError(f"cache parameters must be positive: {self}")
        if self.n_lines % self.ways != 0:
            raise ValueError(
                f"cache of {self.n_lines} lines is not divisible into {self.ways} ways"
            )

    @property
    def n_lines(self) -> int:
        return self.size_kb * 1024 // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.ways


@dataclass(frozen=True)
class DramConfig:
    """DRAM channel parameters (Table 1: closed-page, rank/bank RR).

    ``bandwidth_gbps`` is the allocatable knob the mechanism divides: a
    guaranteed *share* of the physical channel (``channel_gbps``),
    enforced the way §4.4 enforces shares — by pacing a user's requests
    (weighted fair queueing).  Individual line transfers therefore
    always move at channel speed; what an allocation changes is the
    sustained rate, and hence the queueing delay once the user's demand
    approaches her share.

    Timing parameters are representative DDR3-era values in
    nanoseconds; the evaluation only depends on their relative effect
    (queueing grows as the allocated share saturates).
    """

    bandwidth_gbps: float
    channel_gbps: float = 12.8
    n_channels: int = 1
    n_ranks: int = 2
    n_banks: int = 8
    t_rcd_ns: float = 13.5
    t_cl_ns: float = 13.5
    t_rp_ns: float = 13.5
    line_bytes: int = LINE_BYTES
    page_policy: str = "closed"
    row_lines: int = 128

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.channel_gbps <= 0:
            raise ValueError(f"channel bandwidth must be positive, got {self.channel_gbps}")
        if self.n_channels <= 0:
            raise ValueError(f"channel count must be positive, got {self.n_channels}")
        if self.n_ranks <= 0 or self.n_banks <= 0:
            raise ValueError(f"ranks and banks must be positive: {self}")
        if self.page_policy not in ("closed", "open"):
            raise ValueError(
                f"page_policy must be 'closed' or 'open', got {self.page_policy!r}"
            )
        if self.row_lines <= 0:
            raise ValueError(f"row_lines must be positive, got {self.row_lines}")

    @property
    def per_channel_gbps(self) -> float:
        """One channel's physical rate; never below its slice of the share."""
        return max(self.channel_gbps, self.bandwidth_gbps / self.n_channels)

    @property
    def effective_channel_gbps(self) -> float:
        """Aggregate physical rate (all channels); never below the share."""
        return self.per_channel_gbps * self.n_channels

    @property
    def burst_ns(self) -> float:
        """Data-bus occupancy of one line transfer on its channel."""
        return self.line_bytes / self.per_channel_gbps

    @property
    def service_ns(self) -> float:
        """Pacing interval of the allocated share: one line per this time.

        This is the M/D/1 service time the queueing model uses — the
        reciprocal of the user's sustained line rate.
        """
        return self.line_bytes / self.bandwidth_gbps

    @property
    def access_ns(self) -> float:
        """Unloaded closed-page access latency: activate + CAS + burst."""
        return self.t_rcd_ns + self.t_cl_ns + self.burst_ns

    @property
    def cycle_ns(self) -> float:
        """Bank-occupancy (row-cycle) time of one closed-page access."""
        return self.t_rcd_ns + self.t_cl_ns + self.burst_ns + self.t_rp_ns


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 1: 3 GHz, 4-wide)."""

    frequency_ghz: float = 3.0
    issue_width: int = 4

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.issue_width <= 0:
            raise ValueError(f"core parameters must be positive: {self}")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.frequency_ghz


@dataclass(frozen=True)
class PlatformConfig:
    """The full simulated platform plus the Table 1 sweep grids."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_kb=32, ways=4, latency_cycles=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_kb=2048, ways=8, latency_cycles=20)
    )
    dram: DramConfig = field(default_factory=lambda: DramConfig(bandwidth_gbps=12.8))
    l2_sweep_kb: Tuple[int, ...] = (128, 256, 512, 1024, 2048)
    bandwidth_sweep_gbps: Tuple[float, ...] = (0.8, 1.6, 3.2, 6.4, 12.8)

    def with_allocation(self, cache_kb: float, bandwidth_gbps: float) -> "PlatformConfig":
        """Platform seen by one agent given her (cache, bandwidth) slice.

        Cache capacity is rounded down to a whole number of ways' worth
        of sets (way-partitioning granularity is handled by
        :mod:`repro.sched.partition`; here we accept fractional KB and
        round to an integer line count inside the cache model).
        """
        l2 = replace(self.l2, size_kb=max(int(round(cache_kb)), 1))
        dram = replace(self.dram, bandwidth_gbps=float(bandwidth_gbps))
        return replace(self, l2=l2, dram=dram)

    def sweep(self) -> Iterator[Tuple[float, float]]:
        """The 25 (bandwidth GB/s, cache KB) points of Table 1.

        Iterates bandwidth-major to match the x-axis ordering of
        Figs. 8b/8c: ``(0.8, 128), (0.8, 256), ... (12.8, 2048)``.
        """
        for bandwidth in self.bandwidth_sweep_gbps:
            for cache_kb in self.l2_sweep_kb:
                yield bandwidth, float(cache_kb)

    def sweep_points(self) -> List[Tuple[float, float]]:
        """The sweep as a list (bandwidth GB/s, cache KB)."""
        return list(self.sweep())

    def fingerprint(self) -> Dict:
        """Stable, JSON-serializable identity of every platform parameter.

        Used to key the on-disk profile cache: any change to the core,
        cache hierarchy, DRAM timing or sweep grids yields a different
        fingerprint and therefore a cache miss.
        """
        return asdict(self)


#: The paper's Table 1 platform with default (maximum) L2 and bandwidth.
TABLE1_PLATFORM = PlatformConfig()
