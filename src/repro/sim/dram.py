"""DRAM channel model: event-driven controller plus analytic queueing.

Substitutes for DRAMSim2 (Table 1: closed-page policy, a queue per
rank, rank-then-bank round-robin scheduling).  Two views are provided:

* :class:`DramSimulator` — an event-driven controller.  Requests carry
  arrival timestamps; the scheduler issues them respecting per-bank
  row-cycle occupancy and the shared data bus, picking among ready
  requests in rank-then-bank round-robin order.  Reports per-request
  latency and achieved bandwidth.
* :func:`loaded_latency` — the closed-form M/D/1-style latency curve
  used by the fast analytic machine: unloaded access time plus a
  queueing term that diverges as channel utilization approaches one.

Both views agree on the essential behaviour that makes IPC *elastic in
allocated bandwidth*: memory latency grows super-linearly as a
workload's demand approaches its bandwidth allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .platform import DramConfig

__all__ = [
    "DramChannel",
    "DramRequest",
    "DramResult",
    "DramSimulator",
    "loaded_latency",
    "MAX_UTILIZATION",
]

#: Utilization ceiling for the analytic model; queueing theory diverges at
#: 1.0 and real closed-page controllers saturate below it due to bank and
#: bus overheads.
MAX_UTILIZATION = 0.96


@dataclass(frozen=True)
class DramRequest:
    """One cache-line read request presented to the controller."""

    arrival_ns: float
    line_address: int

    def bank_of(self, n_ranks: int, n_banks: int, n_channels: int = 1) -> int:
        """Flat bank index: lines interleave over channels, then banks."""
        banks_per_channel = n_ranks * n_banks
        channel = self.line_address % n_channels
        return channel * banks_per_channel + (
            (self.line_address // n_channels) % banks_per_channel
        )


@dataclass(frozen=True)
class DramResult:
    """Aggregate outcome of simulating a request stream."""

    latencies_ns: np.ndarray
    completion_ns: float
    n_requests: int
    bytes_transferred: int

    @property
    def mean_latency_ns(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return float(self.latencies_ns.mean())

    @property
    def achieved_bandwidth_gbps(self) -> float:
        """Delivered bandwidth in GB/s (bytes / ns happens to equal GB/s)."""
        if self.completion_ns <= 0:
            return 0.0
        return self.bytes_transferred / self.completion_ns


class DramSimulator:
    """Event-driven closed-page DRAM controller (one channel).

    Scheduling model: a request may issue when its bank's previous
    row-cycle has finished and the shared data bus is free for its
    burst.  Among simultaneously-ready requests the controller walks
    ranks round-robin, then banks within the rank — the Table 1 policy.
    """

    def __init__(self, config: DramConfig):
        self.config = config
        self._rr_pointer = 0

    def simulate(self, requests: Sequence[DramRequest]) -> DramResult:
        """Schedule all requests; returns latency and bandwidth statistics.

        Requests must be given in arrival order.  Each closed-page
        access occupies its bank for the full row cycle
        (tRCD + tCL + burst + tRP) and the data bus for its burst.
        """
        config = self.config
        n_banks_total = config.n_channels * config.n_ranks * config.n_banks
        bank_free = np.zeros(n_banks_total)
        bus_free = [0.0] * config.n_channels
        pace_free = 0.0
        latencies: List[float] = []
        completion = 0.0

        pending: List[DramRequest] = sorted(requests, key=lambda r: r.arrival_ns)
        index = 0
        ready: List[DramRequest] = []
        now = 0.0
        while index < len(pending) or ready:
            if not ready:
                # Jump to the next arrival.
                now = max(now, pending[index].arrival_ns)
            while index < len(pending) and pending[index].arrival_ns <= now:
                ready.append(pending[index])
                index += 1
            chosen = self._pick_round_robin(ready, now, bank_free)
            if chosen is None:
                # All ready banks busy: advance to the earliest event.
                events = [
                    bank_free[r.bank_of(config.n_ranks, config.n_banks, config.n_channels)]
                    for r in ready
                ]
                if index < len(pending):
                    events.append(pending[index].arrival_ns)
                future = [t for t in events if t > now]
                now = min(future) if future else now + config.cycle_ns
                continue
            ready.remove(chosen)
            bank = chosen.bank_of(config.n_ranks, config.n_banks, config.n_channels)
            channel = chosen.line_address % config.n_channels
            start = max(now, chosen.arrival_ns, bank_free[bank])
            # The burst moves at channel speed once granted; the grant
            # itself is paced at the allocated share (WFQ enforcement),
            # so consecutive grants are at least service_ns apart.
            data_start = max(
                start + config.t_rcd_ns + config.t_cl_ns, bus_free[channel], pace_free
            )
            data_done = data_start + config.burst_ns
            bus_free[channel] = data_done
            pace_free = data_start + config.service_ns
            bank_free[bank] = data_done + config.t_rp_ns
            latencies.append(data_done - chosen.arrival_ns)
            completion = max(completion, data_done)
            now = max(now, start)

        return DramResult(
            latencies_ns=np.asarray(latencies),
            completion_ns=completion,
            n_requests=len(latencies),
            bytes_transferred=len(latencies) * config.line_bytes,
        )

    def _pick_round_robin(
        self, ready: List[DramRequest], now: float, bank_free: np.ndarray
    ):
        """Rank-then-bank round-robin choice among ready requests.

        Walks bank indices starting at the rotating pointer in
        rank-major order and returns the first ready request whose bank
        is free at ``now``; ``None`` if every ready request's bank is
        busy.
        """
        if not ready:
            return None
        config = self.config
        n_total = config.n_channels * config.n_ranks * config.n_banks
        by_bank = {}
        for request in ready:
            bank = request.bank_of(config.n_ranks, config.n_banks, config.n_channels)
            # FIFO within a bank: keep the earliest arrival.
            if bank not in by_bank or request.arrival_ns < by_bank[bank].arrival_ns:
                by_bank[bank] = request
        for step in range(n_total):
            bank = (self._rr_pointer + step) % n_total
            if bank in by_bank and bank_free[bank] <= now:
                self._rr_pointer = (bank + 1) % n_total
                return by_bank[bank]
        return None


class DramChannel:
    """Stateful single-request interface for closed-loop simulation.

    The trace-driven machine issues one request at a time as the core
    reaches each miss; the channel applies the same bank/bus timing as
    :class:`DramSimulator` (bank occupancy, WFQ-paced bursts) and
    returns the completion time.

    Both page policies of the config are honoured:

    * **closed** (Table 1's policy): every access pays activate + CAS
      and the bank auto-precharges afterwards;
    * **open**: the row buffer stays open — a subsequent access to the
      same row pays CAS only (a *row hit*), while a different row pays
      precharge + activate + CAS (a *row conflict*).  Streaming access
      patterns become markedly cheaper; scattered patterns costlier.
    """

    def __init__(self, config: DramConfig):
        self.config = config
        n_banks = config.n_channels * config.n_ranks * config.n_banks
        self._bank_free = [0.0] * n_banks
        self._open_row = [None] * n_banks
        self._bus_free = [0.0] * config.n_channels
        self._pace_free = 0.0
        self.n_requests = 0
        self.row_hits = 0
        self.total_latency_ns = 0.0
        self.last_completion_ns = 0.0
        # service() runs once per L2 miss on the replay hot path; cache
        # the derived per-request constants instead of recomputing the
        # config properties every call (values are identical floats).
        self._burst_ns = config.burst_ns
        self._service_ns = config.service_ns
        self._closed = config.page_policy == "closed"
        self._closed_latency_ns = config.t_rcd_ns + config.t_cl_ns
        self._banks_per_channel = config.n_ranks * config.n_banks

    def _core_latency(self, bank: int, row: int) -> float:
        """Pre-burst latency under the configured page policy."""
        config = self.config
        if self._closed:
            return self._closed_latency_ns
        if self._open_row[bank] == row:
            self.row_hits += 1
            return config.t_cl_ns
        if self._open_row[bank] is None:
            return self._closed_latency_ns
        return config.t_rp_ns + config.t_rcd_ns + config.t_cl_ns

    def service(self, issue_ns: float, line_address: int) -> float:
        """Schedule one request issued at ``issue_ns``; returns completion.

        Lines interleave across channels; each channel has its own data
        bus and banks, while the WFQ pacing token bucket (the allocated
        share) is global.
        """
        config = self.config
        channel = line_address % config.n_channels
        banks_per_channel = self._banks_per_channel
        bank = channel * banks_per_channel + (
            (line_address // config.n_channels) % banks_per_channel
        )
        row = line_address // (config.n_channels * banks_per_channel * config.row_lines)
        start = max(issue_ns, self._bank_free[bank])
        data_start = max(
            start + self._core_latency(bank, row),
            self._bus_free[channel],
            self._pace_free,
        )
        done = data_start + self._burst_ns
        self._bus_free[channel] = done
        self._pace_free = data_start + self._service_ns
        if self._closed:
            self._bank_free[bank] = done + config.t_rp_ns
            self._open_row[bank] = None
        else:
            self._bank_free[bank] = done
            self._open_row[bank] = row
        self.n_requests += 1
        self.total_latency_ns += done - issue_ns
        self.last_completion_ns = max(self.last_completion_ns, done)
        return done

    @property
    def mean_latency_ns(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.total_latency_ns / self.n_requests

    @property
    def achieved_bandwidth_gbps(self) -> float:
        if self.last_completion_ns <= 0:
            return 0.0
        return self.n_requests * self.config.line_bytes / self.last_completion_ns


def loaded_latency(config: DramConfig, utilization: float) -> float:
    """Analytic loaded memory latency (ns) at a given channel utilization.

    Unloaded closed-page access time plus an M/D/1 queueing term

        W = rho / (2 * (1 - rho)) * service_time

    with the utilization clamped to :data:`MAX_UTILIZATION`.  This is
    the curve the fast analytic machine uses; the event-driven simulator
    reproduces its shape empirically.
    """
    if utilization < 0:
        raise ValueError(f"utilization must be non-negative, got {utilization}")
    rho = min(utilization, MAX_UTILIZATION)
    service = config.service_ns
    # M/D/c flavour: with c interleaved channels the expected wait of a
    # single-server queue at the same utilization shrinks by ~1/c.
    queueing = rho / (2.0 * (1.0 - rho)) * service / config.n_channels
    return config.access_ns + queueing
