"""Named benchmark specifications (PARSEC, SPLASH-2x, Phoenix).

The paper evaluates 24 PARSEC/SPLASH-2x benchmarks plus four Phoenix
MapReduce applications (§5.1).  Each entry below is a synthetic stand-in
whose locality mixture and memory intensity are calibrated so the full
pipeline — machine model -> 5x5 Table-1 sweep -> Cobb-Douglas fit ->
re-scaled elasticities — reproduces the benchmark's published resource
preference (Fig. 9) and C/M group (Table 2).

Parametrization.  Real workloads satisfy the vast majority of their
references from an L1-resident hot set; what distinguishes them is the
*post-L1* reference stream.  Each spec is therefore described by:

* ``refs`` — L1 references per instruction (realistic 0.2-0.4),
* ``p``    — the post-L1 probability mass (sets DRAM intensity),
* ``s``    — the streaming share of that mass (sets the C-vs-M balance:
  cache-reusable Zipf mass versus never-reused streaming mass),
* the hot/Zipf footprints and skew, base CPI and MLP.

``p`` and ``s`` were calibrated by bisection against the target
re-scaled cache elasticities read off Fig. 9 (see DESIGN.md).  Group
assignments follow Table 2, whose workload-mix C/M counts uniquely
determine every member's class (including the ``streamcluster``
prose/table inconsistency documented in DESIGN.md).

Two benchmarks (``radiosity``, ``string_match``) are modeled with
near-flat IPC surfaces: the paper singles them out as low-R² fits with
"negligible variance and no trend for Cobb-Douglas to capture".
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.trace import LocalityModel
from .spec import WorkloadSpec

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "get_workload",
    "workloads_by_group",
]


def _spec(
    name: str,
    suite: str,
    group: str,
    refs: float,
    p: float,
    s: float,
    hot_lines: int,
    zipf_lines: int,
    zipf_exp: float,
    base_cpi: float,
    mlp: float,
) -> WorkloadSpec:
    """Build a spec from the (refs, p, s) parametrization.

    The mixture weights are derived so they sum to one exactly:
    ``hot = 1 - p``, ``zipf = p * (1 - s)``, ``stream = p - zipf``.
    """
    zipf_weight = p * (1.0 - s)
    locality = LocalityModel(
        hot_weight=1.0 - p,
        hot_lines=hot_lines,
        zipf_weight=zipf_weight,
        zipf_lines=zipf_lines,
        zipf_exponent=zipf_exp,
        stream_weight=p - zipf_weight,
    )
    return WorkloadSpec(
        name=name,
        locality=locality,
        refs_per_instr=refs,
        base_cpi=base_cpi,
        mlp=mlp,
        suite=suite,
        expected_group=group,
    )


# ---------------------------------------------------------------------------
# Group C: cache-capacity-loving workloads (re-scaled a_cache > 0.5),
# ordered by decreasing cache elasticity as in Fig. 9.
# Columns: refs | p (post-L1 mass) | s (stream share) | hot lines
#          | zipf lines | zipf exp | base CPI | MLP
# ---------------------------------------------------------------------------
_GROUP_C: List[WorkloadSpec] = [
    _spec("raytrace", "SPLASH-2x", "C", 0.28, 0.00188, 0.020, 420, 30_000, 0.35, 0.60, 1.6),
    _spec("water_spatial", "SPLASH-2x", "C", 0.24, 0.00298, 0.020, 400, 26_000, 0.40, 0.55, 1.6),
    _spec("histogram", "Phoenix", "C", 0.33, 0.00280, 0.020, 340, 24_000, 0.40, 0.55, 1.8),
    _spec("lu_ncb", "SPLASH-2x", "C", 0.27, 0.00397, 0.020, 400, 28_000, 0.45, 0.60, 1.8),
    _spec("linear_regression", "Phoenix", "C", 0.31, 0.00482, 0.020, 300, 20_000, 0.45, 0.50, 1.8),
    _spec("freqmine", "PARSEC", "C", 0.26, 0.00777, 0.020, 460, 24_000, 0.50, 0.65, 1.7),
    _spec("water_nsquared", "SPLASH-2x", "C", 0.22, 0.01183, 0.020, 400, 18_000, 0.50, 0.55, 1.7),
    _spec("bodytrack", "PARSEC", "C", 0.25, 0.01413, 0.020, 380, 16_000, 0.50, 0.60, 1.9),
    _spec("radiosity", "SPLASH-2x", "C", 0.18, 0.00500, 0.300, 300, 6_000, 0.60, 0.85, 2.0),
    _spec("word_count", "Phoenix", "C", 0.30, 0.01437, 0.020, 330, 18_000, 0.55, 0.55, 2.0),
    _spec("cholesky", "SPLASH-2x", "C", 0.26, 0.01454, 0.020, 400, 24_000, 0.55, 0.60, 2.0),
    _spec("volrend", "SPLASH-2x", "C", 0.24, 0.04500, 0.069, 420, 14_000, 0.55, 0.65, 2.0),
    _spec("swaptions", "PARSEC", "C", 0.20, 0.03500, 0.116, 320, 12_000, 0.55, 0.50, 2.0),
    _spec("fmm", "SPLASH-2x", "C", 0.28, 0.05000, 0.048, 400, 20_000, 0.60, 0.60, 2.1),
    _spec("barnes", "SPLASH-2x", "C", 0.30, 0.05500, 0.039, 380, 22_000, 0.60, 0.60, 2.1),
    _spec("ferret", "PARSEC", "C", 0.34, 0.06000, 0.062, 420, 20_000, 0.60, 0.55, 2.2),
    _spec("x264", "PARSEC", "C", 0.32, 0.06000, 0.092, 360, 16_000, 0.60, 0.55, 2.3),
    _spec("blackscholes", "PARSEC", "C", 0.17, 0.03000, 0.219, 280, 9_000, 0.60, 0.48, 2.0),
    _spec("fft", "SPLASH-2x", "C", 0.33, 0.06500, 0.053, 400, 24_000, 0.65, 0.55, 2.4),
    _spec("streamcluster", "PARSEC", "C", 0.36, 0.07000, 0.078, 420, 20_000, 0.65, 0.55, 2.5),
]

# ---------------------------------------------------------------------------
# Group M: memory-bandwidth-loving workloads (re-scaled a_mem > 0.5).
# Heavy post-L1 intensity with large streaming shares: extra cache is of
# limited use while DRAM pressure makes bandwidth precious.
# ---------------------------------------------------------------------------
_GROUP_M: List[WorkloadSpec] = [
    _spec("canneal", "PARSEC", "M", 0.30, 0.130, 0.174, 340, 32_000, 0.45, 0.70, 2.8),
    _spec("rtview", "PARSEC", "M", 0.28, 0.110, 0.137, 380, 32_000, 0.50, 0.70, 2.8),
    _spec("lu_cb", "SPLASH-2x", "M", 0.30, 0.130, 0.152, 400, 30_000, 0.45, 0.65, 3.0),
    _spec("fluidanimate", "PARSEC", "M", 0.32, 0.150, 0.208, 340, 30_000, 0.45, 0.65, 3.0),
    _spec("facesim", "PARSEC", "M", 0.36, 0.180, 0.282, 320, 28_000, 0.40, 0.70, 3.2),
    _spec("dedup", "PARSEC", "M", 0.38, 0.200, 0.341, 320, 26_000, 0.40, 0.65, 3.2),
    _spec("string_match", "Phoenix", "M", 0.20, 0.012, 0.685, 200, 10_000, 0.50, 0.90, 2.5),
    _spec("ocean_cp", "SPLASH-2x", "M", 0.40, 0.240, 0.515, 300, 24_000, 0.35, 0.70, 3.4),
]

#: All 28 benchmarks keyed by name, cache-elastic first (Fig. 9 order).
BENCHMARKS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _GROUP_C + _GROUP_M}

#: Canonical plotting/reporting order (matches Fig. 9's x-axis direction).
BENCHMARK_ORDER: List[str] = list(BENCHMARKS)


def get_workload(name: str) -> WorkloadSpec:
    """Look up one benchmark spec by name.

    Raises
    ------
    KeyError
        With the list of valid names when the benchmark is unknown.
    """
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known benchmarks: {', '.join(BENCHMARKS)}"
        ) from None


def workloads_by_group(group: str) -> List[WorkloadSpec]:
    """All benchmarks the paper assigns to group ``"C"`` or ``"M"``."""
    if group not in ("C", "M"):
        raise ValueError(f"group must be 'C' or 'M', got {group!r}")
    return [spec for spec in BENCHMARKS.values() if spec.expected_group == group]
