"""Building allocation problems from workload mixes (Figs. 10-14 setups).

Glue between the workload/profiling substrate and the core mechanism:
profile every member of a Table 2 mix, fit utilities, and assemble the
:class:`~repro.core.mechanism.AllocationProblem` the mechanisms consume.

Default system capacities follow the paper's chip-multiprocessor
example (§5.4): a four-core system shares 24 GB/s of memory bandwidth
and 12 MB of last-level cache; the eight-core system doubles both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..core.fitting import CobbDouglasFit
from ..core.mechanism import Agent, AllocationProblem
from .mixes import WorkloadMix, get_mix

if TYPE_CHECKING:  # pragma: no cover — import cycle broken at runtime
    from ..profiling.offline import OfflineProfiler

__all__ = [
    "FOUR_CORE_CAPACITIES",
    "EIGHT_CORE_CAPACITIES",
    "RESOURCE_NAMES",
    "default_capacities",
    "problem_from_fits",
    "build_mix_problem",
]

#: (memory bandwidth GB/s, cache KB) shared by four cores (§5.4).
FOUR_CORE_CAPACITIES: Tuple[float, float] = (24.0, 12.0 * 1024)

#: (memory bandwidth GB/s, cache KB) shared by eight cores.
EIGHT_CORE_CAPACITIES: Tuple[float, float] = (48.0, 24.0 * 1024)

#: Resource labels used throughout the evaluation.
RESOURCE_NAMES: Tuple[str, str] = ("membw_gbps", "cache_kb")


def default_capacities(n_agents: int) -> Tuple[float, float]:
    """System capacities scaled to the core count (6 GB/s + 3 MB per core)."""
    if n_agents <= 0:
        raise ValueError(f"n_agents must be positive, got {n_agents}")
    per_core_bw, per_core_kb = (
        FOUR_CORE_CAPACITIES[0] / 4.0,
        FOUR_CORE_CAPACITIES[1] / 4.0,
    )
    return per_core_bw * n_agents, per_core_kb * n_agents


def problem_from_fits(
    mix: WorkloadMix,
    fits: Dict[str, CobbDouglasFit],
    capacities: Optional[Tuple[float, float]] = None,
) -> AllocationProblem:
    """Assemble the allocation problem for a mix from fitted utilities.

    Parameters
    ----------
    mix:
        The Table 2 mix; duplicated members become distinct agents
        (``word_count``, ``word_count#2``, ...) sharing one utility.
    fits:
        Fitted utilities keyed by benchmark name; must cover the mix.
    capacities:
        (bandwidth GB/s, cache KB); defaults by mix size.
    """
    missing = [m for m in set(mix.members) if m not in fits]
    if missing:
        raise KeyError(f"mix {mix.name} needs fits for: {sorted(missing)}")
    if capacities is None:
        capacities = default_capacities(mix.n_agents)
    agents = [
        Agent(name=agent_name, utility=fits[member].utility)
        for agent_name, member in zip(mix.agent_names(), mix.members)
    ]
    return AllocationProblem(agents, capacities, RESOURCE_NAMES)


def build_mix_problem(
    mix_name: str,
    profiler: Optional["OfflineProfiler"] = None,
    capacities: Optional[Tuple[float, float]] = None,
) -> AllocationProblem:
    """Profile, fit and assemble one Table 2 mix end to end."""
    # Imported here: profiling depends on workloads (specs), so the
    # package-level import would be circular.
    from ..profiling.offline import OfflineProfiler

    mix = get_mix(mix_name)
    if profiler is None:
        profiler = OfflineProfiler()
    fits = {member: profiler.fit(workload) for member, workload in
            zip(mix.members, mix.workloads())}
    return problem_from_fits(mix, fits, capacities)
