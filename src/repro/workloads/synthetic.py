"""Constructors for custom workload specs (beyond the named suite).

Downstream users rarely want exactly our 28 calibrated benchmarks; they
want "a streaming thing", "a cache-resident thing", or "twenty random
tenants".  These helpers build valid :class:`WorkloadSpec` objects from
the same (refs, p, s) parametrization the suite uses
(see docs/workloads.md).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.trace import LocalityModel
from .spec import WorkloadSpec

__all__ = [
    "make_workload",
    "make_cache_resident",
    "make_streaming",
    "make_balanced",
    "random_workload",
]


def make_workload(
    name: str,
    refs_per_instr: float = 0.3,
    post_l1_mass: float = 0.03,
    stream_share: float = 0.1,
    hot_lines: int = 400,
    zipf_lines: int = 20_000,
    zipf_exponent: float = 0.5,
    base_cpi: float = 0.6,
    mlp: float = 2.0,
    expected_group: Optional[str] = None,
) -> WorkloadSpec:
    """Build a spec from the (refs, p, s) parametrization.

    Parameters
    ----------
    post_l1_mass:
        Fraction of references escaping the hot set (``p``): sets DRAM
        intensity and hence bandwidth elasticity.
    stream_share:
        Streaming share of the escaping mass (``s``): the cache-vs-
        bandwidth balance knob.
    """
    if not 0 < post_l1_mass < 1:
        raise ValueError(f"post_l1_mass must be in (0, 1), got {post_l1_mass}")
    if not 0 <= stream_share <= 1:
        raise ValueError(f"stream_share must be in [0, 1], got {stream_share}")
    zipf_weight = post_l1_mass * (1.0 - stream_share)
    locality = LocalityModel(
        hot_weight=1.0 - post_l1_mass,
        hot_lines=hot_lines,
        zipf_weight=zipf_weight,
        zipf_lines=zipf_lines,
        zipf_exponent=zipf_exponent,
        stream_weight=post_l1_mass - zipf_weight,
    )
    return WorkloadSpec(
        name=name,
        locality=locality,
        refs_per_instr=refs_per_instr,
        base_cpi=base_cpi,
        mlp=mlp,
        suite="custom",
        expected_group=expected_group,
    )


def make_cache_resident(name: str, intensity: float = 0.005) -> WorkloadSpec:
    """A strongly cache-elastic tenant (raytrace-like).

    ``intensity`` is the post-L1 mass; keep it small so bandwidth
    pressure stays low and cache dominates the fitted elasticities.
    """
    return make_workload(
        name,
        refs_per_instr=0.28,
        post_l1_mass=intensity,
        stream_share=0.02,
        zipf_lines=28_000,
        zipf_exponent=0.4,
        base_cpi=0.6,
        mlp=1.8,
        expected_group="C",
    )


def make_streaming(name: str, intensity: float = 0.2) -> WorkloadSpec:
    """A strongly bandwidth-elastic tenant (ocean_cp-like)."""
    return make_workload(
        name,
        refs_per_instr=0.38,
        post_l1_mass=intensity,
        stream_share=0.5,
        zipf_lines=24_000,
        zipf_exponent=0.4,
        base_cpi=0.7,
        mlp=3.2,
        expected_group="M",
    )


def make_balanced(name: str) -> WorkloadSpec:
    """A tenant near the C/M boundary (streamcluster-like)."""
    return make_workload(
        name,
        refs_per_instr=0.36,
        post_l1_mass=0.07,
        stream_share=0.08,
        zipf_lines=20_000,
        zipf_exponent=0.65,
        base_cpi=0.55,
        mlp=2.5,
    )


def random_workload(name: str, seed: int) -> WorkloadSpec:
    """A random tenant spanning the calibrated suite's parameter ranges.

    Deterministic per (name-independent) seed; useful for scale tests
    and fuzzing the allocation pipeline.
    """
    rng = np.random.default_rng(seed)
    return make_workload(
        name,
        refs_per_instr=float(rng.uniform(0.18, 0.40)),
        post_l1_mass=float(rng.uniform(0.003, 0.2)),
        stream_share=float(rng.uniform(0.02, 0.6)),
        hot_lines=int(rng.integers(160, 460)),
        zipf_lines=int(rng.integers(8_000, 32_000)),
        zipf_exponent=float(rng.uniform(0.35, 0.65)),
        base_cpi=float(rng.uniform(0.5, 0.9)),
        mlp=float(rng.uniform(1.6, 3.4)),
    )
