"""Workload mixes WD1-WD10 (Table 2).

The evaluation shares a 4-core system among the WD1-WD5 mixes (Fig. 13)
and an 8-core system among WD6-WD10 (Fig. 14).  Mix labels record the
paper's C/M composition (e.g. ``"3C-1M"``); duplicated benchmarks (the
paper runs ``word_count`` twice in WD8, etc.) are kept as distinct
agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .suites import BENCHMARKS, get_workload
from .spec import WorkloadSpec

__all__ = ["WorkloadMix", "MIXES", "FOUR_CORE_MIXES", "EIGHT_CORE_MIXES", "get_mix"]


@dataclass(frozen=True)
class WorkloadMix:
    """One Table 2 row: a named set of co-scheduled benchmarks."""

    name: str
    members: Tuple[str, ...]
    characterization: str

    def __post_init__(self) -> None:
        for member in self.members:
            if member not in BENCHMARKS:
                raise ValueError(f"mix {self.name} references unknown benchmark {member!r}")

    @property
    def n_agents(self) -> int:
        return len(self.members)

    def agent_names(self) -> List[str]:
        """Unique per-agent labels; duplicates get ``#2``, ``#3`` suffixes."""
        seen: Dict[str, int] = {}
        names = []
        for member in self.members:
            seen[member] = seen.get(member, 0) + 1
            names.append(member if seen[member] == 1 else f"{member}#{seen[member]}")
        return names

    def workloads(self) -> List[WorkloadSpec]:
        """The member specs, in mix order (duplicates repeated)."""
        return [get_workload(member) for member in self.members]

    def expected_counts(self) -> Tuple[int, int]:
        """(n_cache_loving, n_memory_loving) per the Table 2 label."""
        c_part, m_part = 0, 0
        for token in self.characterization.split("-"):
            if token.endswith("C"):
                c_part = int(token[:-1])
            elif token.endswith("M"):
                m_part = int(token[:-1])
            else:
                raise ValueError(f"bad characterization token {token!r}")
        return c_part, m_part


# Table 2, verbatim.
MIXES: Dict[str, WorkloadMix] = {
    mix.name: mix
    for mix in [
        WorkloadMix(
            "WD1",
            ("histogram", "linear_regression", "water_nsquared", "bodytrack"),
            "4C",
        ),
        WorkloadMix("WD2", ("radiosity", "fmm", "facesim", "string_match"), "2C-2M"),
        WorkloadMix("WD3", ("lu_cb", "fluidanimate", "facesim", "dedup"), "4M"),
        WorkloadMix("WD4", ("fft", "streamcluster", "canneal", "word_count"), "3C-1M"),
        WorkloadMix(
            "WD5", ("streamcluster", "facesim", "dedup", "string_match"), "1C-3M"
        ),
        WorkloadMix(
            "WD6",
            (
                "histogram",
                "linear_regression",
                "water_nsquared",
                "bodytrack",
                "freqmine",
                "word_count",
                "x264",
                "dedup",
            ),
            "7C-1M",
        ),
        WorkloadMix(
            "WD7",
            (
                "histogram",
                "canneal",
                "rtview",
                "bodytrack",
                "radiosity",
                "word_count",
                "linear_regression",
                "water_nsquared",
            ),
            "6C-2M",
        ),
        WorkloadMix(
            "WD8",
            (
                "radiosity",
                "word_count",
                "word_count",
                "canneal",
                "rtview",
                "freqmine",
                "x264",
                "dedup",
            ),
            "5C-3M",
        ),
        WorkloadMix(
            "WD9",
            (
                "radiosity",
                "radiosity",
                "word_count",
                "canneal",
                "rtview",
                "fmm",
                "facesim",
                "string_match",
            ),
            "4C-4M",
        ),
        WorkloadMix(
            "WD10",
            (
                "water_nsquared",
                "barnes",
                "ferret",
                "lu_cb",
                "lu_cb",
                "fluidanimate",
                "facesim",
                "dedup",
            ),
            "3C-5M",
        ),
    ]
}

#: Fig. 13's four-application mixes on the 4-core system.
FOUR_CORE_MIXES: Tuple[str, ...] = ("WD1", "WD2", "WD3", "WD4", "WD5")

#: Fig. 14's eight-application mixes on the 8-core system.
EIGHT_CORE_MIXES: Tuple[str, ...] = ("WD6", "WD7", "WD8", "WD9", "WD10")


def get_mix(name: str) -> WorkloadMix:
    """Look up one Table 2 mix by name (``"WD1"`` .. ``"WD10"``)."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; known mixes: {', '.join(MIXES)}") from None
