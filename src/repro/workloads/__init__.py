"""Workload models: benchmark specs (Fig. 8a/9), mixes (Table 2), problems."""

from .mixes import EIGHT_CORE_MIXES, FOUR_CORE_MIXES, MIXES, WorkloadMix, get_mix
from .problems import (
    EIGHT_CORE_CAPACITIES,
    FOUR_CORE_CAPACITIES,
    RESOURCE_NAMES,
    build_mix_problem,
    default_capacities,
    problem_from_fits,
)
from .spec import WorkloadSpec
from .suites import BENCHMARK_ORDER, BENCHMARKS, get_workload, workloads_by_group
from .synthetic import (
    make_balanced,
    make_cache_resident,
    make_streaming,
    make_workload,
    random_workload,
)

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "EIGHT_CORE_CAPACITIES",
    "EIGHT_CORE_MIXES",
    "FOUR_CORE_CAPACITIES",
    "FOUR_CORE_MIXES",
    "MIXES",
    "RESOURCE_NAMES",
    "WorkloadMix",
    "WorkloadSpec",
    "build_mix_problem",
    "default_capacities",
    "get_mix",
    "get_workload",
    "make_balanced",
    "make_cache_resident",
    "make_streaming",
    "make_workload",
    "problem_from_fits",
    "random_workload",
    "workloads_by_group",
]
