"""Workload specifications: the synthetic stand-ins for paper benchmarks.

A :class:`WorkloadSpec` bundles everything the simulators need to
produce IPC as a function of allocated cache and bandwidth:

* a :class:`~repro.sim.trace.LocalityModel` describing how the workload
  re-references memory (this determines cache sensitivity),
* per-instruction memory intensity (this determines bandwidth
  sensitivity),
* core-side parameters (base CPI and memory-level parallelism).

The named PARSEC / SPLASH-2x / Phoenix specs live in
:mod:`repro.workloads.suites`; their parameters are calibrated so that
the full pipeline reproduces each benchmark's published cache-vs-memory
preference (Fig. 9 / Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.trace import LocalityModel

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A synthetic benchmark: locality structure plus core behaviour.

    Attributes
    ----------
    name:
        Benchmark name (matches the paper's figures, e.g. ``"canneal"``).
    locality:
        Mixture locality model of the post-L1-visible reference stream.
    refs_per_instr:
        Memory references per instruction presented to the L1.
    base_cpi:
        Core-limited CPI with a perfect memory hierarchy.
    mlp:
        Memory-level parallelism — average overlapping DRAM misses.
    suite:
        Originating suite label (``"PARSEC"``, ``"SPLASH-2x"``,
        ``"Phoenix"``); informational.
    expected_group:
        The C/M classification the paper reports (Table 2 /
        Fig. 9), used by calibration tests; ``None`` when the paper
        does not pin one down.
    """

    name: str
    locality: LocalityModel
    refs_per_instr: float
    base_cpi: float
    mlp: float
    suite: str = "synthetic"
    expected_group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if not 0 < self.refs_per_instr <= 1.5:
            raise ValueError(
                f"refs_per_instr must be in (0, 1.5], got {self.refs_per_instr}"
            )
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {self.base_cpi}")
        if self.mlp < 1:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")
        if self.expected_group not in (None, "C", "M"):
            raise ValueError(f"expected_group must be 'C', 'M' or None, got {self.expected_group}")
