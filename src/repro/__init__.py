"""repro — reproduction of REF: Resource Elasticity Fairness (ASPLOS 2014).

The public API re-exports the core objects most users need:

* :class:`~repro.core.utility.CobbDouglasUtility` and fitting via
  :func:`~repro.core.fitting.fit_cobb_douglas`,
* :class:`~repro.core.mechanism.AllocationProblem` /
  :func:`~repro.core.mechanism.proportional_elasticity` — the REF mechanism,
* fairness checkers (:func:`~repro.core.properties.check_fairness`),
* the evaluation mechanisms in :mod:`repro.optimize`,
* the simulation substrate in :mod:`repro.sim`, workload models in
  :mod:`repro.workloads`, profiling in :mod:`repro.profiling`, and
  enforcement schedulers in :mod:`repro.sched`.
"""

from .core import (
    Agent,
    Allocation,
    AllocationProblem,
    CobbDouglasFit,
    CobbDouglasUtility,
    EdgeworthBox,
    FairnessReport,
    LeontiefUtility,
    ResourceGroup,
    check_fairness,
    classify,
    fit_cobb_douglas,
    proportional_elasticity,
    rescale_elasticities,
    weighted_system_throughput,
)

__version__ = "1.0.0"

__all__ = [
    "Agent",
    "Allocation",
    "AllocationProblem",
    "CobbDouglasFit",
    "CobbDouglasUtility",
    "EdgeworthBox",
    "FairnessReport",
    "LeontiefUtility",
    "ResourceGroup",
    "check_fairness",
    "classify",
    "fit_cobb_douglas",
    "proportional_elasticity",
    "rescale_elasticities",
    "weighted_system_throughput",
    "__version__",
]
