"""repro — reproduction of REF: Resource Elasticity Fairness (ASPLOS 2014).

The public API re-exports the core objects most users need:

* :class:`~repro.core.utility.CobbDouglasUtility` and fitting via
  :func:`~repro.core.fitting.fit_cobb_douglas` /
  :func:`~repro.core.fitting.fit_cobb_douglas_batch`,
* :class:`~repro.core.mechanism.AllocationProblem` /
  :func:`~repro.core.mechanism.proportional_elasticity` — the REF mechanism,
* fairness checkers (:func:`~repro.core.properties.check_fairness`),
* the evaluation mechanisms in :mod:`repro.optimize`,
* the simulation substrate in :mod:`repro.sim`, workload models in
  :mod:`repro.workloads`, profiling in :mod:`repro.profiling`, and
  enforcement schedulers in :mod:`repro.sched`.

Re-exports resolve lazily (PEP 562): importing :mod:`repro` costs a few
milliseconds, and the numeric stack loads only when a re-exported name
is first touched.  ``python -m repro --help`` and worker spawns
therefore skip the NumPy/SciPy import tax entirely.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Every name here resolves from :mod:`repro.core` on first access.
_CORE_EXPORTS = (
    "Agent",
    "Allocation",
    "AllocationProblem",
    "CobbDouglasFit",
    "CobbDouglasUtility",
    "EdgeworthBox",
    "FairnessReport",
    "LeontiefUtility",
    "ResourceGroup",
    "check_fairness",
    "classify",
    "fit_cobb_douglas",
    "fit_cobb_douglas_batch",
    "proportional_elasticity",
    "rescale_elasticities",
    "weighted_system_throughput",
)

__all__ = [*_CORE_EXPORTS, "__version__"]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .core import (  # noqa: F401
        Agent,
        Allocation,
        AllocationProblem,
        CobbDouglasFit,
        CobbDouglasUtility,
        EdgeworthBox,
        FairnessReport,
        LeontiefUtility,
        ResourceGroup,
        check_fairness,
        classify,
        fit_cobb_douglas,
        fit_cobb_douglas_batch,
        proportional_elasticity,
        rescale_elasticities,
        weighted_system_throughput,
    )


def __getattr__(name: str):
    """Resolve re-exported core names on first access (PEP 562)."""
    if name in _CORE_EXPORTS:
        from . import core

        value = getattr(core, name)
        globals()[name] = value  # cache: subsequent accesses skip this hook
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
