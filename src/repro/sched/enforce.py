"""Turning a REF allocation into enforceable scheduler configuration.

"After the procedure determines proportional shares for each user, we
can enforce those shares with existing approaches" (§4.4).  This module
is that glue: given an :class:`~repro.core.mechanism.Allocation` over
(memory bandwidth, cache capacity) it produces

* WFQ weights / lottery tickets for the bandwidth dimension, and
* a way-partition assignment for the cache dimension,

bundled in an :class:`EnforcementPlan` together with the quantization
error the discrete hardware introduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.mechanism import Allocation, apply_allocation_floors
from ..sim.multicore import AgentShare
from ..sim.platform import CacheConfig
from .lottery import LotteryScheduler
from .partition import partition_ways, quantization_error
from .wfq import WfqScheduler

__all__ = ["EnforcementPlan", "build_enforcement", "build_agent_shares"]


@dataclass(frozen=True)
class EnforcementPlan:
    """Hardware-enforceable rendering of one allocation.

    Attributes
    ----------
    bandwidth_weights:
        Per-agent WFQ weights (equal to allocated GB/s; WFQ only cares
        about ratios).
    way_assignment:
        Per-agent L2 ways.
    cache_quantization_error:
        Worst-case share error introduced by whole-way rounding.
    """

    bandwidth_weights: Dict[str, float]
    way_assignment: Dict[str, int]
    cache_quantization_error: float

    def wfq_scheduler(self, rate: float = 1.0) -> WfqScheduler:
        """A WFQ scheduler enforcing the bandwidth shares."""
        return WfqScheduler(self.bandwidth_weights, rate=rate)

    def lottery_scheduler(self, seed: int = 0) -> LotteryScheduler:
        """A lottery scheduler enforcing the bandwidth shares."""
        return LotteryScheduler(self.bandwidth_weights, seed=seed)


def build_enforcement(
    allocation: Allocation,
    cache_config: CacheConfig,
    bandwidth_resource: int = 0,
    cache_resource: int = 1,
    floors: Optional[Sequence[float]] = None,
) -> EnforcementPlan:
    """Derive schedulers' configuration from a two-resource allocation.

    Parameters
    ----------
    allocation:
        Any allocation over (bandwidth, cache) — REF or otherwise.
    cache_config:
        The physical shared cache (its way count bounds partitioning).
    bandwidth_resource / cache_resource:
        Column indices of the two resources within the allocation.
    floors:
        Optional per-resource minimum allocations (in the allocation's
        column order).  The allocation is first projected onto the
        floor-constrained simplex — redistributed, not clamped — so the
        derived plan stays capacity-feasible and every agent receives a
        schedulable (strictly positive) share.  A degenerate allocation
        with a zero share would otherwise make way partitioning fail.
    """
    if floors is not None:
        allocation = apply_allocation_floors(allocation, floors)
    problem = allocation.problem
    names = [agent.name for agent in problem.agents]
    bandwidth_weights = {
        name: float(allocation.shares[i, bandwidth_resource]) for i, name in enumerate(names)
    }
    cache_capacity = problem.capacities[cache_resource]
    cache_shares = {
        name: float(allocation.shares[i, cache_resource] / cache_capacity)
        for i, name in enumerate(names)
    }
    assignment = partition_ways(cache_shares, cache_config.ways)
    return EnforcementPlan(
        bandwidth_weights=bandwidth_weights,
        way_assignment=assignment,
        cache_quantization_error=quantization_error(
            cache_shares, assignment, cache_config.ways
        ),
    )


def build_agent_shares(
    allocation: Allocation,
    cache_config: CacheConfig,
    workload_of: Dict[str, object],
    bandwidth_resource: int = 0,
    cache_resource: int = 1,
) -> list:
    """Render an allocation as :class:`~repro.sim.multicore.AgentShare`s.

    The bridge from mechanism output to the shared-machine
    co-simulation: bandwidth shares pass through, cache shares are
    way-quantized against the physical cache.

    Parameters
    ----------
    allocation:
        Any two-resource allocation.
    cache_config:
        The *shared* L2 the agents will be partitioned into.
    workload_of:
        Agent name -> workload spec to execute (duplicated mix members
        map their suffixed names to the same spec).
    """
    plan = build_enforcement(
        allocation, cache_config, bandwidth_resource, cache_resource
    )
    shares = []
    for agent in allocation.problem.agents:
        if agent.name not in workload_of:
            raise KeyError(f"no workload provided for agent {agent.name!r}")
        shares.append(
            AgentShare(
                name=agent.name,
                workload=workload_of[agent.name],
                bandwidth_gbps=plan.bandwidth_weights[agent.name],
                l2_ways=plan.way_assignment[agent.name],
            )
        )
    return shares
