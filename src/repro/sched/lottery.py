"""Lottery scheduling for proportional-share enforcement (§4.4).

The second enforcement substrate the paper cites (Waldspurger & Weihl):
each client holds tickets in proportion to its allocated share; every
quantum the scheduler draws a uniformly random ticket and runs the
holder.  Over many quanta each client's CPU (or bandwidth) share
converges to its ticket fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["LotteryScheduler"]


@dataclass(frozen=True)
class LotteryDraw:
    """One quantum's outcome."""

    quantum: int
    winner: str


class LotteryScheduler:
    """Ticket-based proportional-share scheduler.

    Parameters
    ----------
    tickets:
        Per-client positive ticket counts (need not be integers — REF
        shares are real-valued and tickets just need to be
        proportional).
    seed:
        Seed for the lottery's random stream.
    """

    def __init__(self, tickets: Dict[str, float], seed: Optional[int] = None):
        if not tickets:
            raise ValueError("at least one client is required")
        if any(t <= 0 for t in tickets.values()):
            raise ValueError(f"ticket counts must be strictly positive: {tickets}")
        self.tickets = dict(tickets)
        self._clients = list(self.tickets)
        total = sum(self.tickets.values())
        self._probabilities = np.array([self.tickets[c] / total for c in self._clients])
        self._rng = np.random.default_rng(seed)
        self._wins: Dict[str, int] = {client: 0 for client in self._clients}
        self._quanta = 0

    def draw(self) -> str:
        """Hold one lottery; returns the winning client and records it."""
        winner = self._clients[self._rng.choice(len(self._clients), p=self._probabilities)]
        self._wins[winner] += 1
        self._quanta += 1
        return winner

    def run(self, n_quanta: int) -> List[LotteryDraw]:
        """Run ``n_quanta`` lotteries; returns the draw sequence."""
        if n_quanta <= 0:
            raise ValueError(f"n_quanta must be positive, got {n_quanta}")
        return [LotteryDraw(quantum=self._quanta, winner=self.draw()) for _ in range(n_quanta)]

    @property
    def quanta(self) -> int:
        return self._quanta

    def achieved_shares(self) -> Dict[str, float]:
        """Fraction of quanta won so far by each client."""
        if self._quanta == 0:
            return {client: 0.0 for client in self._clients}
        return {client: wins / self._quanta for client, wins in self._wins.items()}

    def expected_shares(self) -> Dict[str, float]:
        """Ticket fractions — the target the lottery converges to."""
        return {client: float(p) for client, p in zip(self._clients, self._probabilities)}

    def worst_share_error(self) -> float:
        """Max absolute deviation of achieved from expected shares."""
        achieved = self.achieved_shares()
        expected = self.expected_shares()
        return max(abs(achieved[c] - expected[c]) for c in self._clients)
