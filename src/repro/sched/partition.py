"""Cache way-partitioning: enforcing capacity shares in hardware terms.

REF outputs real-valued cache-capacity shares; real chip multiprocessors
enforce capacity with way partitioning, which is quantized to whole ways
per set.  :func:`partition_ways` converts fractional shares into a
per-agent way assignment with the largest-remainder method (every way
assigned, at least one way per agent so nobody starves), and
:func:`build_partitioned_caches` instantiates per-agent cache models
restricted to their ways — the form the trace simulator consumes.
"""

from __future__ import annotations

from typing import Dict

from ..sim.cache import SetAssociativeCache
from ..sim.platform import CacheConfig

__all__ = ["partition_ways", "build_partitioned_caches", "quantization_error"]


def partition_ways(shares: Dict[str, float], n_ways: int) -> Dict[str, int]:
    """Quantize fractional capacity shares into whole ways per agent.

    Largest-remainder (Hamilton) apportionment with a one-way floor:
    every agent gets at least one way (a zero-way agent could not run at
    all), the rest go by share, and leftover ways flow to the largest
    fractional remainders.

    The assignment is a pure function of the ``{agent: share}`` mapping:
    ties (equal shares, equal remainders) are broken by agent name, so
    the result does not depend on dict insertion order — reallocation
    services rebuild this mapping every epoch and must not flap between
    equivalent assignments.

    Parameters
    ----------
    shares:
        Agent -> fraction of total capacity; fractions must be positive
        and sum to at most 1 (small numerical slack allowed).
    n_ways:
        Total ways available; must be >= number of agents.

    Returns
    -------
    dict
        Agent -> whole ways; values sum to exactly ``n_ways``.
    """
    if not shares:
        raise ValueError("at least one agent is required")
    if any(v <= 0 for v in shares.values()):
        raise ValueError(f"shares must be strictly positive: {shares}")
    total = sum(shares.values())
    if total > 1.0 + 1e-6:
        raise ValueError(f"shares sum to {total}, which exceeds capacity")
    if n_ways < len(shares):
        raise ValueError(
            f"{n_ways} ways cannot give each of {len(shares)} agents at least one way"
        )

    # Normalize so all ways get used even if shares sum below 1.  Agents
    # are walked in sorted-name order so tie-breaks are deterministic
    # regardless of the mapping's insertion order.
    agents = sorted(shares)
    ideal = {agent: shares[agent] / total * n_ways for agent in agents}
    assignment = {agent: max(int(ideal[agent]), 1) for agent in agents}
    # The one-way floor can over-commit; shave from the largest holders.
    while sum(assignment.values()) > n_ways:
        richest = max(agents, key=lambda a: (assignment[a], ideal[a], a))
        if assignment[richest] == 1:
            raise ValueError(f"cannot fit {len(agents)} agents into {n_ways} ways")
        assignment[richest] -= 1
    remainders = {agent: ideal[agent] - assignment[agent] for agent in agents}
    while sum(assignment.values()) < n_ways:
        neediest = max(agents, key=lambda a: (remainders[a], a))
        assignment[neediest] += 1
        remainders[neediest] -= 1.0
    return {agent: assignment[agent] for agent in shares}


def quantization_error(shares: Dict[str, float], assignment: Dict[str, int], n_ways: int) -> float:
    """Worst absolute share error introduced by way quantization."""
    total = sum(shares.values())
    return max(
        abs(assignment[agent] / n_ways - shares[agent] / total) for agent in shares
    )


def build_partitioned_caches(
    config: CacheConfig, assignment: Dict[str, int]
) -> Dict[str, SetAssociativeCache]:
    """Per-agent cache models restricted to their assigned ways.

    Each agent sees a cache with the full set count but only her ways —
    exactly how way-partitioned LLCs behave.
    """
    if sum(assignment.values()) > config.ways:
        raise ValueError(
            f"assignment uses {sum(assignment.values())} ways but the cache has {config.ways}"
        )
    return {
        agent: SetAssociativeCache(config, n_partition_ways=ways)
        for agent, ways in assignment.items()
    }
