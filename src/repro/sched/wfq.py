"""Weighted fair queueing (WFQ) for memory-bandwidth shares (§4.4).

The paper enforces proportional bandwidth shares "with existing
approaches, such as weighted fair queuing [8]".  This module implements
the classic virtual-finish-time WFQ discipline of Demers, Keshav and
Shenker: each flow's packets are stamped with virtual start/finish
times scaled by the flow's weight, and the scheduler always serves the
packet with the smallest virtual finish time.

Backlogged flows then receive channel bandwidth in proportion to their
weights — exactly the enforcement a REF bandwidth allocation needs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["WfqPacket", "WfqScheduler", "ServiceRecord"]


@dataclass(frozen=True)
class WfqPacket:
    """One request: a flow id and a size (e.g. bytes of a line transfer)."""

    flow: str
    size: float
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {self.arrival}")


@dataclass(frozen=True)
class ServiceRecord:
    """One scheduling decision: which packet was served and when."""

    packet: WfqPacket
    start: float
    finish: float


class WfqScheduler:
    """Virtual-time weighted fair queueing over a fixed-rate link.

    Parameters
    ----------
    weights:
        Per-flow positive weights; service received by backlogged flows
        is proportional to these (the REF shares).
    rate:
        Link service rate (size units per time unit).
    """

    def __init__(self, weights: Dict[str, float], rate: float = 1.0):
        if not weights:
            raise ValueError("at least one flow is required")
        if any(w <= 0 for w in weights.values()):
            raise ValueError(f"weights must be strictly positive: {weights}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.weights = dict(weights)
        self.rate = rate
        self._virtual_finish: Dict[str, float] = {flow: 0.0 for flow in weights}
        self._queue: List[Tuple[float, int, WfqPacket]] = []
        self._tiebreak = itertools.count()
        self._virtual_time = 0.0

    def enqueue(self, packet: WfqPacket) -> None:
        """Add a packet; assigns its virtual finish time.

        virtual_finish = max(virtual_time, flow's last finish)
                         + size / weight
        """
        if packet.flow not in self.weights:
            raise KeyError(f"unknown flow {packet.flow!r}; flows: {sorted(self.weights)}")
        start = max(self._virtual_time, self._virtual_finish[packet.flow])
        finish = start + packet.size / self.weights[packet.flow]
        self._virtual_finish[packet.flow] = finish
        heapq.heappush(self._queue, (finish, next(self._tiebreak), packet))

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def dequeue(self) -> Optional[WfqPacket]:
        """Serve the packet with the smallest virtual finish time."""
        if not self._queue:
            return None
        finish, _, packet = heapq.heappop(self._queue)
        self._virtual_time = finish
        return packet

    def run(self, packets: List[WfqPacket]) -> List[ServiceRecord]:
        """Arrival-aware simulation: serve to empty, returns the schedule.

        Packets join the queue only once their ``arrival`` time has been
        reached; when the queue drains with arrivals still outstanding
        the link idles until the next arrival.  Real time advances by
        ``size / rate`` per served packet (service is non-preemptive:
        a packet arriving mid-transfer waits for the next decision
        point).  With all-zero arrivals every packet is backlogged from
        the start and the schedule degenerates to the classic
        persistently-backlogged case.
        """
        # Stable sort: packets sharing an arrival time keep list order,
        # so all-zero-arrival inputs enqueue exactly as they used to.
        pending = sorted(packets, key=lambda packet: packet.arrival)
        records: List[ServiceRecord] = []
        clock = 0.0
        index = 0
        while index < len(pending) or self._queue:
            while index < len(pending) and pending[index].arrival <= clock + 1e-12:
                self.enqueue(pending[index])
                index += 1
            if not self._queue:
                # Idle the link until the next arrival.
                clock = max(clock, pending[index].arrival)
                continue
            packet = self.dequeue()
            start = clock
            clock += packet.size / self.rate
            records.append(ServiceRecord(packet=packet, start=start, finish=clock))
        return records

    @staticmethod
    def service_shares(records: List[ServiceRecord]) -> Dict[str, float]:
        """Fraction of total service each flow received in a schedule."""
        totals: Dict[str, float] = {}
        for record in records:
            totals[record.packet.flow] = totals.get(record.packet.flow, 0.0) + record.packet.size
        grand_total = sum(totals.values())
        if grand_total == 0:
            return totals
        return {flow: amount / grand_total for flow, amount in totals.items()}

    def throughput_up_to(self, records: List[ServiceRecord], horizon: float) -> Dict[str, float]:
        """Per-flow service completed by ``horizon`` (for share-convergence tests)."""
        totals = {flow: 0.0 for flow in self.weights}
        for record in records:
            if record.finish <= horizon:
                totals[record.packet.flow] += record.packet.size
        return totals
