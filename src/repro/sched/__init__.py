"""Enforcement substrates: WFQ, lottery scheduling, way partitioning (§4.4)."""

from .enforce import EnforcementPlan, build_agent_shares, build_enforcement
from .lottery import LotteryScheduler
from .partition import build_partitioned_caches, partition_ways, quantization_error
from .wfq import ServiceRecord, WfqPacket, WfqScheduler

__all__ = [
    "EnforcementPlan",
    "LotteryScheduler",
    "ServiceRecord",
    "WfqPacket",
    "WfqScheduler",
    "build_agent_shares",
    "build_enforcement",
    "build_partitioned_caches",
    "partition_ways",
    "quantization_error",
]
