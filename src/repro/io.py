"""JSON serialization for the library's artifacts.

Profiles already serialize themselves (:meth:`repro.profiling.Profile.
as_dict`); this module covers the rest of the pipeline so results can
move between processes and sessions:

* Cobb-Douglas utilities and fits (with their diagnostics),
* allocation problems (agents + capacities) and allocations,
* whole fitted suites (benchmark name -> fit), the artifact the CLI's
  ``fit-suite`` command produces and ``allocate --fits`` consumes.

All functions are pure dict <-> object converters plus thin
``save_json`` / ``load_json`` file helpers; nothing here runs the
simulators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

from .core.fitting import CobbDouglasFit
from .core.mechanism import Agent, Allocation, AllocationProblem
from .core.utility import CobbDouglasUtility
from .profiling.profile import Profile

__all__ = [
    "save_profile",
    "load_profile",
    "utility_to_dict",
    "utility_from_dict",
    "fit_to_dict",
    "fit_from_dict",
    "suite_to_dict",
    "suite_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "allocation_to_dict",
    "allocation_from_dict",
    "save_json",
    "load_json",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


def save_profile(profile: Profile, path: PathLike) -> None:
    """Write one profile to a JSON file (the CLI's ``profile -o`` format)."""
    save_json(profile.as_dict(), path)


def load_profile(path: PathLike) -> Profile:
    """Inverse of :func:`save_profile`."""
    return Profile.from_dict(load_json(path))


# ---------------------------------------------------------------------------
# Utilities and fits
# ---------------------------------------------------------------------------


def utility_to_dict(utility: CobbDouglasUtility) -> Dict:
    """Serialize a Cobb-Douglas utility."""
    return {"elasticities": list(utility.elasticities), "scale": utility.scale}


def utility_from_dict(data: Mapping) -> CobbDouglasUtility:
    """Inverse of :func:`utility_to_dict`."""
    return CobbDouglasUtility(data["elasticities"], scale=data.get("scale", 1.0))


def fit_to_dict(fit: CobbDouglasFit) -> Dict:
    """Serialize a fit with its goodness-of-fit diagnostics."""
    return {
        "utility": utility_to_dict(fit.utility),
        "r_squared": fit.r_squared,
        "r_squared_linear": fit.r_squared_linear,
        "residuals": fit.residuals.tolist(),
        "n_samples": fit.n_samples,
        # JSON has no inf/nan literals; serialize as None and restore.
        "condition_number": (
            fit.condition_number if np.isfinite(fit.condition_number) else None
        ),
    }


def fit_from_dict(data: Mapping) -> CobbDouglasFit:
    """Inverse of :func:`fit_to_dict`."""
    return CobbDouglasFit(
        utility=utility_from_dict(data["utility"]),
        r_squared=float(data["r_squared"]),
        r_squared_linear=float(data["r_squared_linear"]),
        residuals=np.asarray(data["residuals"], dtype=float),
        n_samples=int(data["n_samples"]),
        condition_number=(
            float(data["condition_number"])
            if data.get("condition_number") is not None
            else float("nan")
        ),
    )


def suite_to_dict(fits: Mapping[str, CobbDouglasFit]) -> Dict:
    """Serialize a whole fitted suite (benchmark name -> fit)."""
    return {name: fit_to_dict(fit) for name, fit in fits.items()}


def suite_from_dict(data: Mapping) -> Dict[str, CobbDouglasFit]:
    """Inverse of :func:`suite_to_dict`."""
    return {name: fit_from_dict(entry) for name, entry in data.items()}


# ---------------------------------------------------------------------------
# Problems and allocations
# ---------------------------------------------------------------------------


def problem_to_dict(problem: AllocationProblem) -> Dict:
    """Serialize an allocation problem (agents, utilities, capacities)."""
    return {
        "agents": [
            {"name": agent.name, "utility": utility_to_dict(agent.utility)}
            for agent in problem.agents
        ],
        "capacities": list(problem.capacities),
        "resource_names": list(problem.resource_names),
    }


def problem_from_dict(data: Mapping) -> AllocationProblem:
    """Inverse of :func:`problem_to_dict`."""
    agents = [
        Agent(entry["name"], utility_from_dict(entry["utility"]))
        for entry in data["agents"]
    ]
    return AllocationProblem(agents, data["capacities"], data.get("resource_names"))


def allocation_to_dict(allocation: Allocation) -> Dict:
    """Serialize an allocation together with its problem."""
    return {
        "problem": problem_to_dict(allocation.problem),
        "shares": allocation.shares.tolist(),
        "mechanism": allocation.mechanism,
    }


def allocation_from_dict(data: Mapping) -> Allocation:
    """Inverse of :func:`allocation_to_dict`."""
    return Allocation(
        problem=problem_from_dict(data["problem"]),
        shares=np.asarray(data["shares"], dtype=float),
        mechanism=data.get("mechanism", "unspecified"),
    )


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------


def save_json(data: Mapping, path: PathLike) -> None:
    """Write a serialized artifact to a JSON file."""
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def load_json(path: PathLike) -> Dict:
    """Read a serialized artifact from a JSON file."""
    with open(path) as handle:
        return json.load(handle)
