"""Explore/exploit demand learning over the on-line profiling loop.

*Online Learning Demands in Max-min Fairness* (PAPERS.md) shows a
fair-division mechanism can start from a prior and converge to the
profiled allocation from live observations alone.  :class:`DemandLearner`
is that loop's brain, layered on the per-agent
:class:`~repro.profiling.online.OnlineProfiler`:

* **reports** — the mechanism sees a confidence-weighted blend
  ``(1 - c) * prior + c * fitted`` of the agent's prior (equal split or
  a :class:`~repro.learning.prior.PriorStore` class centroid) and its
  current fit, where ``c`` ramps with accepted sample count.  The blend
  is a convex combination of strictly-positive sum-to-one vectors, so
  it is always a valid Eq. 12 report;
* **exploration** — each epoch, every learning agent is perturbed with
  probability ``ε`` (ε-greedy, decaying per agent from ``epsilon0`` to
  ``epsilon_min``): its enforced shares are multiplied by bounded
  log-uniform factors, then every column is renormalized so the
  perturbation moves samples *around* the operating point without ever
  over-committing capacity.  Perturbed measurements are tagged
  ``exploration=True`` so the profiler's outlier gate cannot reject a
  genuinely phase-changed agent's evidence wholesale;
* **demand caps** — a :class:`~repro.learning.caps.DemandCapEstimator`
  detects flat response along a resource and caps the agent's share
  there; :func:`~repro.learning.caps.apply_demand_caps` hands the
  surplus to unsaturated agents with exact column sums;
* **convergence** — an agent whose blended report has drifted less than
  ``convergence_tol`` for ``convergence_window`` consecutive epochs is
  converged (exploration decays to the floor, the epoch is recorded in
  ``repro_learning_convergence_epoch``); a later large drift re-arms
  exploration — that is how a phase change restarts learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import MetricsRegistry
from ..profiling.online import OnlineProfiler
from .caps import DemandCapEstimator, apply_demand_caps
from .prior import PriorStore

__all__ = ["LearnerConfig", "AgentLearnState", "DemandLearner"]


@dataclass(frozen=True)
class LearnerConfig:
    """Tuning knobs for the explore/exploit schedule (see docs/learning.md)."""

    #: Initial per-agent exploration probability.
    epsilon0: float = 0.9
    #: Exploration probability floor (never fully stop exploring).
    epsilon_min: float = 0.05
    #: Per-epoch multiplicative ε decay.
    epsilon_decay: float = 0.97
    #: Log-space half-width of a perturbation factor (``exp(±width)``).
    perturb_width: float = 0.25
    #: Accepted samples at which the fit is fully trusted (c = 1).
    confidence_samples: int = 12
    #: Report drift below this for ``convergence_window`` epochs = converged.
    convergence_tol: float = 0.02
    convergence_window: int = 5
    #: Drift above this re-arms exploration on a converged agent.
    rearm_drift: float = 0.15

    def __post_init__(self) -> None:
        if not 0 <= self.epsilon_min <= self.epsilon0 <= 1:
            raise ValueError(
                f"need 0 <= epsilon_min <= epsilon0 <= 1, got "
                f"({self.epsilon_min}, {self.epsilon0})"
            )
        if not 0 < self.epsilon_decay <= 1:
            raise ValueError(f"epsilon_decay must be in (0, 1], got {self.epsilon_decay}")
        if not 0 < self.perturb_width < 1:
            raise ValueError(f"perturb_width must be in (0, 1), got {self.perturb_width}")
        if self.confidence_samples < 1:
            raise ValueError(
                f"confidence_samples must be >= 1, got {self.confidence_samples}"
            )
        if self.convergence_tol <= 0 or self.convergence_window < 1:
            raise ValueError("convergence_tol/window must be positive")
        if self.rearm_drift <= self.convergence_tol:
            raise ValueError("rearm_drift must exceed convergence_tol")


@dataclass
class AgentLearnState:
    """Mutable per-agent learning state (exposed for tests/diagnostics)."""

    prior: np.ndarray
    cls: Optional[str] = None
    epochs: int = 0
    epsilon: float = 0.9
    converged_epoch: Optional[int] = None
    last_report: Optional[np.ndarray] = None
    stable_epochs: int = 0
    prior_recorded: bool = False


class DemandLearner:
    """Per-allocator demand-learning state machine.

    One instance serves every learning agent of a
    :class:`~repro.dynamic.DynamicAllocator`; the allocator calls in at
    fixed points of its epoch (report, cap, perturb, note) and the
    learner owns all explore/exploit state and ``repro_learning_*``
    telemetry.
    """

    def __init__(
        self,
        prior: str = "equal",
        n_resources: int = 2,
        config: Optional[LearnerConfig] = None,
        estimator: Optional[DemandCapEstimator] = None,
        metrics: Optional[MetricsRegistry] = None,
        seed: int = 0,
    ):
        self.config = config if config is not None else LearnerConfig()
        self.priors = PriorStore(policy=prior, n_resources=n_resources)
        self.estimator = estimator if estimator is not None else DemandCapEstimator()
        self.n_resources = n_resources
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rng = np.random.default_rng(seed)
        self._states: Dict[str, AgentLearnState] = {}

    # ------------------------------------------------------------------
    # Membership

    def register(self, name: str, cls: Optional[str] = None) -> None:
        """Start learning for an agent (idempotent on re-register)."""
        if name in self._states:
            return
        self._states[name] = AgentLearnState(
            prior=self.priors.prior_for(cls),
            cls=cls,
            epsilon=self.config.epsilon0,
        )
        self.metrics.gauge(
            "repro_learning_agents", help="Agents currently learning demands."
        ).set(len(self._states))

    def forget(self, name: str) -> None:
        """Drop an agent's learning state (no-op when unknown)."""
        if self._states.pop(name, None) is not None:
            self.metrics.gauge(
                "repro_learning_agents", help="Agents currently learning demands."
            ).set(len(self._states))

    def state(self, name: str) -> Optional[AgentLearnState]:
        return self._states.get(name)

    @property
    def agent_names(self) -> Tuple[str, ...]:
        return tuple(self._states)

    # ------------------------------------------------------------------
    # Reports

    def confidence(self, name: str, profiler: OnlineProfiler) -> float:
        """How much the agent's fit is trusted over its prior, in [0, 1]."""
        if profiler.last_fit is None:
            return 0.0
        return min(1.0, profiler.n_samples / self.config.confidence_samples)

    def report(self, name: str, profiler: OnlineProfiler) -> np.ndarray:
        """Confidence-weighted elasticity report for the mechanism.

        Falls back to the profiler's own report for agents never
        registered with the learner (profiled agents sharing the
        machine with learning ones).
        """
        state = self._states.get(name)
        fitted = profiler.report_elasticities()
        if state is None:
            return fitted
        c = self.confidence(name, profiler)
        blend = (1.0 - c) * state.prior + c * fitted
        total = blend.sum()
        if not np.isfinite(total) or total <= 0 or np.any(blend <= 0):
            return state.prior.copy()
        return blend / total

    def note_fit(self, name: str, profiler: OnlineProfiler) -> None:
        """Feed a now-confident fit into the prior store (once per agent)."""
        state = self._states.get(name)
        if state is None or state.prior_recorded:
            return
        if self.confidence(name, profiler) >= 1.0:
            self.priors.update(profiler.report_elasticities(), cls=state.cls)
            state.prior_recorded = True

    # ------------------------------------------------------------------
    # Demand caps

    def caps_for(
        self,
        names: Sequence[str],
        profilers: Dict[str, OnlineProfiler],
        floors: Sequence[float],
    ) -> np.ndarray:
        """Stacked ``(N, R)`` cap matrix for the epoch's agent order."""
        caps = np.full((len(names), self.n_resources), np.inf)
        for i, name in enumerate(names):
            if name not in self._states:
                continue
            profiler = profilers[name]
            if self.confidence(name, profiler) < 1.0:
                continue
            caps[i] = self.estimator.caps_for(
                self.report(name, profiler), profiler.samples(), floors
            )
        return caps

    def apply_caps(
        self,
        shares: np.ndarray,
        names: Sequence[str],
        profilers: Dict[str, OnlineProfiler],
        floors: Sequence[float],
        capacities: Sequence[float],
    ) -> Tuple[np.ndarray, int]:
        """Cap saturated agents, redistribute surplus; returns (shares, capped)."""
        caps = self.caps_for(names, profilers, floors)
        if not np.isfinite(caps).any():
            return shares, 0
        result = apply_demand_caps(shares, caps, capacities)
        if result.capped_entries:
            self.metrics.counter(
                "repro_learning_cap_events_total",
                help="(agent, resource) entries clipped to a demand cap.",
            ).inc(result.capped_entries)
        return result.shares, result.capped_entries

    # ------------------------------------------------------------------
    # Exploration

    def perturb(
        self,
        shares: np.ndarray,
        names: Sequence[str],
        floors: Sequence[float],
    ) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """ε-greedy bounded perturbation of the enforced shares.

        Each learning agent is perturbed with its current probability
        ``ε``; chosen agents' entries are multiplied by log-uniform
        factors in ``exp(±perturb_width)``.  Columns are then
        renormalized to their pre-perturbation sums and clamped to the
        floors (pin-and-rescale), so the result allocates exactly what
        the input did and never leaves the profiled regime.

        Returns the perturbed matrix and the names actually explored
        this epoch (their measurements must be tagged
        ``exploration=True``).
        """
        shares = np.asarray(shares, dtype=float)
        explored: List[str] = []
        factors = np.ones_like(shares)
        for i, name in enumerate(names):
            state = self._states.get(name)
            if state is None:
                continue
            if self._rng.random() >= state.epsilon:
                continue
            explored.append(name)
            width = self.config.perturb_width
            factors[i] = np.exp(self._rng.uniform(-width, width, size=shares.shape[1]))
        total = len([n for n in names if n in self._states])
        self.metrics.gauge(
            "repro_learning_exploration_fraction",
            help="Fraction of learning agents perturbed in the last epoch.",
        ).set(len(explored) / total if total else 0.0)
        if not explored:
            return shares, ()
        column_sums = shares.sum(axis=0)
        out = shares * factors
        out = _renormalize_with_floors(out, column_sums, np.asarray(floors, dtype=float))
        return out, tuple(explored)

    # ------------------------------------------------------------------
    # Per-epoch bookkeeping

    def note_epoch(
        self,
        epoch: int,
        names: Sequence[str],
        profilers: Dict[str, OnlineProfiler],
    ) -> Tuple[str, ...]:
        """Advance ε schedules and convergence detection after an epoch.

        Returns the agents that *newly* converged this epoch (for the
        caller's event log).
        """
        newly_converged: List[str] = []
        for name in names:
            state = self._states.get(name)
            if state is None:
                continue
            profiler = profilers[name]
            self.note_fit(name, profiler)
            report = self.report(name, profiler)
            if state.last_report is not None:
                drift = float(np.max(np.abs(report - state.last_report)))
                self.metrics.gauge(
                    "repro_learning_report_drift",
                    help="Max abs per-epoch change of the blended report.",
                    agent=name,
                ).set(drift)
                if state.converged_epoch is not None and drift > self.config.rearm_drift:
                    # A big jump after convergence is a phase change:
                    # re-arm exploration and start converging again.
                    state.converged_epoch = None
                    state.stable_epochs = 0
                    state.epsilon = self.config.epsilon0
                elif drift < self.config.convergence_tol:
                    state.stable_epochs += 1
                else:
                    state.stable_epochs = 0
                if (
                    state.converged_epoch is None
                    and state.stable_epochs >= self.config.convergence_window
                    and self.confidence(name, profiler) >= 1.0
                ):
                    state.converged_epoch = epoch
                    newly_converged.append(name)
                    self.metrics.gauge(
                        "repro_learning_convergence_epoch",
                        help="Epoch at which the agent's report converged.",
                        agent=name,
                    ).set(float(epoch))
            state.last_report = report
            state.epochs += 1
            state.epsilon = max(
                self.config.epsilon_min, state.epsilon * self.config.epsilon_decay
            )
        return tuple(newly_converged)


def _renormalize_with_floors(
    shares: np.ndarray, column_sums: np.ndarray, floors: np.ndarray
) -> np.ndarray:
    """Scale each column back to its target sum, keeping entries >= floors.

    Same pin-and-rescale iteration as
    :func:`~repro.optimize.hierarchy.split_capacity`: entries at or
    below the floor are pinned there and the free entries absorb the
    remainder; each round pins at least one new entry, so N rounds
    bound the loop.
    """
    out = shares.copy()
    n_agents = out.shape[0]
    for r in range(out.shape[1]):
        target = float(column_sums[r])
        floor = float(floors[r])
        column = out[:, r]
        if target <= 0:
            continue
        total = column.sum()
        if total > 0:
            column = column * (target / total)
        pinned = np.zeros(n_agents, dtype=bool)
        for _ in range(n_agents):
            below = ~pinned & (column < floor)
            if not below.any():
                break
            pinned |= below
            column = np.where(pinned, floor, column)
            if pinned.all():
                break
            free_target = target - floor * pinned.sum()
            free_total = column[~pinned].sum()
            if free_target <= 0 or free_total <= 0:
                break
            column = np.where(pinned, column, column * (free_target / free_total))
        out[:, r] = column
    return out
