"""Priors for profile-free agents: equal split or learned centroids.

A profile-less agent must report *something* before its first fit.
The §4.4 naive report — every resource contributes equally — is always
safe, but when the service has already fitted agents of the same
workload class ("C"ache-sensitive vs "M"emory-bandwidth-sensitive, the
paper's Table 2 grouping), the class centroid of those past fits is a
strictly better starting point: the mechanism allocates sensibly from
epoch 0 and the regret trace starts lower.

:class:`PriorStore` keeps running per-class centroids of re-scaled
elasticities, updated from every confident fit the controller accepts,
plus a global centroid as the fallback for unknown classes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["PRIOR_NAMES", "PriorStore"]

#: Prior policies the CLI accepts (static strings: the parser stays
#: import-light, no registry or NumPy needed to build ``--prior``).
PRIOR_NAMES = ("equal", "centroid")


class PriorStore:
    """Running centroids of fitted elasticities, keyed by workload class.

    Parameters
    ----------
    policy:
        ``"equal"`` always returns the naive equal-elasticity prior;
        ``"centroid"`` returns the class centroid when one exists,
        falling back to the global centroid and then to equal.
    n_resources:
        Dimensionality of the elasticity vectors.
    """

    def __init__(self, policy: str = "equal", n_resources: int = 2):
        if policy not in PRIOR_NAMES:
            raise ValueError(
                f"unknown prior policy {policy!r}; expected one of {PRIOR_NAMES}"
            )
        if n_resources < 1:
            raise ValueError(f"n_resources must be >= 1, got {n_resources}")
        self.policy = policy
        self.n_resources = n_resources
        self._sums: Dict[str, np.ndarray] = {}
        self._counts: Dict[str, int] = {}

    @property
    def equal(self) -> np.ndarray:
        """The naive prior: all resources contribute equally (§4.4)."""
        return np.full(self.n_resources, 1.0 / self.n_resources)

    def update(self, rescaled_alpha: Sequence[float], cls: Optional[str] = None) -> None:
        """Fold one confident fit into the centroids.

        Non-finite or non-positive vectors are ignored — a degenerate
        fit must not poison the prior every future agent starts from.
        The fit always feeds the global centroid; ``cls`` additionally
        feeds that class's centroid.
        """
        alpha = np.asarray(rescaled_alpha, dtype=float)
        if alpha.shape != (self.n_resources,):
            raise ValueError(
                f"expected shape ({self.n_resources},), got {alpha.shape}"
            )
        if not np.all(np.isfinite(alpha)) or np.any(alpha <= 0):
            return
        for key in ("*",) if cls is None else ("*", cls):
            self._sums[key] = self._sums.get(key, np.zeros(self.n_resources)) + alpha
            self._counts[key] = self._counts.get(key, 0) + 1

    def observations(self, cls: Optional[str] = None) -> int:
        """Fits folded into the class centroid (global when ``cls=None``)."""
        return self._counts.get(cls if cls is not None else "*", 0)

    def prior_for(self, cls: Optional[str] = None) -> np.ndarray:
        """The prior a new agent of workload class ``cls`` starts from.

        Always strictly positive and normalized to sum to one, so it is
        valid as a re-scaled (Eq. 12) elasticity report.
        """
        if self.policy == "equal":
            return self.equal
        for key in (cls, "*"):
            if key is not None and self._counts.get(key, 0) > 0:
                centroid = self._sums[key] / self._counts[key]
                total = centroid.sum()
                if total > 0 and np.all(np.isfinite(centroid)) and np.all(centroid > 0):
                    return centroid / total
        return self.equal
