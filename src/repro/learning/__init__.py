"""Profile-free serving: online demand learning with explore/exploit.

REF assumes every agent arrives with a fitted Cobb-Douglas profile; in
this repo that means a full offline sweep before the agent can be
allocated.  This package removes the prerequisite: agents register with
**no profile**, start from a prior (:mod:`repro.learning.prior`),
explore their operating point with bounded perturbations, report
confidence-weighted elasticity blends to the mechanism
(:mod:`repro.learning.controller`), and release surplus along resources
their utility has saturated in (:mod:`repro.learning.caps`).

Entry points: ``DynamicAllocator(learn_demands=True)``, the
``profile: null`` register variant on the serve API, and the
``--learn-demands``/``--prior`` CLI flags.  See ``docs/learning.md``.
"""

from .caps import CapResult, DemandCapEstimator, apply_demand_caps
from .controller import AgentLearnState, DemandLearner, LearnerConfig
from .prior import PRIOR_NAMES, PriorStore

__all__ = [
    "AgentLearnState",
    "CapResult",
    "DemandCapEstimator",
    "DemandLearner",
    "LearnerConfig",
    "PRIOR_NAMES",
    "PriorStore",
    "apply_demand_caps",
]
