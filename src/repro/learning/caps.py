"""Demand caps: saturated agents release surplus to unsaturated ones.

*Fair and Efficient Allocations with Limited Demands* (PAPERS.md)
observes that an agent whose utility has saturated along a resource —
more of it buys no performance — should not keep receiving its full
elasticity-proportional share; the surplus is worth strictly more to
agents that are still demand-elastic.

Two pieces implement that here:

* :class:`DemandCapEstimator` inspects an agent's learned utility and
  sample history and decides, per resource, whether the response looks
  *flat* (tiny re-scaled elasticity backed by enough evidence).  For a
  flat resource it derives a cap — a small margin above the cheapest
  allocation at which the agent already achieved near-best performance.
* :func:`apply_demand_caps` clips the allocation to those caps and
  redistributes the released surplus to the un-capped agents,
  column-by-column, with the same pin-and-rescale iteration as
  :func:`~repro.optimize.hierarchy.split_capacity`: as long as one
  agent in a resource column is below its cap, the column sum is
  preserved **exactly**; only when every agent is capped is capacity
  left on the table (sum of caps < capacity means nobody wants it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["CapResult", "DemandCapEstimator", "apply_demand_caps"]


@dataclass(frozen=True)
class CapResult:
    """Outcome of one :func:`apply_demand_caps` pass."""

    shares: np.ndarray
    #: Number of (agent, resource) entries clipped to their cap.
    capped_entries: int
    #: Per-resource capacity released because *every* agent was capped.
    released: np.ndarray


def apply_demand_caps(
    shares: np.ndarray,
    caps: np.ndarray,
    capacities: Sequence[float],
) -> CapResult:
    """Clip shares to per-agent demand caps, redistributing the surplus.

    Parameters
    ----------
    shares:
        ``(N, R)`` allocation whose columns sum to at most the
        capacities (the floor-enforced allocation).
    caps:
        ``(N, R)`` per-agent upper bounds; ``np.inf`` marks an
        un-capped entry.  Non-finite-but-not-inf or non-positive caps
        are treated as un-capped (a degenerate estimate must never
        zero an agent out).
    capacities:
        Capacity vector ``C``, shape ``(R,)``; used only for
        validation and the released-capacity report.

    Returns
    -------
    :class:`CapResult` whose ``shares`` satisfy, per resource column:

    * no entry exceeds its cap (within fp tolerance),
    * if at least one agent is below its cap, the column sum equals
      the input column sum **exactly** (surplus fully redistributed),
    * otherwise the column sums to the total of the caps and the
      difference is reported in ``released``.
    """
    shares = np.asarray(shares, dtype=float)
    if shares.ndim != 2:
        raise ValueError(f"shares must be (N, R), got shape {shares.shape}")
    n_agents, n_resources = shares.shape
    caps = np.asarray(caps, dtype=float)
    if caps.shape != shares.shape:
        raise ValueError(f"caps must have shape {shares.shape}, got {caps.shape}")
    caps_vector = np.asarray(capacities, dtype=float)
    if caps_vector.shape != (n_resources,):
        raise ValueError(
            f"capacities must have shape ({n_resources},), got {caps_vector.shape}"
        )
    # Degenerate caps (NaN, zero, negative) carry no information: treat
    # them as un-capped rather than starving the agent.
    caps = np.where(np.isnan(caps) | (caps <= 0.0), np.inf, caps)

    out = shares.copy()
    capped_entries = 0
    released = np.zeros(n_resources)
    for r in range(n_resources):
        column = out[:, r]
        target = float(column.sum())
        cap_r = caps[:, r]
        if target <= 0 or np.all(column <= cap_r):
            continue
        # Pin-and-rescale (split_capacity idiom): clip the over-cap
        # agents, then scale the free agents up to absorb the surplus;
        # scaling can push a free agent over *its* cap, so iterate.
        # Each round pins at least one new agent, so N rounds bound it.
        pinned = np.zeros(n_agents, dtype=bool)
        for _ in range(n_agents):
            over = ~pinned & (column > cap_r)
            if not over.any():
                break
            pinned |= over
            column = np.where(pinned, np.minimum(column, cap_r), column)
            if pinned.all():
                break
            free_target = target - column[pinned].sum()
            free_total = column[~pinned].sum()
            if free_target <= 0 or free_total <= 0:
                break
            column = np.where(pinned, column, column * (free_target / free_total))
        column = np.minimum(column, cap_r)
        if pinned.all() or column[~pinned].sum() <= 0:
            released[r] = target - float(column.sum())
        else:
            # Exact column sum: absorb fp drift into the free agents.
            free_total = column[~pinned].sum()
            free_target = target - column[pinned].sum()
            column = np.where(pinned, column, column * (free_target / free_total))
        out[:, r] = column
        capped_entries += int(pinned.sum())
    return CapResult(shares=out, capped_entries=capped_entries, released=released)


class DemandCapEstimator:
    """Detects utility saturation and derives per-resource demand caps.

    An agent is *saturated* in resource ``r`` when its learned response
    along that axis is flat: the re-scaled elasticity is below
    ``flat_threshold`` **and** the estimate is backed by at least
    ``min_samples`` accepted observations (a naive prior must never
    trigger a cap).  The cap is then ``margin`` times the smallest
    amount of ``r`` among the agent's samples that achieved at least
    ``(1 - flat_tolerance)`` of its best observed performance — the
    cheapest operating point known to be as good as any — floored at
    the controller's allocation floor so the cap can never push the
    agent out of the profiled regime.
    """

    def __init__(
        self,
        flat_threshold: float = 0.08,
        flat_tolerance: float = 0.05,
        margin: float = 1.25,
        min_samples: int = 8,
    ):
        if not 0 < flat_threshold < 1:
            raise ValueError(f"flat_threshold must be in (0, 1), got {flat_threshold}")
        if not 0 < flat_tolerance < 1:
            raise ValueError(f"flat_tolerance must be in (0, 1), got {flat_tolerance}")
        if margin < 1:
            raise ValueError(f"margin must be >= 1, got {margin}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        self.flat_threshold = flat_threshold
        self.flat_tolerance = flat_tolerance
        self.margin = margin
        self.min_samples = min_samples

    def caps_for(
        self,
        elasticities: Sequence[float],
        samples: Optional[Tuple[np.ndarray, np.ndarray]],
        floors: Sequence[float],
    ) -> np.ndarray:
        """Per-resource caps for one agent (``np.inf`` where unsaturated).

        Parameters
        ----------
        elasticities:
            The agent's current re-scaled (sum-to-one) elasticity
            report, shape ``(R,)``.
        samples:
            ``(allocations, performance)`` history the estimate rests
            on — ``(n, R)`` and ``(n,)`` arrays — or ``None`` when the
            agent has no accepted samples yet.
        floors:
            Controller allocation floors, shape ``(R,)``; caps never go
            below them.
        """
        alpha = np.asarray(elasticities, dtype=float)
        floors_arr = np.asarray(floors, dtype=float)
        caps = np.full(alpha.shape, np.inf)
        if samples is None:
            return caps
        allocations, performance = samples
        allocations = np.asarray(allocations, dtype=float)
        performance = np.asarray(performance, dtype=float)
        if performance.size < self.min_samples:
            return caps
        best = float(performance.max())
        if not np.isfinite(best) or best <= 0:
            return caps
        good = performance >= best * (1.0 - self.flat_tolerance)
        if not good.any():
            return caps
        for r in range(alpha.size):
            if alpha[r] > self.flat_threshold:
                continue
            cheapest = float(allocations[good, r].min())
            caps[r] = max(cheapest * self.margin, floors_arr[r])
        return caps
