"""Command-line interface: the REF pipeline without writing Python.

Subcommands (``python -m repro <command> --help`` for details):

* ``profile``  — sweep one benchmark over the Table 1 grid; JSON out.
* ``fit``      — fit a Cobb-Douglas utility to a profile (file or
  benchmark name); reports elasticities and R².
* ``classify`` — the Fig. 9 table: re-scaled elasticities and C/M
  groups for all benchmarks.
* ``allocate`` — run a mechanism on a Table 2 mix (or ad-hoc benchmark
  list) and print the allocation plus its fairness report.
* ``evaluate`` — the four §5.5 mechanisms side by side on one mix
  (one Fig. 13/14 row).
* ``spl``      — the §4.3 strategic analysis for an N-agent population.
* ``fit-suite`` — fit all 28 benchmarks and save the suite as JSON
  (consumed by ``allocate --fits``).
* ``cosim``    — co-simulate a mix on the shared machine under enforced
  shares (choose the mechanism, DRAM policy and cache mode).
* ``dynamic`` — run the fault-tolerant closed-loop reallocation service
  (§4.4) with agent churn and injected measurement faults; prints the
  event log counters and the final enforced allocation.
* ``serve`` — run the asyncio HTTP allocation service (`repro.serve`):
  agents register, submit measured IPC samples (batched into one
  mechanism solve per epoch) and read back enforced allocations;
  ``/healthz`` and ``/metrics`` included.  Stops cleanly on SIGTERM.
* ``reproduce`` — regenerate any paper figure/table by id.
* ``metrics`` — render a ``--metrics-out`` JSON file (or the live
  registry) as a table, JSON, or Prometheus text exposition.

Every profiler-backed command and ``dynamic`` accept
``--metrics-out FILE`` to dump the run's collected metrics as JSON.

Everything heavy (NumPy, the workload tables, the profilers) imports
lazily: building the parser touches none of it, so ``repro --help`` and
worker spawns stay in the low tens of milliseconds, and each subcommand
pays only for what it runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

def _one_shot_mechanism_names():
    from .core.registry import cli_mechanism_names

    return cli_mechanism_names()


def _controller_mechanism_names():
    from .core.registry import controller_mechanism_names

    return controller_mechanism_names()


def _run_cli_mechanism(name: str, problem):
    """Resolve a CLI mechanism through the registry and run it once.

    The registry import is deferred: building the parser must not touch
    NumPy (the cold-start budget), and a one-shot solve carries no
    epoch state, so no context is passed.
    """
    from .core.registry import create_mechanism

    return create_mechanism(name).solve(problem)


class _LazyChoices:
    """An argparse ``choices`` container that resolves on first use.

    Building the parser must stay import-light (the ``--help``
    cold-start budget); only validating a value or rendering a
    subcommand's help touches the loader, which then imports the real
    table.  Implements the container protocol argparse relies on
    (membership, iteration, ``repr`` for error messages).
    """

    def __init__(self, loader):
        self._loader = loader
        self._values: Optional[tuple] = None

    def _resolve(self) -> tuple:
        if self._values is None:
            self._values = tuple(self._loader())
        return self._values

    def __contains__(self, value) -> bool:
        return value in self._resolve()

    def __iter__(self):
        return iter(self._resolve())

    def __len__(self) -> int:
        return len(self._resolve())

    def __repr__(self) -> str:
        return repr(list(self._resolve()))


def _benchmark_names() -> List[str]:
    from .workloads import BENCHMARKS

    return sorted(BENCHMARKS)


def _mix_names() -> List[str]:
    from .workloads import MIXES

    return sorted(MIXES)


_BENCHMARK_CHOICES = _LazyChoices(_benchmark_names)
_MIX_CHOICES = _LazyChoices(_mix_names)
#: Mechanism names accepted by ``allocate``/``cosim``: the registry's
#: one-shot listing, resolved lazily so the parser builds import-light.
CLI_MECHANISM_NAMES = _LazyChoices(_one_shot_mechanism_names)
#: Mechanisms the closed-loop ``dynamic``/``serve`` controller accepts.
CONTROLLER_MECHANISM_NAMES = _LazyChoices(_controller_mechanism_names)


def _add_pipeline_flags(parser: argparse.ArgumentParser) -> None:
    """Profiling-pipeline knobs shared by every profiler-backed command."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for profiling sweeps (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk profile cache directory (default: $REPRO_CACHE_DIR if set)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk profile cache",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the run's collected metrics as JSON to this path",
    )
    parser.add_argument(
        "--no-fast-kernel", action="store_true",
        help="trace-driven sweeps: use the per-access reference simulator "
        "instead of the stack-distance kernel (bit-identical, slower)",
    )


#: Prior policies for --prior.  Static strings, NOT imported from
#: repro.learning: the parser must build without touching NumPy (the
#: cold-start gate), and repro.learning imports it at module load.
#: tests/test_cli.py asserts this tuple matches learning.PRIOR_NAMES.
CLI_PRIOR_NAMES = ("equal", "centroid")


def _add_learning_flags(parser: argparse.ArgumentParser) -> None:
    """Demand-learning knobs shared by ``dynamic`` and ``serve``."""
    parser.add_argument(
        "--learn-demands", action="store_true",
        help=(
            "learn agent demands online (explore/exploit + demand caps); "
            "serve additionally accepts profile-free registers "
            "(profile: null)"
        ),
    )
    parser.add_argument(
        "--prior", choices=CLI_PRIOR_NAMES, default="equal", metavar="PRIOR",
        help=(
            "starting report for learning agents: equal (naive 1/R) or "
            "centroid (workload-class centroids of past fits)"
        ),
    )


def _resolve_cache_dir(args) -> Optional[str]:
    if args.no_cache:
        return None
    return args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None


def _make_profiler(args):
    """Build the shared profiler from a command's pipeline flags.

    Profiler metrics land on the process-global registry, alongside the
    solver metrics, so one ``--metrics-out`` file captures the run.
    """
    from .obs import global_registry
    from .profiling import OfflineProfiler

    return OfflineProfiler(
        noise_sigma=getattr(args, "noise", 0.01),
        seed=getattr(args, "seed", 2014),
        use_trace_machine=getattr(args, "trace_machine", False),
        use_fast_kernel=not getattr(args, "no_fast_kernel", False),
        trace_instructions=getattr(args, "trace_instructions", 400_000),
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args),
        metrics=global_registry(),
    )


def _export_metrics(args, *registries, spans=None) -> None:
    """Write the merged global + per-component registries to --metrics-out."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from .obs import MetricsRegistry, global_registry, write_json

    merged = MetricsRegistry()
    merged.merge(global_registry())
    for registry in registries:
        merged.merge(registry)
    write_json(merged, path, spans=spans)
    print(f"wrote metrics to {path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REF: resource elasticity fairness (ASPLOS 2014) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="sweep a benchmark over the Table 1 grid")
    profile.add_argument("workload", choices=_BENCHMARK_CHOICES, metavar="WORKLOAD")
    profile.add_argument("--noise", type=float, default=0.01, help="log-space noise sigma")
    profile.add_argument("--seed", type=int, default=2014)
    profile.add_argument("--output", "-o", help="write profile JSON to this path")
    profile.add_argument(
        "--trace-machine", action="store_true",
        help="profile on the detailed trace-driven simulator (default: analytic)",
    )
    profile.add_argument(
        "--trace-instructions", type=int, default=400_000, metavar="N",
        help="instructions per trace-driven point (default: 400000)",
    )
    _add_pipeline_flags(profile)

    fit = sub.add_parser("fit", help="fit a Cobb-Douglas utility")
    source = fit.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=_BENCHMARK_CHOICES)
    source.add_argument("--profile", help="path to a profile JSON")
    fit.add_argument("--json", action="store_true", help="machine-readable output")
    _add_pipeline_flags(fit)

    fit_suite = sub.add_parser(
        "fit-suite", help="fit every benchmark and save the suite to JSON"
    )
    fit_suite.add_argument("output", help="path for the fitted-suite JSON")
    fit_suite.add_argument("--noise", type=float, default=0.01)
    fit_suite.add_argument("--seed", type=int, default=2014)
    _add_pipeline_flags(fit_suite)

    classify = sub.add_parser("classify", help="Fig. 9 elasticity table for all benchmarks")
    classify.add_argument("--json", action="store_true")
    _add_pipeline_flags(classify)

    allocate = sub.add_parser("allocate", help="allocate a mix with one mechanism")
    target = allocate.add_mutually_exclusive_group(required=True)
    target.add_argument("--mix", choices=_MIX_CHOICES)
    target.add_argument("--workloads", help="comma-separated benchmark names")
    allocate.add_argument(
        "--mechanism", choices=CLI_MECHANISM_NAMES, default="ref",
        metavar="MECH",
        help="one-shot mechanism from the registry (default: ref)",
    )
    allocate.add_argument(
        "--capacities",
        help="bandwidth_gbps,cache_kb (default: scaled to the agent count)",
    )
    allocate.add_argument(
        "--fits", help="fitted-suite JSON from `fit-suite` (skips re-profiling)"
    )
    allocate.add_argument("--json", action="store_true")
    _add_pipeline_flags(allocate)

    evaluate = sub.add_parser("evaluate", help="compare the four mechanisms on a mix")
    evaluate.add_argument("mix", choices=_MIX_CHOICES, metavar="MIX")
    _add_pipeline_flags(evaluate)

    spl = sub.add_parser("spl", help="strategic (mis)reporting analysis")
    spl.add_argument("--agents", type=int, default=64)
    spl.add_argument("--strategic", type=int, default=4, help="agents to analyze")
    spl.add_argument("--seed", type=int, default=2014)

    cosim = sub.add_parser(
        "cosim", help="co-simulate a mix on the shared machine under enforced shares"
    )
    cosim.add_argument("mix", choices=_MIX_CHOICES, metavar="MIX")
    cosim.add_argument(
        "--mechanism", choices=CLI_MECHANISM_NAMES, default="ref",
        metavar="MECH",
        help="one-shot mechanism from the registry (default: ref)",
    )
    cosim.add_argument(
        "--policy", choices=["fcfs", "wfq", "stfm"], default="wfq",
        help="DRAM arbitration policy",
    )
    cosim.add_argument(
        "--cache-mode", choices=["partitioned", "shared"], default="partitioned",
        help="'shared' = unpartitioned LLC (the no-enforcement baseline)",
    )
    cosim.add_argument("--instructions", type=int, default=80_000)
    cosim.add_argument("--seed", type=int, default=99)

    dynamic = sub.add_parser(
        "dynamic",
        help="fault-tolerant closed-loop reallocation service (§4.4)",
    )
    dynamic.add_argument(
        "--workloads",
        default="freqmine,dedup",
        help="comma-separated benchmark names (repeats get numeric suffixes)",
    )
    dynamic.add_argument("--epochs", type=int, default=50)
    dynamic.add_argument(
        "--capacities",
        help="bandwidth_gbps,cache_kb (default: 6.4,1024 per agent)",
    )
    dynamic.add_argument("--decay", type=float, default=0.85)
    dynamic.add_argument("--exploration", type=int, default=2, metavar="N")
    dynamic.add_argument("--noise", type=float, default=0.01)
    dynamic.add_argument("--seed", type=int, default=0)
    dynamic.add_argument(
        "--mechanism", choices=CONTROLLER_MECHANISM_NAMES, default="ref",
        metavar="MECH",
        help="per-epoch controller mechanism from the registry "
        "(default: ref, closed form)",
    )
    dynamic.add_argument(
        "--no-batch-refit", action="store_true",
        help="refit each profiler eagerly per sample instead of one "
        "batched fit per epoch (slower; same fits)",
    )
    dynamic.add_argument(
        "--fault-drop", type=float, default=0.0, metavar="P",
        help="probability a measurement is dropped (retried, then skipped)",
    )
    dynamic.add_argument(
        "--fault-non-positive", type=float, default=0.0, metavar="P",
        help="probability a measurement comes back non-positive",
    )
    dynamic.add_argument(
        "--fault-outlier", type=float, default=0.0, metavar="P",
        help="probability a measurement is wildly scaled",
    )
    dynamic.add_argument(
        "--outlier-scale", type=float, default=50.0,
        help="multiplicative distortion of outlier faults",
    )
    dynamic.add_argument(
        "--max-retries", type=int, default=3,
        help="retry budget per measurement for detectable faults",
    )
    dynamic.add_argument(
        "--churn", action="append", default=[], metavar="SPEC",
        help=(
            "membership change, repeatable: EPOCH:add:NAME=BENCHMARK or "
            "EPOCH:remove:NAME"
        ),
    )
    dynamic.add_argument(
        "--events", type=int, default=0, metavar="N",
        help="also print the last N event-log entries",
    )
    dynamic.add_argument("--json", action="store_true")
    dynamic.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the service's metrics (and epoch span trees) as JSON",
    )
    _add_learning_flags(dynamic)

    serve = sub.add_parser(
        "serve",
        help="run the asyncio HTTP allocation service (repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787,
        help="listen port (0 binds an ephemeral port, printed on start)",
    )
    serve.add_argument(
        "--epoch-ms", type=float, default=50.0, metavar="MS",
        help="epoch period = max sample batching delay (default: 50ms)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="flush a sample batch early once it reaches N samples",
    )
    serve.add_argument(
        "--workloads",
        default="freqmine,dedup",
        help="initial agents, comma-separated benchmarks (repeats suffixed)",
    )
    serve.add_argument(
        "--agents",
        metavar="NAME=BENCH,...",
        help=(
            "explicitly named initial agents (overrides --workloads); "
            "used by the shard coordinator to seed cell workers"
        ),
    )
    serve.add_argument(
        "--capacities",
        help="bandwidth_gbps,cache_kb (default: 6.4,1024 per initial agent)",
    )
    serve.add_argument(
        "--cells", type=int, default=1, metavar="N",
        help=(
            "shard the service across N worker subprocesses behind a "
            "hierarchical coordinator (default: 1, a single flat server)"
        ),
    )
    serve.add_argument(
        "--grant-ms", type=float, default=None, metavar="MS",
        help="coordinator capacity-grant period (default: 4x --epoch-ms)",
    )
    serve.add_argument("--decay", type=float, default=0.85)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--mechanism", choices=CONTROLLER_MECHANISM_NAMES, default="ref",
        metavar="MECH",
        help="per-epoch controller mechanism from the registry "
        "(default: ref, closed form; --cells > 1 needs a hierarchical one)",
    )
    serve.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the service's metrics (and epoch span trees) on shutdown",
    )
    _add_learning_flags(serve)

    metrics = sub.add_parser(
        "metrics",
        help="render collected metrics as a table, JSON, or Prometheus text",
    )
    metrics.add_argument(
        "file",
        nargs="?",
        help="metrics JSON written by --metrics-out (default: live registry)",
    )
    metrics.add_argument(
        "--format",
        choices=["table", "json", "prometheus"],
        default="table",
        help="output format (default: table)",
    )

    reproduce = sub.add_parser(
        "reproduce", help="regenerate paper figures/tables (or list them)"
    )
    reproduce.add_argument(
        "artifact",
        nargs="*",
        help=(
            "experiment ids (e.g. fig13 table2); omit or pass 'list' to "
            "enumerate; 'all' runs everything"
        ),
    )
    _add_pipeline_flags(reproduce)

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_profile(args) -> int:
    from . import io
    from .workloads import get_workload

    with _make_profiler(args) as profiler:
        profile = profiler.profile(get_workload(args.workload))
    if args.output:
        io.save_profile(profile, args.output)
        print(f"wrote {profile.n_samples}-point profile to {args.output}")
    else:
        print(json.dumps(profile.as_dict(), indent=2))
    _export_metrics(args)
    return 0


def _cmd_fit(args) -> int:
    from .profiling import Profile
    from .workloads import get_workload

    if args.profile:
        with open(args.profile) as handle:
            profile = Profile.from_dict(json.load(handle))
        name = profile.workload_name
    else:
        with _make_profiler(args) as profiler:
            profile = profiler.profile(get_workload(args.workload))
        name = args.workload
    fit = profile.fit()
    alpha = fit.rescaled_elasticities
    if args.json:
        print(
            json.dumps(
                {
                    "workload": name,
                    "scale": fit.utility.scale,
                    "elasticities": list(fit.elasticities),
                    "rescaled_elasticities": alpha.tolist(),
                    "r_squared": fit.r_squared,
                }
            )
        )
    else:
        print(
            f"{name}: u = {fit.utility.scale:.4f} * bw^{fit.elasticities[0]:.4f} "
            f"* cache^{fit.elasticities[1]:.4f}"
        )
        print(f"re-scaled: a_mem = {alpha[0]:.3f}, a_cache = {alpha[1]:.3f}")
        print(f"R^2 = {fit.r_squared:.3f} over {fit.n_samples} samples")
    _export_metrics(args)
    return 0


def _cmd_classify(args) -> int:
    from .core import classify_many

    with _make_profiler(args) as profiler:
        prefs = classify_many(profiler.fit_suite())
    _export_metrics(args)
    if args.json:
        print(
            json.dumps(
                {
                    name: {
                        "a_mem": pref.memory_elasticity,
                        "a_cache": pref.cache_elasticity,
                        "group": pref.group.value,
                    }
                    for name, pref in prefs.items()
                }
            )
        )
        return 0
    print(f"{'benchmark':<20} {'a_cache':>8} {'a_mem':>8} {'group':>6}")
    for name, pref in prefs.items():
        print(
            f"{name:<20} {pref.cache_elasticity:>8.3f} "
            f"{pref.memory_elasticity:>8.3f} {pref.group.value:>6}"
        )
    return 0


def _cmd_fit_suite(args) -> int:
    from . import io

    with _make_profiler(args) as profiler:
        fits = profiler.fit_suite()
    io.save_json(io.suite_to_dict(fits), args.output)
    print(f"wrote {len(fits)} fits to {args.output}")
    _export_metrics(args)
    return 0


def _build_problem(args) -> AllocationProblem:
    from .workloads import BENCHMARKS, get_mix, get_workload, problem_from_fits
    from .workloads.mixes import WorkloadMix

    if args.mix:
        mix = get_mix(args.mix)
    else:
        members = tuple(name.strip() for name in args.workloads.split(",") if name.strip())
        for member in members:
            if member not in BENCHMARKS:
                raise SystemExit(f"unknown benchmark {member!r}")
        counts = "-".join(
            part
            for part in (
                f"{sum(1 for m in members if BENCHMARKS[m].expected_group == 'C')}C",
                f"{sum(1 for m in members if BENCHMARKS[m].expected_group == 'M')}M",
            )
            if not part.startswith("0")
        )
        mix = WorkloadMix("adhoc", members, counts or "0C")
    if getattr(args, "fits", None):
        from . import io

        suite = io.suite_from_dict(io.load_json(args.fits))
        missing = [m for m in set(mix.members) if m not in suite]
        if missing:
            raise SystemExit(f"fits file lacks entries for: {sorted(missing)}")
        fits = {m: suite[m] for m in set(mix.members)}
    else:
        with _make_profiler(args) as profiler:
            fits = profiler.fit_suite(get_workload(m) for m in set(mix.members))
    capacities = None
    if args.capacities:
        parts = args.capacities.split(",")
        if len(parts) != 2:
            raise SystemExit("--capacities expects 'bandwidth_gbps,cache_kb'")
        capacities = (float(parts[0]), float(parts[1]))
    return problem_from_fits(mix, fits, capacities)


def _cmd_allocate(args) -> int:
    from .core import check_fairness, weighted_system_throughput
    from .workloads import RESOURCE_NAMES

    problem = _build_problem(args)
    allocation = _run_cli_mechanism(args.mechanism, problem)
    report = check_fairness(allocation, pe_rtol=1e-2)
    _export_metrics(args)
    if args.json:
        print(
            json.dumps(
                {
                    "mechanism": args.mechanism,
                    "capacities": dict(zip(RESOURCE_NAMES, problem.capacities)),
                    "allocation": allocation.as_dict(),
                    "weighted_system_throughput": weighted_system_throughput(allocation),
                    "sharing_incentives": report.sharing_incentives,
                    "envy_free": report.envy_free,
                    "pareto_efficient": report.pareto_efficient,
                }
            )
        )
        return 0
    print(allocation.summary())
    print()
    print(report.summary())
    print(f"\nweighted system throughput: {weighted_system_throughput(allocation):.4f}")
    return 0


def _cmd_evaluate(args) -> int:
    from .core import check_fairness, weighted_system_throughput
    from .optimize import MECHANISMS
    from .workloads import get_mix, get_workload, problem_from_fits

    mix = get_mix(args.mix)
    with _make_profiler(args) as profiler:
        fits = profiler.fit_suite(get_workload(m) for m in set(mix.members))
    problem = problem_from_fits(mix, fits)
    print(f"{args.mix} ({mix.characterization}), {problem.n_agents} agents")
    for name, mechanism in MECHANISMS.items():
        allocation = mechanism(problem)
        report = check_fairness(allocation, pe_rtol=1e-2)
        print(
            f"{name:<38} throughput {weighted_system_throughput(allocation):7.4f}  "
            f"SI={report.sharing_incentives} EF={report.envy_free}"
        )
    _export_metrics(args)
    return 0


def _cmd_spl(args) -> int:
    import numpy as np

    from .core.mechanism import Agent, AllocationProblem
    from .core.spl import best_response
    from .core.utility import CobbDouglasUtility

    rng = np.random.default_rng(args.seed)
    agents = [
        Agent(f"t{i}", CobbDouglasUtility(rng.uniform(0.05, 1.0, size=2)))
        for i in range(args.agents)
    ]
    problem = AllocationProblem(agents, (128.0, 96.0 * 1024))
    alpha = problem.rescaled_alpha_matrix()
    worst = 0.0
    for i in range(min(args.strategic, args.agents)):
        others = alpha.sum(axis=0) - alpha[i]
        response = best_response(alpha[i], others, problem.capacity_vector)
        worst = max(worst, response.gain)
        print(
            f"agent t{i}: true {np.round(alpha[i], 3).tolist()} "
            f"best report {np.round(response.reported_alpha, 3).tolist()} "
            f"gain {response.gain * 100:.4f}%"
        )
    print(f"worst manipulation gain across {min(args.strategic, args.agents)} agents: "
          f"{worst * 100:.4f}%")
    return 0


def _cmd_cosim(args) -> int:
    from .profiling import OfflineProfiler
    from .sched import build_agent_shares
    from .sim import CacheConfig, DramConfig, PlatformConfig, SharedMachine
    from .workloads import get_mix, get_workload, problem_from_fits

    profiler = OfflineProfiler()
    mix = get_mix(args.mix)
    fits = {m: profiler.fit(get_workload(m)) for m in set(mix.members)}
    problem = problem_from_fits(mix, fits)
    workload_of = dict(zip(mix.agent_names(), (get_workload(m) for m in mix.members)))

    # Size the shared machine to the mix: enough ways for everyone,
    # a channel matching the allocated aggregate bandwidth.
    ways = 16 if problem.n_agents <= 8 else 32
    platform = PlatformConfig(
        l2=CacheConfig(size_kb=int(problem.capacities[1]), ways=ways, latency_cycles=20),
        dram=DramConfig(
            bandwidth_gbps=problem.capacities[0], channel_gbps=problem.capacities[0]
        ),
    )
    allocation = _run_cli_mechanism(args.mechanism, problem)
    shares = build_agent_shares(allocation, platform.l2, workload_of)
    machine = SharedMachine(platform, n_instructions=args.instructions)
    result = machine.run(
        shares, seed=args.seed, policy=args.policy, cache_mode=args.cache_mode
    )
    alone = {s.name: machine.run_alone(s, seed=args.seed).ipc[s.name] for s in shares}
    slowdowns = result.slowdowns(alone)
    print(
        f"{args.mix} under {args.mechanism} shares, policy={args.policy}, "
        f"cache={args.cache_mode}"
    )
    print(
        f"{'agent':<20} {'IPC':>8} {'alone':>8} {'slowdown':>9} "
        f"{'latency ns':>11} {'GB/s':>7}"
    )
    for share in shares:
        name = share.name
        print(
            f"{name:<20} {result.ipc[name]:>8.3f} {alone[name]:>8.3f} "
            f"{slowdowns[name]:>9.2f} {result.mean_latency_ns[name]:>11.1f} "
            f"{result.achieved_bandwidth_gbps[name]:>7.2f}"
        )
    print(f"unfairness index (max/min slowdown): {result.unfairness_index(slowdowns):.3f}")
    return 0


def _parse_churn_specs(specs, lookup_workload):
    """Parse ``EPOCH:add:NAME=BENCH`` / ``EPOCH:remove:NAME`` flags."""
    from .dynamic import ChurnEvent, ChurnSchedule

    events = []
    for spec in specs:
        parts = spec.split(":", 2)
        if len(parts) != 3:
            raise SystemExit(
                f"bad --churn spec {spec!r}: expected EPOCH:add:NAME=BENCHMARK "
                f"or EPOCH:remove:NAME"
            )
        epoch_text, action, rest = parts
        try:
            epoch = int(epoch_text)
        except ValueError:
            raise SystemExit(f"bad --churn epoch {epoch_text!r}") from None
        if action == "add":
            if "=" not in rest:
                raise SystemExit(
                    f"bad --churn spec {spec!r}: add needs NAME=BENCHMARK"
                )
            name, benchmark = rest.split("=", 1)
            events.append(ChurnEvent(epoch, "add", name, lookup_workload(benchmark)))
        elif action == "remove":
            events.append(ChurnEvent(epoch, "remove", rest))
        else:
            raise SystemExit(f"bad --churn action {action!r}: expected add or remove")
    return ChurnSchedule(events)


def _lookup_benchmark(benchmark: str):
    from .workloads import BENCHMARKS, get_workload

    if benchmark not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {benchmark!r}")
    return get_workload(benchmark)


def _parse_workload_set(text: str):
    """``--workloads`` value -> {agent_name: workload} (repeats suffixed)."""
    members = [name.strip() for name in text.split(",") if name.strip()]
    if not members:
        raise SystemExit("--workloads needs at least one benchmark")
    workloads = {}
    for member in members:
        workload = _lookup_benchmark(member)
        name = member
        suffix = 2
        while name in workloads:
            name = f"{member}_{suffix}"
            suffix += 1
        workloads[name] = workload
    return workloads


def _serve_agent_benchmarks(args) -> "dict[str, str]":
    """Initial agents for ``serve`` as ``{agent_name: benchmark_name}``.

    ``--agents name=bench,...`` wins (the shard coordinator uses it to
    seed cell workers with exact names); otherwise ``--workloads``
    derives names the same way ``_parse_workload_set`` does (repeats
    suffixed ``_2``, ``_3``, ...).
    """
    from .workloads import BENCHMARKS

    agents: "dict[str, str]" = {}
    if args.agents:
        for spec in args.agents.split(","):
            spec = spec.strip()
            if not spec:
                continue
            name, sep, benchmark = spec.partition("=")
            if not sep or not name or not benchmark:
                raise SystemExit(f"--agents expects NAME=BENCHMARK, got {spec!r}")
            if name in agents:
                raise SystemExit(f"--agents names agent {name!r} twice")
            if benchmark not in BENCHMARKS:
                raise SystemExit(f"unknown benchmark {benchmark!r}")
            agents[name] = benchmark
        if not agents:
            raise SystemExit("--agents needs at least one NAME=BENCHMARK entry")
        return agents
    members = [name.strip() for name in args.workloads.split(",") if name.strip()]
    if not members:
        raise SystemExit("--workloads needs at least one benchmark")
    for member in members:
        if member not in BENCHMARKS:
            raise SystemExit(f"unknown benchmark {member!r}")
        name = member
        suffix = 2
        while name in agents:
            name = f"{member}_{suffix}"
            suffix += 1
        agents[name] = member
    return agents


def _parse_capacities(text: Optional[str], n_agents: int):
    if text:
        parts = text.split(",")
        if len(parts) != 2:
            raise SystemExit("--capacities expects 'bandwidth_gbps,cache_kb'")
        return (float(parts[0]), float(parts[1]))
    return (6.4 * n_agents, 1024.0 * n_agents)


def _cmd_dynamic(args) -> int:
    from .dynamic import DynamicAllocator, FaultSpec

    workloads = _parse_workload_set(args.workloads)
    capacities = _parse_capacities(args.capacities, len(workloads))
    faults = FaultSpec(
        drop=args.fault_drop,
        non_positive=args.fault_non_positive,
        outlier=args.fault_outlier,
        outlier_scale=args.outlier_scale,
        max_retries=args.max_retries,
    )
    allocator = DynamicAllocator(
        workloads,
        capacities=capacities,
        decay=args.decay,
        exploration_samples=args.exploration,
        noise_sigma=args.noise,
        seed=args.seed,
        faults=faults if faults.is_active else None,
        mechanism=args.mechanism,
        batch_refit=not args.no_batch_refit,
        learn_demands=args.learn_demands,
        prior=args.prior,
    )
    churn = _parse_churn_specs(args.churn, _lookup_benchmark)
    result = allocator.run(args.epochs, churn=churn if churn.events else None)
    feasible = result.all_feasible()
    counters = result.counters
    _export_metrics(
        args, allocator.metrics, spans=allocator.tracer.spans_as_dicts()
    )
    if args.json:
        final = result.records[-1]
        print(
            json.dumps(
                {
                    "epochs": result.n_epochs,
                    "feasible": feasible,
                    "learn_demands": bool(args.learn_demands),
                    "agents": list(result.agent_names),
                    "counters": counters,
                    "final_allocation": (final.enforced or final.allocation).as_dict(),
                }
            )
        )
    else:
        print(result.summary())
        print()
        print("final enforced allocation:")
        final = result.records[-1]
        print((final.enforced or final.allocation).summary())
        if args.events:
            print()
            print(f"last {min(args.events, len(result.events))} events:")
            for event in result.events[-args.events:]:
                print(f"  {event}")
        # Greppable health line for CI smoke jobs.
        rejected = counters.get("sample_rejected_non_positive", 0) + counters.get(
            "sample_rejected_outlier", 0
        )
        fallbacks = counters.get("fit_fallback", 0) + counters.get("allocation_fallback", 0)
        print(
            f"dynamic-service: epochs={result.n_epochs} feasible={feasible} "
            f"retries={counters.get('measurement_retry', 0)} "
            f"skipped={counters.get('measurement_skipped', 0)} "
            f"rejected={rejected} fallbacks={fallbacks}"
        )
    return 0 if feasible else 1


def _serve_event_loop(server, banner: str) -> None:
    """Run an HttpServerBase server until SIGINT/SIGTERM, printing ``banner``."""
    import asyncio
    import signal

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        await server.start()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops: rely on KeyboardInterrupt
        print(
            f"serve: listening on http://{server.host}:{server.port} {banner}",
            flush=True,
        )
        try:
            await server.wait_stopped()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - windows fallback
        pass


def _cmd_serve(args) -> int:
    if args.epoch_ms <= 0:
        raise SystemExit("--epoch-ms must be positive")
    if args.max_batch < 1:
        raise SystemExit("--max-batch must be >= 1")
    if args.cells < 1:
        raise SystemExit("--cells must be >= 1")
    benchmarks = _serve_agent_benchmarks(args)
    capacities = _parse_capacities(args.capacities, len(benchmarks))

    if args.cells > 1:
        # Sharded: a hierarchical coordinator over N worker subprocesses
        # (repro.serve.shard).  Capacity splits are Eq. 13 on aggregate
        # elasticities; the within-cell mechanism must compose with that
        # split, which is what the registry's hierarchical flag records.
        from .core.registry import hierarchical_mechanism_names
        from .serve import ShardCoordinator

        hierarchical = hierarchical_mechanism_names()
        if args.mechanism not in hierarchical:
            raise SystemExit(
                f"--cells > 1 requires a hierarchical mechanism "
                f"({', '.join(hierarchical)}); {args.mechanism!r} does not "
                f"compose with the Eq. 13 capacity split"
            )
        if len(benchmarks) < args.cells:
            raise SystemExit(
                f"--cells {args.cells} needs at least {args.cells} initial "
                f"agents (got {len(benchmarks)}); every cell must start "
                "non-empty"
            )
        coordinator = ShardCoordinator(
            benchmarks,
            capacities=capacities,
            cells=args.cells,
            host=args.host,
            port=args.port,
            epoch_ms=args.epoch_ms,
            max_batch=args.max_batch,
            grant_ms=args.grant_ms,
            decay=args.decay,
            seed=args.seed,
            mechanism=args.mechanism,
            learn_demands=args.learn_demands,
            prior=args.prior,
        )
        _serve_event_loop(
            coordinator,
            f"cells={args.cells} epoch_ms={args.epoch_ms:g} "
            f"grant_ms={coordinator.grant_ms:g} agents={len(benchmarks)}",
        )
        _export_metrics(args, coordinator.metrics)
        summary = coordinator.summary_line()
        print(summary, flush=True)
        return 0 if "feasible=True" in summary else 1

    from .dynamic import DynamicAllocator
    from .serve import AllocationServer, BatchPolicy
    from .workloads import get_workload

    workloads = {name: get_workload(bench) for name, bench in benchmarks.items()}
    allocator = DynamicAllocator(
        workloads,
        capacities=capacities,
        decay=args.decay,
        seed=args.seed,
        mechanism=args.mechanism,
        learn_demands=args.learn_demands,
        prior=args.prior,
    )
    server = AllocationServer(
        allocator,
        policy=BatchPolicy(max_delay=args.epoch_ms / 1000.0, max_batch=args.max_batch),
        host=args.host,
        port=args.port,
    )
    _serve_event_loop(
        server,
        f"epoch_ms={args.epoch_ms:g} max_batch={args.max_batch} "
        f"agents={len(allocator.agent_names)}",
    )
    _export_metrics(args, allocator.metrics, spans=allocator.tracer.spans_as_dicts())
    summary = server.summary_line()
    print(summary, flush=True)
    return 0 if "feasible=True" in summary else 1


def _cmd_metrics(args) -> int:
    from .obs import (
        MetricsRegistry,
        global_registry,
        render_table,
        to_json,
        to_prometheus,
    )

    if args.file:
        with open(args.file) as handle:
            registry = MetricsRegistry.from_dict(json.load(handle))
    else:
        registry = global_registry()
        # Keep the no-file view non-empty (and scrapeable) even in a
        # fresh process: expose the package version as build info.
        from . import __version__

        registry.gauge(
            "repro_build_info", help="Package build metadata.", version=__version__
        ).set(1.0)
    if args.format == "json":
        print(to_json(registry))
    elif args.format == "prometheus":
        print(to_prometheus(registry), end="")
    else:
        print(render_table(registry))
    return 0


def _cmd_reproduce(args) -> int:
    from .experiments import list_experiments, run_experiment_batch

    artifacts = args.artifact or ["list"]
    if artifacts == ["list"]:
        print("available experiments:")
        for experiment_id in list_experiments():
            print(f"  {experiment_id}")
        return 0
    targets = list_experiments() if "all" in artifacts else artifacts
    with _make_profiler(args) as profiler:
        try:
            results = run_experiment_batch(targets, profiler=profiler)
        except KeyError as error:
            raise SystemExit(str(error)) from None
        for experiment_id in targets:
            print(results[experiment_id].text)
            print()
        # Greppable provenance line for CI cache assertions; stderr so
        # stdout stays byte-comparable across serial/parallel/warm runs.
        print(f"[profiler] {profiler.stats.summary()}", file=sys.stderr)
    _export_metrics(args)
    return 0


_COMMANDS = {
    "profile": _cmd_profile,
    "fit": _cmd_fit,
    "fit-suite": _cmd_fit_suite,
    "cosim": _cmd_cosim,
    "dynamic": _cmd_dynamic,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "reproduce": _cmd_reproduce,
    "classify": _cmd_classify,
    "allocate": _cmd_allocate,
    "evaluate": _cmd_evaluate,
    "spl": _cmd_spl,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; point the fd at
        # /dev/null so interpreter shutdown doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
