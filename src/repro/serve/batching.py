"""Sample coalescing: N concurrent clients, one mechanism solve.

The allocation server never solves the mechanism per request.  Incoming
samples land in a :class:`SampleBatcher`; an epoch tick — one
``DynamicAllocator.step`` — is triggered by whichever of two policy
limits is hit first:

* **max-batch** — the batch reached ``max_batch`` samples, so a solve
  is already fully amortized; flush immediately, don't make the first
  submitter wait out the delay window.
* **max-delay** — the *oldest* pending sample has waited ``max_delay``
  seconds; flush so a lone client still sees its measurement folded in
  within one epoch period.

Both checks are pure functions of (pending count, oldest age), so the
policy is unit-testable with a fake clock; the asyncio server merely
feeds it ``loop.time()``.  An idle service (no pending samples) ticks
nothing at all — the mechanism-solve rate is bounded by
``min(sample rate, 1 / max_delay)`` and is *independent of the number
of clients*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, TypeVar

__all__ = ["BatchPolicy", "SampleBatcher"]

T = TypeVar("T")


@dataclass(frozen=True)
class BatchPolicy:
    """When to turn pending samples into an epoch tick.

    Parameters
    ----------
    max_delay:
        Upper bound, in seconds, on how long the oldest queued sample
        may wait before a tick (the service's epoch period).
    max_batch:
        Flush as soon as this many samples are pending, regardless of
        age.
    """

    max_delay: float = 0.05
    max_batch: int = 64

    def __post_init__(self) -> None:
        if not self.max_delay > 0:
            raise ValueError(f"max_delay must be positive, got {self.max_delay}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")

    def should_flush(self, pending: int, oldest_age: float) -> bool:
        """True when a batch of ``pending`` samples, the oldest of which
        has waited ``oldest_age`` seconds, must be flushed now."""
        if pending <= 0:
            return False
        return pending >= self.max_batch or oldest_age >= self.max_delay


class SampleBatcher(Generic[T]):
    """Accumulates items until the policy triggers a flush.

    The batcher is clock-agnostic: callers pass ``now`` (any monotonic
    seconds value) into :meth:`add` and :meth:`poll`.  ``add`` returns
    the flushed batch when *this* item tripped the max-batch limit;
    ``poll`` returns the flushed batch when the max-delay limit expired.
    Exactly one of the two returns any given batch.
    """

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._pending: List[T] = []
        self._oldest_at: Optional[float] = None
        #: Total items ever enqueued / batches ever flushed.
        self.total_items = 0
        self.total_batches = 0

    @property
    def pending(self) -> int:
        """Number of samples waiting for the next tick."""
        return len(self._pending)

    def oldest_age(self, now: float) -> float:
        """Seconds the oldest pending sample has waited (0 when empty)."""
        if self._oldest_at is None:
            return 0.0
        return max(0.0, now - self._oldest_at)

    def next_deadline(self, now: float) -> Optional[float]:
        """Absolute time the max-delay limit expires, or None when idle."""
        if self._oldest_at is None:
            return None
        return self._oldest_at + self.policy.max_delay

    def add(self, item: T, now: float) -> Optional[List[T]]:
        """Enqueue ``item``; returns the batch if max-batch tripped."""
        if not self._pending:
            self._oldest_at = now
        self._pending.append(item)
        self.total_items += 1
        if len(self._pending) >= self.policy.max_batch:
            return self.flush()
        return None

    def add_many(self, items: List[T], now: float) -> Optional[List[T]]:
        """Enqueue a bulk array in one call; at most one flush results.

        Order-equivalent to calling :meth:`add` per item, but the
        max-batch check runs once at the end: a bulk array that crosses
        the limit flushes as ONE (possibly oversized) batch instead of
        splintering into several epoch ticks — the whole point of bulk
        ingest is one round trip, one tick.  An empty array is a no-op.
        """
        if not items:
            return None
        if not self._pending:
            self._oldest_at = now
        self._pending.extend(items)
        self.total_items += len(items)
        if len(self._pending) >= self.policy.max_batch:
            return self.flush()
        return None

    def poll(self, now: float) -> Optional[List[T]]:
        """Returns the batch if the max-delay limit has expired."""
        if self.policy.should_flush(len(self._pending), self.oldest_age(now)):
            return self.flush()
        return None

    def flush(self) -> List[T]:
        """Unconditionally hand over whatever is pending (may be empty).

        Used by the policy triggers above and by server shutdown, which
        folds any last in-flight samples into a final epoch.
        """
        batch, self._pending = self._pending, []
        self._oldest_at = None
        if batch:
            self.total_batches += 1
        return batch
