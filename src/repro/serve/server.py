"""The asyncio HTTP allocation server.

A deliberately small HTTP/1.1 implementation on ``asyncio.start_server``
(stdlib only, persistent connections) wrapping a
:class:`~repro.dynamic.controller.DynamicAllocator` as a long-lived
service:

========  =================  ==============================================
method    path               meaning
========  =================  ==============================================
POST      ``/v1/agents``     register / deregister an agent (churn)
POST      ``/v1/samples``    submit one measured (bundle, IPC) sample
POST      ``/v1/capacity``   apply a hierarchical capacity grant (sharding)
GET       ``/v1/allocation`` the current epoch's enforced allocation
GET       ``/healthz``       liveness + service summary
GET       ``/metrics``       Prometheus text exposition (repro.obs)
========  =================  ==============================================

Connections are HTTP/1.1 *persistent*: a client loops many requests
over one socket (``Connection: keep-alive``, the 1.1 default) and the
server only closes on an explicit ``Connection: close``, an idle
timeout, or a request it could not parse (after a malformed request the
byte stream has no trustworthy framing, so that connection — and only
that connection — is poisoned and closed).  ``POST /v1/samples``
additionally accepts a bulk body (``{"samples": [...]}``) so one round
trip carries an epoch's worth of measurements, acknowledged
per-sample.  Connection reuse is observable as
``repro_serve_connections_total`` and the
``repro_serve_requests_per_connection`` histogram.

Samples are coalesced by a :class:`~repro.serve.batching.SampleBatcher`;
an epoch tick applies the batch through
``DynamicAllocator.observe_sample`` and solves the mechanism exactly
once (``step(measure=False)``), so the solve rate is bounded by the
batch policy, not by the client count.  Agent churn triggers an
immediate tick so ``GET /v1/allocation`` reflects the new membership.
``POST /v1/capacity`` is the hierarchical hook: a shard coordinator
(:mod:`repro.serve.shard`) re-slices the global capacity vector across
cell workers each epoch, and a grant both updates this cell's
capacities and reports its aggregate elasticities back in one round
trip.

With the default ``ref`` mechanism every tick runs the closed-form
proportional-elasticity allocator (Eq. 13) and one *batched*
Cobb-Douglas refit covering all dirty profilers, so tick latency is a
couple of NumPy calls regardless of agent count; SLSQP only enters for
the constrained mechanisms (``max-welfare-fair``, ``equal-slowdown``),
warm-started from the previous epoch's enforced shares.  ``/healthz``
reports which mechanism the allocator runs.

Everything is single-threaded inside the event loop — route handlers
and epoch ticks never run concurrently, so the allocator needs no
locking.  Requests are counted and timed into a
:class:`~repro.obs.MetricsRegistry` (``repro_serve_*``), and every
epoch tick produces an ``epoch`` span via the allocator's tracer.

The read path is *snapshot-served*: ``GET /v1/allocation`` and
``GET /healthz`` are rendered to JSON bytes at most once per epoch (the
cache is invalidated by every epoch tick, which covers churn and
capacity grants too) and answered as a cached-bytes write — not a
dataclass→dict→``json.dumps`` per request.  The staleness bound is one
epoch; ``GET /metrics`` always renders live.

The HTTP plumbing (request parsing, limits, dispatch, error mapping,
request metrics) lives in :class:`HttpServerBase` so the shard
coordinator can speak the same dialect without duplicating it.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable, Dict, Optional, Tuple

from ..dynamic.controller import DynamicAllocator, EpochRecord
from ..obs import MetricsRegistry, global_registry, to_prometheus
from ..workloads import BENCHMARKS, get_workload
from .batching import BatchPolicy, SampleBatcher
from .protocol import (
    AgentRequest,
    AgentResponse,
    AllocationResponse,
    BulkSampleRequest,
    BulkSampleResponse,
    CapacityRequest,
    CapacityResponse,
    ErrorResponse,
    HealthResponse,
    ProtocolError,
    SampleOutcome,
    SampleRequest,
    SampleResponse,
    parse_json,
)

__all__ = ["AllocationServer", "HttpServerBase", "ServerThread"]

#: Hard request-parsing limits; anything beyond them is a 4xx, not a crash.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Batch-size histogram buckets (samples per epoch tick).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Requests-per-connection histogram buckets (keep-alive reuse depth).
_CONNECTION_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

#: Seconds a fresh connection may take to deliver its first request.
FIRST_REQUEST_TIMEOUT = 30.0

#: Default seconds an idle persistent connection is held open between
#: requests before the server closes it.
DEFAULT_IDLE_TIMEOUT = 30.0


class _HttpError(Exception):
    """An error with a definite HTTP status, raised during parsing/routing."""

    def __init__(self, status: int, error: str, detail: str = ""):
        super().__init__(detail or error)
        self.status = status
        self.error = error
        self.detail = detail


class HttpServerBase:
    """Shared asyncio HTTP/1.1 plumbing for the serve-layer processes.

    Subclasses provide :meth:`_routes` (path -> (method, handler)) and
    may override the lifecycle hooks:

    * :meth:`_on_start` — runs before the socket binds (e.g. epoch 0,
      worker spawning);
    * :meth:`_tick_loop` — the background task started after binding
      (batch polling, capacity-grant rounds); the default sleeps
      forever;
    * :meth:`_on_stop` — runs after the listener closed (final flush,
      worker teardown).

    Handlers are sync or async callables ``body -> (status, payload,
    content_type)``; async handlers let a proxying subclass await
    upstream workers without blocking the dispatcher contract.  A
    handler may return pre-rendered ``bytes`` as the payload (the
    snapshot read path) — they are written as-is.  All request hygiene
    (size limits, timeouts, error mapping, the
    ``repro_serve_requests_total`` / request-latency metrics) lives
    here, so every server speaking this dialect gets the same hardening.

    Connections are persistent by default (HTTP/1.1): each connection
    handler loops reading requests until the client sends
    ``Connection: close``, goes quiet for ``idle_timeout`` seconds, or
    sends bytes that cannot be parsed (the framing is then untrusted,
    so the connection is answered with its 4xx and closed — poisoning
    only itself).  Snapshot byte caching for the hot read routes is
    provided by :meth:`_snapshot` / :meth:`_invalidate_snapshots`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    ):
        self.host = host
        self.port = int(port)
        self.metrics = metrics if metrics is not None else global_registry()
        if not idle_timeout > 0:
            raise ValueError(f"idle_timeout must be positive, got {idle_timeout}")
        self.idle_timeout = float(idle_timeout)
        self._server: Optional[asyncio.AbstractServer] = None
        self._ticker: Optional[asyncio.Task] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at = 0.0
        self._stopped = False
        #: Route -> rendered response bytes, dropped by _invalidate_snapshots.
        self._snapshots: Dict[str, bytes] = {}
        #: Writers of currently open connections, for graceful shutdown.
        self._open_writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Run :meth:`_on_start`, bind the socket, start the tick loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self._on_start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self._loop.time()
        self._ticker = asyncio.create_task(self._tick_loop())

    def request_stop(self) -> None:
        """Signal the server to stop (safe to call from a signal handler)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def request_stop_threadsafe(self) -> None:
        """Like :meth:`request_stop`, callable from any thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_stop)

    async def wait_stopped(self) -> None:
        """Block until :meth:`request_stop` (e.g. SIGTERM) is called."""
        assert self._stop_event is not None, "server not started"
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop listening, then run :meth:`_on_stop`."""
        if self._stopped:
            return
        self._stopped = True
        self.request_stop()
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge parked keep-alive connections to exit before the loop is
        # torn down: closing the transport wakes their pending reads
        # with EOF, so the handlers return instead of being cancelled.
        for open_writer in list(self._open_writers):
            open_writer.close()
        for _ in range(100):
            if not self._open_writers:
                break
            await asyncio.sleep(0.01)
        await self._on_stop()

    async def _on_start(self) -> None:
        """Hook: runs inside :meth:`start`, before the socket binds."""

    async def _on_stop(self) -> None:
        """Hook: runs inside :meth:`stop`, after the listener closed."""

    async def _tick_loop(self) -> None:
        """Background task started after binding; default: do nothing."""
        while True:  # pragma: no cover - trivial default
            await asyncio.sleep(3600.0)

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve a persistent connection: loop requests until close.

        The loop ends when the client opts out (``Connection: close`` or
        HTTP/1.0 without keep-alive), goes idle past ``idle_timeout``,
        disconnects, or sends something unparseable — a parse failure is
        answered with its 4xx and then the connection is closed, because
        the request framing can no longer be trusted.
        """
        self.metrics.counter(
            "repro_serve_connections_total",
            help="TCP connections accepted by the HTTP listener.",
        ).inc()
        handled = 0
        self._open_writers.add(writer)
        try:
            while True:
                started = self._loop.time() if self._loop is not None else 0.0
                timeout = (
                    FIRST_REQUEST_TIMEOUT if handled == 0 else self.idle_timeout
                )
                try:
                    method, path, body, keep_alive = await asyncio.wait_for(
                        self._read_request(reader), timeout=timeout
                    )
                except _HttpError as error:
                    # Counted before the write so a client that has read
                    # the response observes the counter already bumped.
                    handled += 1
                    self._count_request("unparsed", error.status, started)
                    await self._write_json(
                        writer,
                        error.status,
                        ErrorResponse(error.error, error.detail).as_dict(),
                        close=True,
                    )
                    return  # framing untrusted: poison only this connection
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.TimeoutError,
                ):
                    # Idle keep-alive expiry or a client that went away
                    # between requests: nothing to answer, and no
                    # request to count.
                    return
                route = path if path in self._routes() else "unknown"
                status, payload, content_type = await self._dispatch(
                    method, path, body
                )
                handled += 1
                self._count_request(route, status, started)
                close = not keep_alive
                if (
                    isinstance(payload, (bytes, bytearray))
                    or content_type != "application/json"
                ):
                    await self._write_raw(
                        writer, status, payload, content_type, close=close
                    )
                else:
                    await self._write_json(writer, status, payload, close=close)
                if not keep_alive:
                    return
        except (ConnectionError, BrokenPipeError):
            pass  # response could not be delivered; the client's problem
        except asyncio.CancelledError:
            # Event-loop teardown with the connection parked between
            # requests: exit quietly (3.11's asyncio streams logs a
            # cancelled connection handler as an unhandled error).
            pass
        finally:
            self._open_writers.discard(writer)
            self.metrics.histogram(
                "repro_serve_requests_per_connection",
                help="Requests served over each connection before it closed.",
                buckets=_CONNECTION_BUCKETS,
            ).observe(handled)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    def _count_request(self, route: str, status: int, started: float) -> None:
        """Count one handled request into the request metrics."""
        if self._loop is None:
            return
        self.metrics.counter(
            "repro_serve_requests_total",
            help="HTTP requests handled, by route and status.",
            route=route,
            status=str(status),
        ).inc()
        self.metrics.histogram(
            "repro_serve_request_latency_seconds",
            help="Server-side request handling latency.",
            route=route,
        ).observe(self._loop.time() - started)

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        """One header/request line, with stream-limit overruns mapped to 431.

        ``StreamReader.readline`` raises ``ValueError`` (wrapping
        ``LimitOverrunError``) when a line exceeds the reader's buffer
        limit.  Left uncaught that escaped ``_handle_connection``
        entirely: the client hung with no response and the server task
        died with an unhandled traceback.  A header that does not fit is
        a client error, not a server crash.
        """
        try:
            return await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise _HttpError(
                431, "header_too_large", f"request line or header too large: {error}"
            ) from None

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes, bool]:
        """Read one framed request: ``(method, path, body, keep_alive)``.

        ``keep_alive`` follows HTTP/1.1 semantics: persistent by default,
        ``Connection: close`` opts out; HTTP/1.0 is one-shot unless the
        client asks for ``Connection: keep-alive``.
        """
        request_line = await self._read_line(reader)
        if not request_line:
            raise asyncio.IncompleteReadError(partial=b"", expected=1)
        if len(request_line) > MAX_REQUEST_LINE:
            raise _HttpError(431, "header_too_large", "request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "bad_request", "malformed request line")
        method, target, version = parts
        path = target.split("?", 1)[0]
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            line = await self._read_line(reader)
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise _HttpError(431, "header_too_large", "too many headers")
            text = line.decode("latin-1").rstrip("\r\n")
            if ":" not in text:
                raise _HttpError(400, "bad_request", f"malformed header {text!r}")
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method in ("POST", "PUT", "PATCH"):
            length_text = headers.get("content-length")
            if length_text is None:
                raise _HttpError(411, "length_required", "POST needs Content-Length")
            try:
                length = int(length_text)
            except ValueError:
                raise _HttpError(400, "bad_request", "bad Content-Length") from None
            if length < 0:
                raise _HttpError(400, "bad_request", "bad Content-Length")
            if length > MAX_BODY_BYTES:
                raise _HttpError(413, "payload_too_large", f"body > {MAX_BODY_BYTES}B")
            body = await reader.readexactly(length)
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return method, path, body, keep_alive

    async def _write_json(
        self, writer, status: int, payload: Dict[str, object], close: bool = True
    ) -> None:
        await self._write_raw(
            writer, status, json.dumps(payload).encode(), "application/json",
            close=close,
        )

    async def _write_raw(
        self, writer, status: int, body, content_type: str, close: bool = True
    ) -> None:
        if isinstance(body, str):
            body = body.encode()
        reason = _REASONS.get(status, "Unknown")
        connection = "close" if close else "keep-alive"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Snapshot read path

    def _snapshot(
        self, route: str, build: Callable[[], object]
    ) -> Tuple[int, bytes, str]:
        """Serve ``route`` from cached JSON bytes, rendering on a miss.

        ``build`` returns a protocol dataclass; its rendered bytes are
        kept until :meth:`_invalidate_snapshots`, so a read between
        invalidation points costs a dict lookup plus a socket write.
        Cache effectiveness is observable as
        ``repro_serve_snapshots_total{route,result=hit|miss}``.
        """
        body = self._snapshots.get(route)
        result = "hit"
        if body is None:
            result = "miss"
            body = json.dumps(build().as_dict()).encode()
            self._snapshots[route] = body
        self.metrics.counter(
            "repro_serve_snapshots_total",
            help="Snapshot-served reads, by route and cache result.",
            route=route,
            result=result,
        ).inc()
        return 200, body, "application/json"

    def _invalidate_snapshots(self) -> None:
        """Drop every cached snapshot (epoch tick, churn, grant, reap)."""
        self._snapshots.clear()

    # ------------------------------------------------------------------
    # Routing

    def _routes(self) -> Dict[str, Tuple[str, Callable[[bytes], Tuple[int, object, str]]]]:
        raise NotImplementedError

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, object, str]:
        routes = self._routes()
        entry = routes.get(path)
        if entry is None:
            return (
                404,
                ErrorResponse("not_found", f"no route {path!r}").as_dict(),
                "application/json",
            )
        expected_method, handler = entry
        if method != expected_method:
            return (
                405,
                ErrorResponse(
                    "method_not_allowed", f"{path} expects {expected_method}"
                ).as_dict(),
                "application/json",
            )
        try:
            result = handler(body)
            if asyncio.iscoroutine(result):
                result = await result
            return result
        except ProtocolError as error:
            return (
                400,
                ErrorResponse("bad_request", str(error)).as_dict(),
                "application/json",
            )
        except _HttpError as error:
            return (
                error.status,
                ErrorResponse(error.error, error.detail).as_dict(),
                "application/json",
            )
        except Exception as error:  # the service must outlive a broken handler
            self.metrics.counter(
                "repro_serve_internal_errors_total",
                help="Unexpected exceptions while handling a request.",
            ).inc()
            return (
                500,
                ErrorResponse("internal_error", f"{type(error).__name__}: {error}").as_dict(),
                "application/json",
            )


class AllocationServer(HttpServerBase):
    """Long-lived REF allocation service over HTTP.

    Parameters
    ----------
    allocator:
        The wrapped controller.  The server drives it exclusively in
        *external measurement* mode (``observe_sample`` +
        ``step(measure=False)``); its built-in machine is never used.
    policy:
        Sample-coalescing policy; ``max_delay`` is the service's epoch
        period, ``max_batch`` the early-flush bound.
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port, exposed as
        ``server.port`` after :meth:`start`.
    metrics:
        Registry receiving the ``repro_serve_*`` request metrics.
        Defaults to the process-global registry; ``GET /metrics``
        renders the union of the global registry, this registry and the
        allocator's (each at most once).
    """

    def __init__(
        self,
        allocator: DynamicAllocator,
        policy: Optional[BatchPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    ):
        super().__init__(
            host=host, port=port, metrics=metrics, idle_timeout=idle_timeout
        )
        self.allocator = allocator
        self.policy = policy if policy is not None else BatchPolicy()
        self._batcher: SampleBatcher[SampleRequest] = SampleBatcher(self.policy)
        self._epoch = 0
        self._current: Optional[EpochRecord] = None

    # ------------------------------------------------------------------
    # Lifecycle hooks

    async def _on_start(self) -> None:
        # Epoch 0 on the naive priors: /v1/allocation is answerable from
        # the very first request, before any sample has arrived.
        self._run_epoch([], trigger="startup")

    async def _on_stop(self) -> None:
        # In-flight samples still deserve an epoch: a client that got a
        # "queued" ack must find its measurement folded in, even across
        # a SIGTERM.
        final = self._batcher.flush()
        if final:
            self._run_epoch(final, trigger="shutdown")

    @property
    def current_epoch(self) -> int:
        """Index of the most recently completed epoch."""
        return self._epoch - 1

    @property
    def pending_samples(self) -> int:
        return self._batcher.pending

    @property
    def samples_received(self) -> int:
        return self._batcher.total_items

    @property
    def batches_flushed(self) -> int:
        return self._batcher.total_batches

    def summary_line(self) -> str:
        """Greppable one-line health summary (printed on shutdown)."""
        record = self._current
        allocation = record.enforced or record.allocation if record else None
        feasible = allocation.is_feasible() if allocation is not None else False
        return (
            f"serve: epochs={self._epoch} samples={self._batcher.total_items} "
            f"batches={self._batcher.total_batches} "
            f"agents={len(self.allocator.agent_names)} "
            f"mechanism={self.allocator.mechanism} feasible={feasible}"
        )

    # ------------------------------------------------------------------
    # Epoch ticking

    async def _tick_loop(self) -> None:
        poll = min(max(self.policy.max_delay / 4.0, 0.001), 0.05)
        assert self._loop is not None
        while True:
            await asyncio.sleep(poll)
            batch = self._batcher.poll(self._loop.time())
            if batch is not None:
                self._run_epoch(batch, trigger="max_delay")

    def _run_epoch(self, batch, trigger: str) -> EpochRecord:
        """Apply one sample batch and solve the mechanism exactly once.

        Samples whose agent deregistered between enqueue and flush are
        *orphaned*: they are dropped here (and counted) instead of being
        pushed through ``observe_sample``, which treats an unknown agent
        as a caller bug.
        """
        outcomes: Dict[str, int] = {}
        for sample in batch:
            outcome = "accepted"
            if sample.agent not in self.allocator.workloads:
                outcome = "orphaned"
            else:
                try:
                    if not self.allocator.observe_sample(
                        sample.agent,
                        sample.bundle,
                        sample.ipc,
                        exploration=sample.exploration,
                    ):
                        outcome = "rejected"
                except ValueError:
                    # Belt and braces: the membership check above should
                    # have caught this, but a racing caller must still
                    # not crash the epoch.
                    outcome = "unknown_agent"
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        # One counter bump per outcome, not per sample: at bulk-ingest
        # rates the per-sample registry lookups were a measurable slice
        # of the tick.
        if outcomes.get("orphaned"):
            self.metrics.counter(
                "repro_serve_orphaned_samples_total",
                help=(
                    "Pending samples dropped at flush time because their "
                    "agent had deregistered."
                ),
            ).inc(outcomes["orphaned"])
        for outcome, count in outcomes.items():
            self.metrics.counter(
                "repro_serve_samples_total",
                help="Samples applied at epoch ticks, by outcome.",
                outcome=outcome,
            ).inc(count)
        record = self.allocator.step(self._epoch, measure=False)
        self._current = record
        self._epoch += 1
        self.metrics.counter(
            "repro_serve_batches_total",
            help="Epoch ticks, by what triggered the flush.",
            trigger=trigger,
        ).inc()
        self.metrics.histogram(
            "repro_serve_batch_size",
            help="Samples coalesced into each epoch tick.",
            buckets=_BATCH_BUCKETS,
        ).observe(len(batch))
        self.metrics.gauge(
            "repro_serve_epoch", help="Most recently completed epoch index."
        ).set(self._epoch - 1)
        # Every state change flows through here (startup, churn, grants,
        # policy flushes, shutdown), so this is the single invalidation
        # point for the snapshot read path.
        self._invalidate_snapshots()
        return record

    # ------------------------------------------------------------------
    # Routing

    def _routes(self) -> Dict[str, Tuple[str, Callable[[bytes], Tuple[int, object, str]]]]:
        return {
            "/v1/agents": ("POST", self._route_agents),
            "/v1/samples": ("POST", self._route_samples),
            "/v1/capacity": ("POST", self._route_capacity),
            "/v1/allocation": ("GET", self._route_allocation),
            "/healthz": ("GET", self._route_health),
            "/metrics": ("GET", self._route_metrics),
        }

    def _route_agents(self, body: bytes) -> Tuple[int, object, str]:
        request = AgentRequest.from_dict(parse_json(body.decode("utf-8", "replace")))
        if request.action == "register":
            if request.profile_free and not self.allocator.learn_demands:
                raise _HttpError(
                    400,
                    "learning_disabled",
                    "profile: null requires a server started with --learn-demands",
                )
            if not request.profile_free and request.workload not in BENCHMARKS:
                raise _HttpError(
                    400, "unknown_workload", f"no benchmark named {request.workload!r}"
                )
            if request.agent in self.allocator.workloads:
                raise _HttpError(409, "agent_exists", f"{request.agent!r} is registered")
            if request.profile_free:
                self.allocator.add_agent(
                    request.agent, None, workload_class=request.workload_class
                )
            else:
                self.allocator.add_agent(request.agent, get_workload(request.workload))
        else:
            if request.agent not in self.allocator.workloads:
                raise _HttpError(404, "unknown_agent", f"no agent {request.agent!r}")
            if len(self.allocator.workloads) == 1:
                raise _HttpError(
                    409, "last_agent", "cannot deregister the last agent"
                )
            self.allocator.remove_agent(request.agent)
        # Membership changed: re-solve immediately (any pending samples
        # ride along; a departed agent's orphans are dropped and counted
        # by _run_epoch) so the next GET /v1/allocation reflects the
        # churn.
        self._run_epoch(self._batcher.flush(), trigger="churn")
        response = AgentResponse(
            action=request.action,
            agent=request.agent,
            agents=self.allocator.agent_names,
            epoch=self.current_epoch,
        )
        return 200, response.as_dict(), "application/json"

    def _route_samples(self, body: bytes) -> Tuple[int, object, str]:
        data = parse_json(body.decode("utf-8", "replace"))
        if "samples" in data:
            return self._ingest_bulk(BulkSampleRequest.from_dict(data))
        request = SampleRequest.from_dict(data)
        if request.agent not in self.allocator.workloads:
            raise _HttpError(404, "unknown_agent", f"no agent {request.agent!r}")
        assert self._loop is not None
        fold_epoch = self._epoch
        batch = self._batcher.add(request, self._loop.time())
        pending = self._batcher.pending
        if batch is not None:
            self._run_epoch(batch, trigger="max_batch")
        response = SampleResponse(
            agent=request.agent, queued=True, epoch=fold_epoch, pending=pending
        )
        return 200, response.as_dict(), "application/json"

    def _ingest_bulk(self, request: BulkSampleRequest) -> Tuple[int, object, str]:
        """Fold a bulk sample array into the batcher in one call.

        Unlike the single-sample route, an unknown agent is *not* a 404
        for the whole request: each sample is accepted or rejected on
        its own, and the response reports the per-sample outcome.  The
        whole array is enqueued through one
        :meth:`~repro.serve.batching.SampleBatcher.add_many` call, so a
        bulk POST costs one round trip and at most one epoch tick no
        matter how many measurements it carries.
        """
        assert self._loop is not None
        outcomes = []
        accepted = []
        for sample in request.samples:
            if sample.agent not in self.allocator.workloads:
                outcomes.append(SampleOutcome(sample.agent, False, "unknown_agent"))
            else:
                accepted.append(sample)
                outcomes.append(SampleOutcome(sample.agent, True))
        rejected = len(outcomes) - len(accepted)
        fold_epoch = self._epoch
        batch = self._batcher.add_many(accepted, self._loop.time())
        pending = self._batcher.pending
        if batch is not None:
            self._run_epoch(batch, trigger="max_batch")
        for outcome, count in (("queued", len(accepted)), ("rejected", rejected)):
            if count:
                self.metrics.counter(
                    "repro_serve_bulk_samples_total",
                    help="Samples carried by bulk POSTs, by ingress outcome.",
                    outcome=outcome,
                ).inc(count)
        response = BulkSampleResponse(
            epoch=fold_epoch,
            pending=pending,
            accepted=len(accepted),
            rejected=rejected,
            results=tuple(outcomes),
        )
        return 200, response.as_dict(), "application/json"

    def _route_capacity(self, body: bytes) -> Tuple[int, object, str]:
        """Apply a coordinator capacity grant and report cell aggregates.

        The request must name exactly this cell's resources.  The grant
        is applied, the cell re-solves immediately (pending samples ride
        along), and the response carries the per-resource sum of
        re-scaled agent elasticities the coordinator needs for the next
        Eq. 13 split.
        """
        request = CapacityRequest.from_dict(parse_json(body.decode("utf-8", "replace")))
        names = self.allocator.resource_names
        if set(request.capacities) != set(names):
            raise _HttpError(
                400,
                "unknown_resource",
                f"grant must cover exactly {sorted(names)}, "
                f"got {sorted(request.capacities)}",
            )
        self.allocator.set_capacities(
            tuple(request.capacities[name] for name in names)
        )
        self._run_epoch(self._batcher.flush(), trigger="grant")
        aggregate = self.allocator.aggregate_elasticities()
        response = CapacityResponse(
            epoch=self.current_epoch,
            agents=self.allocator.agent_names,
            capacities={name: float(self.allocator.capacities[r])
                        for r, name in enumerate(names)},
            aggregate_elasticity={
                name: float(aggregate[r]) for r, name in enumerate(names)
            },
        )
        return 200, response.as_dict(), "application/json"

    def _route_allocation(self, _body: bytes) -> Tuple[int, object, str]:
        return self._snapshot("/v1/allocation", self._build_allocation)

    def _build_allocation(self) -> AllocationResponse:
        record = self._current
        assert record is not None, "start() runs epoch 0 before binding"
        allocation = record.enforced or record.allocation
        problem = allocation.problem
        return AllocationResponse(
            epoch=self.current_epoch,
            mechanism=allocation.mechanism,
            feasible=allocation.is_feasible(),
            capacities=dict(
                zip(problem.resource_names, (float(c) for c in problem.capacities))
            ),
            shares=allocation.as_dict(),
        )

    def _route_health(self, _body: bytes) -> Tuple[int, object, str]:
        # Snapshot-served: pending_samples and uptime_seconds are as of
        # the last epoch tick (staleness bound: one epoch).  epoch and
        # membership are always current because every change to them
        # runs _run_epoch, which invalidates.
        return self._snapshot("/healthz", self._build_health)

    def _build_health(self) -> HealthResponse:
        uptime = (self._loop.time() - self._started_at) if self._loop else 0.0
        return HealthResponse(
            status="ok",
            epoch=self.current_epoch,
            agents=self.allocator.agent_names,
            pending_samples=self._batcher.pending,
            uptime_seconds=max(0.0, uptime),
            mechanism=self.allocator.mechanism,
        )

    def _route_metrics(self, _body: bytes) -> Tuple[int, object, str]:
        merged = MetricsRegistry()
        seen = []
        for registry in (global_registry(), self.metrics, self.allocator.metrics):
            if any(registry is other for other in seen):
                continue
            merged.merge(registry)
            seen.append(registry)
        return 200, to_prometheus(merged), "text/plain; version=0.0.4"


class ServerThread:
    """Run an :class:`HttpServerBase` server on a daemon thread.

    The blocking :class:`~repro.serve.client.ServeClient` (tests, smoke
    drivers, notebooks) needs the event loop running elsewhere::

        thread = ServerThread(server)
        thread.start()           # blocks until the port is bound
        ...ServeClient("127.0.0.1", server.port)...
        thread.stop()

    Works for both :class:`AllocationServer` and
    :class:`~repro.serve.shard.ShardCoordinator` — anything with the
    base lifecycle (``start`` / ``wait_stopped`` / ``stop`` /
    ``request_stop_threadsafe``).
    """

    def __init__(self, server: HttpServerBase):
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as error:
            self._error = error
            self._ready.set()
            raise
        self._ready.set()
        try:
            await self.server.wait_stopped()
        finally:
            await self.server.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced via start()/stop()
            if self._error is None:
                self._error = error
            self._ready.set()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self.server.request_stop_threadsafe()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop in time")
        self._thread = None
