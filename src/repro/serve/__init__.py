"""The REF allocation service: asyncio HTTP server + batching + client.

This package turns the library-level
:class:`~repro.dynamic.controller.DynamicAllocator` into the deployment
shape shared-cluster mechanisms assume: a long-lived network service
that independent agents talk to.  Clients register
(``POST /v1/agents``), submit the IPC they measured at their enforced
bundles (``POST /v1/samples``), and read back the current epoch's
allocation (``GET /v1/allocation``); ``/healthz`` and ``/metrics``
(Prometheus text, via :mod:`repro.obs`) make it operable.

Concurrent sample submissions are coalesced by
:class:`~repro.serve.batching.SampleBatcher` under a max-delay /
max-batch :class:`~repro.serve.batching.BatchPolicy`, so N clients cost
one mechanism solve per epoch.  Everything is stdlib-only.

For scale-out beyond one process, :mod:`repro.serve.shard` partitions
agents into cells — one :class:`AllocationServer` subprocess each — and
a :class:`~repro.serve.shard.ShardCoordinator` re-slices the global
capacity across cells every grant round with the hierarchical Eq. 13
split (``POST /v1/capacity``), exposing the shard map at
``GET /v1/cells``.

See ``docs/service.md`` for the API reference and deployment notes,
and ``docs/sharding.md`` for the multi-cell architecture.
"""

from .batching import BatchPolicy, SampleBatcher
from .client import ServeClient, ServeError
from .protocol import (
    PROTOCOL_VERSION,
    AgentRequest,
    AgentResponse,
    AllocationResponse,
    BulkSampleRequest,
    BulkSampleResponse,
    CapacityRequest,
    CapacityResponse,
    CellInfo,
    CellsResponse,
    ErrorResponse,
    HealthResponse,
    ProtocolError,
    SampleOutcome,
    SampleRequest,
    SampleResponse,
    parse_json,
)
from .server import AllocationServer, HttpServerBase, ServerThread
from .shard import CellWorker, ShardCoordinator, cell_for

__all__ = [
    "AgentRequest",
    "AgentResponse",
    "AllocationResponse",
    "AllocationServer",
    "BatchPolicy",
    "BulkSampleRequest",
    "BulkSampleResponse",
    "CapacityRequest",
    "CapacityResponse",
    "CellInfo",
    "CellWorker",
    "CellsResponse",
    "ErrorResponse",
    "HealthResponse",
    "HttpServerBase",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SampleBatcher",
    "SampleOutcome",
    "SampleRequest",
    "SampleResponse",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "ShardCoordinator",
    "cell_for",
    "parse_json",
]
