"""Sharded multi-worker allocation service with a hierarchical coordinator.

Scale-out for :mod:`repro.serve`: agents are partitioned into *cells*,
each cell is a full :class:`~repro.serve.server.AllocationServer` in its
own ``python -m repro serve`` subprocess, and a
:class:`ShardCoordinator` in front

* **routes** — register/deregister/samples are proxied to the cell that
  owns the agent (rendezvous hashing on the agent id picks the default
  owner; the coordinator's shard map is authoritative);
* **grants** — each coordinator epoch the global capacity vector is
  re-sliced across cells with the Eq. 13 closed form on per-cell
  aggregate elasticities (:func:`repro.optimize.hierarchy.split_capacity`),
  and each cell re-solves on its grant — the hierarchical solve provably
  matches the flat one (see ``docs/sharding.md`` and the parity gate in
  ``tests/optimize/test_hierarchy.py``);
* **degrades** — a dead worker's agents are re-hashed onto the surviving
  cells and capacity is re-granted; the service shrinks, it does not
  fail.

Smart clients fetch ``GET /v1/cells`` and talk to their cell directly
(one hop); dumb clients talk only to the coordinator and pay the proxy
hop.  Both dialects are the same versioned JSON protocol, so
:class:`~repro.serve.client.ServeClient` works against either tier.
The coordinator speaks the same high-throughput dialect as the cells:
persistent connections, bulk ``POST /v1/samples`` (fanned out as one
sub-bulk per owning cell and merged index-aligned), and snapshot-served
reads whose byte caches are invalidated on every grant round, reap,
churn, or capacity change — a staleness bound of one grant round.

Placement is rendezvous (highest-random-weight) hashing, so a cell
death moves only the dead cell's agents — everyone else's profiler
state stays put.  A re-homed agent restarts from the naive prior on its
new cell; its samples keep flowing and the fit re-converges, which is
the same recovery semantics the fault-tolerant profiler already gives a
noisy agent.

Every cell must hold at least one agent at all times (an
:class:`~repro.core.mechanism.AllocationProblem` needs one): boot
requires at least as many seed agents as cells, the worker's 409
``last_agent`` refusal stops a cell from being emptied by churn, and
rehash targets are the surviving cells, which are never empty.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import re
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..core.registry import hierarchical_mechanism_names
from ..obs import MetricsRegistry, global_registry, to_prometheus
from ..optimize.hierarchy import split_capacity
from ..workloads import BENCHMARKS
from .client import ServeClient, ServeError
from .protocol import (
    AgentRequest,
    AgentResponse,
    AllocationResponse,
    BulkSampleRequest,
    BulkSampleResponse,
    CapacityRequest,
    CapacityResponse,
    CellInfo,
    CellsResponse,
    HealthResponse,
    SampleOutcome,
    SampleRequest,
    parse_json,
)
from .server import DEFAULT_IDLE_TIMEOUT, HttpServerBase, _HttpError

__all__ = ["CellWorker", "ShardCoordinator", "cell_for"]

T = TypeVar("T")

#: The worker's stdout line announcing its bound port.
_LISTEN_RE = re.compile(r"listening on http://[\d.]+:(\d+)")

#: Grant latency histogram buckets (seconds).
_GRANT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


def cell_for(agent: str, cells: Sequence[str]) -> str:
    """Rendezvous (highest-random-weight) owner of ``agent`` among ``cells``.

    Each (cell, agent) pair gets a deterministic pseudo-random weight
    from SHA-1; the highest weight wins.  Removing a cell re-homes only
    that cell's agents — the minimal-disruption property consistent
    hashing is used for — and every coordinator computes the same
    placement with no shared state.
    """
    if not cells:
        raise ValueError("cell_for needs at least one candidate cell")
    return max(
        cells,
        key=lambda cell: hashlib.sha1(
            f"{cell}|{agent}".encode("utf-8")
        ).digest(),
    )


class CellWorker:
    """Handle on one ``python -m repro serve`` cell subprocess."""

    def __init__(self, name: str, command: List[str]):
        self.name = name
        self.command = command
        self.process: Optional[subprocess.Popen] = None
        self.host = "127.0.0.1"
        self.port = 0
        self.client: Optional[ServeClient] = None
        #: Agents the coordinator has placed here (authoritative map).
        # agent -> benchmark name (None for profile-free learners)
        self.agents: Dict[str, Optional[str]] = {}
        #: The most recent capacity grant applied to this cell.
        self.grant: Dict[str, float] = {}
        #: Aggregate elasticities reported by the last grant round.
        self.aggregate: Optional[np.ndarray] = None
        self.alive = False

    @property
    def pid(self) -> int:
        return self.process.pid if self.process is not None else -1

    def spawn(self, timeout: float = 30.0) -> None:
        """Start the subprocess and wait for its listen line (blocking)."""
        self.process = subprocess.Popen(
            self.command,
            stdout=subprocess.PIPE,
            text=True,
            env=dict(os.environ),
        )
        deadline = time.monotonic() + timeout
        assert self.process.stdout is not None
        while True:
            if time.monotonic() > deadline:
                self.terminate()
                raise RuntimeError(f"cell {self.name}: no listen line in {timeout}s")
            line = self.process.stdout.readline()
            if not line:
                self.terminate()
                raise RuntimeError(
                    f"cell {self.name}: worker exited before binding "
                    f"(rc={self.process.poll()})"
                )
            match = _LISTEN_RE.search(line)
            if match:
                self.port = int(match.group(1))
                break
        self.client = ServeClient(self.host, self.port, timeout=10.0)
        self.client.wait_ready(timeout=timeout)
        self.alive = True

    def poll_dead(self) -> bool:
        """True when the subprocess has exited (and mark the cell dead)."""
        if self.process is not None and self.process.poll() is not None:
            self.alive = False
        return not self.alive

    def terminate(self, timeout: float = 10.0) -> None:
        """SIGTERM, then SIGKILL after ``timeout`` (blocking)."""
        self.alive = False
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.wait(5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()

    def info(self) -> CellInfo:
        return CellInfo(
            cell=self.name,
            host=self.host,
            port=self.port,
            pid=self.pid,
            alive=self.alive,
            agents=tuple(sorted(self.agents)),
            grant=dict(self.grant),
        )


class ShardCoordinator(HttpServerBase):
    """Hierarchical REF coordinator over ``cells`` worker subprocesses.

    Parameters
    ----------
    workloads:
        Seed agents as ``{agent_name: benchmark_name}``; must contain at
        least as many agents as ``cells`` so every cell starts
        non-empty.
    capacities:
        The *global* ``(bandwidth_gbps, cache_kb)`` vector the grant
        rounds keep re-slicing.
    cells:
        Number of worker subprocesses.
    epoch_ms / max_batch:
        Forwarded to every worker's batch policy.
    grant_ms:
        Coordinator grant-round period.  Defaults to ``4 * epoch_ms`` so
        each cell solves a few epochs per grant regime.
    mechanism:
        Within-cell mechanism every worker runs.  Must be *hierarchical*
        (compose with the Eq. 13 capacity split) — see
        :func:`repro.core.registry.hierarchical_mechanism_names`.
    python:
        Interpreter used to spawn workers (defaults to this one).
    """

    def __init__(
        self,
        workloads: Dict[str, str],
        capacities: Tuple[float, float],
        cells: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        epoch_ms: float = 50.0,
        max_batch: int = 64,
        grant_ms: Optional[float] = None,
        decay: float = 0.85,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        mechanism: str = "ref",
        python: Optional[str] = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        learn_demands: bool = False,
        prior: str = "equal",
    ):
        super().__init__(
            host=host, port=port, metrics=metrics, idle_timeout=idle_timeout
        )
        if cells < 1:
            raise ValueError(f"cells must be >= 1, got {cells}")
        hierarchical = hierarchical_mechanism_names()
        if mechanism not in hierarchical:
            raise ValueError(
                f"mechanism must be hierarchical ({', '.join(hierarchical)}), "
                f"got {mechanism!r}"
            )
        self.mechanism = mechanism
        if len(workloads) < cells:
            raise ValueError(
                f"need at least one seed agent per cell: {len(workloads)} "
                f"agents for {cells} cells"
            )
        unknown = sorted(set(workloads.values()) - set(BENCHMARKS))
        if unknown:
            raise ValueError(f"unknown benchmark(s): {unknown}")
        if any(c <= 0 or not np.isfinite(c) for c in capacities):
            raise ValueError(f"capacities must be positive finite, got {capacities}")
        self.workloads = dict(workloads)
        self.capacities = (float(capacities[0]), float(capacities[1]))
        self.resource_names: Tuple[str, str] = ("membw_gbps", "cache_kb")
        self.epoch_ms = float(epoch_ms)
        self.max_batch = int(max_batch)
        self.grant_ms = float(grant_ms) if grant_ms is not None else 4.0 * self.epoch_ms
        if self.epoch_ms <= 0 or self.grant_ms <= 0:
            raise ValueError("epoch_ms and grant_ms must be positive")
        self.decay = float(decay)
        self.seed = int(seed)
        # Demand learning is forwarded to every worker; profile-free
        # registers are then proxied to the owning cell.  Seed agents
        # still need benchmarks (the worker spawn command names them).
        self.learn_demands = bool(learn_demands)
        self.prior = prior
        #: ``workload_class`` hints from profile-free registers, kept so
        #: a rehash re-registers the agent with the same prior class.
        self.agent_classes: Dict[str, str] = {}
        self.python = python if python is not None else sys.executable
        self.cells: List[CellWorker] = [
            CellWorker(f"cell-{k}", []) for k in range(cells)
        ]
        self._epoch = 0  # completed grant rounds
        self._rebalances = 0
        self._last_feasible = False
        self._final_summary: Optional[str] = None
        # Serializes grant rounds against merged allocation reads: a
        # read that interleaves with an in-flight round would see some
        # cells re-solved under this round's grant and others still on
        # the previous one — a union that can transiently overshoot the
        # global capacities even though every cell is feasible.
        self._round_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # Placement

    def live_cells(self) -> List[CellWorker]:
        return [cell for cell in self.cells if cell.alive]

    def _owner(self, agent: str) -> Optional[CellWorker]:
        for cell in self.cells:
            if cell.alive and agent in cell.agents:
                return cell
        return None

    def _place(self, agent: str) -> CellWorker:
        """Default placement for a *new* agent: rendezvous over live cells."""
        live = self.live_cells()
        if not live:
            raise _HttpError(503, "no_cells", "no live cell workers")
        name = cell_for(agent, [cell.name for cell in live])
        return next(cell for cell in live if cell.name == name)

    def _seed_placement(self) -> None:
        """Assign seed agents to cells: rendezvous hash, then fix-empty.

        Pure rendezvous can leave a cell with zero seed agents when
        agents are few; every cell must start non-empty, so agents are
        deterministically moved from the fullest cells into the empty
        ones.  Post-boot arrivals use pure rendezvous (live cells are
        never empty again).
        """
        names = [cell.name for cell in self.cells]
        for agent in sorted(self.workloads):
            owner = cell_for(agent, names)
            cell = next(c for c in self.cells if c.name == owner)
            cell.agents[agent] = self.workloads[agent]
        for cell in self.cells:
            while not cell.agents:
                donor = max(self.cells, key=lambda c: len(c.agents))
                if len(donor.agents) <= 1:  # unreachable: len(agents) >= cells
                    raise RuntimeError("cannot seed every cell with an agent")
                moved = sorted(donor.agents)[0]
                cell.agents[moved] = donor.agents.pop(moved)

    # ------------------------------------------------------------------
    # Lifecycle

    async def _on_start(self) -> None:
        self._seed_placement()
        total = len(self.workloads)
        caps = np.asarray(self.capacities)
        loop = asyncio.get_running_loop()
        spawns = []
        for k, cell in enumerate(self.cells):
            # Boot grant: equal split per agent (the naive-prior Eq. 13
            # split — every agent starts at alpha = (1/2, 1/2), so the
            # hierarchical grant is exactly count-proportional).
            grant = caps * (len(cell.agents) / total)
            cell.grant = dict(zip(self.resource_names, (float(g) for g in grant)))
            agents_spec = ",".join(
                f"{agent}={benchmark}"
                for agent, benchmark in sorted(cell.agents.items())
            )
            cell.command = [
                self.python,
                "-m",
                "repro",
                "serve",
                "--host",
                cell.host,
                "--port",
                "0",
                "--agents",
                agents_spec,
                "--capacities",
                f"{float(grant[0])!r},{float(grant[1])!r}",
                "--epoch-ms",
                f"{self.epoch_ms:g}",
                "--max-batch",
                str(self.max_batch),
                "--decay",
                f"{self.decay:g}",
                "--mechanism",
                self.mechanism,
                "--seed",
                str(self.seed + k),
            ]
            if self.learn_demands:
                cell.command += ["--learn-demands", "--prior", self.prior]
            spawns.append(loop.run_in_executor(None, cell.spawn))
        await asyncio.gather(*spawns)
        self.metrics.gauge(
            "repro_shard_cells", help="Live cell workers behind the coordinator."
        ).set(len(self.live_cells()))
        await self._grant_round()

    async def _on_stop(self) -> None:
        # Best-effort final feasibility check before tearing workers down
        # (summary_line reports it; the smoke gate greps for it).
        try:
            await self._merged_allocation()
        except (ServeError, OSError, _HttpError, ValueError):
            pass
        self._final_summary = self.summary_line()
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *[loop.run_in_executor(None, cell.terminate) for cell in self.cells]
        )

    async def _tick_loop(self) -> None:
        period = self.grant_ms / 1000.0
        while True:
            await asyncio.sleep(period)
            await self._reap_dead_cells()
            await self._grant_round()

    def summary_line(self) -> str:
        """Greppable one-line health summary (printed on shutdown)."""
        if self._final_summary is not None:
            return self._final_summary  # state as of just before teardown
        live = len(self.live_cells())
        agents = sum(len(cell.agents) for cell in self.cells if cell.alive)
        return (
            f"shard: cells={live}/{len(self.cells)} agents={agents} "
            f"grants={self._epoch} rebalances={self._rebalances} "
            f"feasible={self._last_feasible}"
        )

    # ------------------------------------------------------------------
    # Worker RPC plumbing

    async def _call(self, cell: CellWorker, fn: Callable[[ServeClient], T]) -> T:
        """Run one blocking client call against ``cell`` off the loop.

        Transport failures mark the cell for reaping and surface as 502
        so the caller (or `_proxy_retry`) can re-route.
        """
        assert cell.client is not None
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, fn, cell.client)
        except ServeError as error:
            if not error.is_transport:
                raise  # semantic refusal from a live worker: caller's problem
            cell.poll_dead()
            raise _HttpError(
                502, "cell_unreachable", f"cell {cell.name}: {error}"
            ) from None
        except (OSError, TimeoutError) as error:
            cell.poll_dead()
            raise _HttpError(
                502, "cell_unreachable", f"cell {cell.name}: {error}"
            ) from None

    async def _proxy_retry(
        self, agent: str, attempt: Callable[[CellWorker], "asyncio.Future"]
    ) -> T:
        """Try the agent's owner; on cell death, reap + re-place and retry once."""
        for retry in (False, True):
            owner = self._owner(agent)
            if owner is None:
                raise _HttpError(404, "unknown_agent", f"no agent {agent!r}")
            try:
                return await attempt(owner)
            except _HttpError as error:
                if error.status != 502 or retry:
                    raise
                await self._reap_dead_cells()
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Grant rounds (the hierarchical Eq. 13 split)

    async def _grant_round(self) -> None:
        """Push each cell its capacity slice; collect next-round aggregates.

        The split is Eq. 13 at cell granularity: cell *k* receives
        ``C_r * A_kr / sum A_kr`` where ``A_kr`` is its agents'
        aggregate re-scaled elasticity (count-proportional before the
        first aggregates arrive, matching the naive prior).
        """
        async with self._round_lock:
            await self._grant_round_locked()

    async def _grant_round_locked(self) -> None:
        live = self.live_cells()
        if not live:
            return
        n_resources = len(self.resource_names)
        known = [cell for cell in live if cell.aggregate is not None]
        if known:
            # Cells without aggregates yet (fresh boot) fall back to the
            # naive prior: 1/R per resource per agent.
            aggregates = np.stack(
                [
                    cell.aggregate
                    if cell.aggregate is not None
                    else np.full(n_resources, len(cell.agents) / n_resources)
                    for cell in live
                ]
            )
            counts = [max(1, len(cell.agents)) for cell in live]
            grants = split_capacity(aggregates, counts, np.asarray(self.capacities))
            for cell, grant in zip(live, grants):
                cell.grant = dict(
                    zip(self.resource_names, (float(g) for g in grant))
                )

        async def push(cell: CellWorker) -> None:
            request = CapacityRequest(capacities=dict(cell.grant))
            started = self._loop.time() if self._loop is not None else 0.0
            try:
                response = await self._call(
                    cell, lambda client: client.grant_capacity(request.capacities)
                )
            except _HttpError:
                return  # dead cell: reaped on the next tick
            except (ServeError, ValueError):
                self.metrics.counter(
                    "repro_shard_grant_errors_total",
                    help="Capacity grants a cell rejected.",
                    cell=cell.name,
                ).inc()
                return
            if self._loop is not None:
                self.metrics.histogram(
                    "repro_shard_grant_latency_seconds",
                    help="Round-trip latency of one cell capacity grant.",
                    buckets=_GRANT_BUCKETS,
                    cell=cell.name,
                ).observe(self._loop.time() - started)
            names = self.resource_names
            cell.aggregate = np.array(
                [response.aggregate_elasticity.get(name, 0.0) for name in names]
            )
            # The worker's own membership is ground truth for *its*
            # agents' benchmarks being live; keep placement in sync with
            # any churn that raced this round.
            stale = set(cell.agents) - set(response.agents)
            for agent in stale:
                cell.agents.pop(agent, None)

        await asyncio.gather(*[push(cell) for cell in live])
        self._epoch += 1
        self.metrics.counter(
            "repro_shard_grant_rounds_total",
            help="Completed coordinator grant rounds.",
        ).inc()
        self.metrics.gauge(
            "repro_shard_epoch", help="Most recently completed grant round."
        ).set(self._epoch - 1)
        # Grants moved every cell's capacity slice and advanced the
        # epoch: the cached read snapshots are stale now.
        self._invalidate_snapshots()

    # ------------------------------------------------------------------
    # Cell death and rebalancing

    async def _reap_dead_cells(self) -> None:
        """Re-home agents from dead workers onto the survivors."""
        for cell in self.cells:
            if cell.alive:
                cell.poll_dead()
        # Covers both exit-detected deaths and cells marked dead by a
        # failed RPC: any dead cell still holding agents needs reaping.
        dead = [cell for cell in self.cells if not cell.alive and cell.agents]
        for cell in dead:
            orphans = dict(cell.agents)
            cell.agents = {}
            cell.aggregate = None
            cell.grant = {}
            if not orphans:
                continue
            self._rebalances += 1
            self.metrics.counter(
                "repro_shard_rebalances_total",
                help="Rebalances triggered by cell death.",
            ).inc()
            for agent, benchmark in sorted(orphans.items()):
                try:
                    target = self._place(agent)
                except _HttpError:
                    # Total outage: drop placement; agents can re-register
                    # when a cell returns.
                    self.workloads.pop(agent, None)
                    continue
                try:
                    # A profile-free orphan (benchmark None) re-registers
                    # profile-free on the survivor; its learned state died
                    # with the cell, so learning restarts from the prior
                    # (the class hint is preserved).
                    await self._call(
                        target,
                        lambda client, a=agent, b=benchmark: client.register(
                            a, b, self.agent_classes.get(a)
                        ),
                    )
                except ServeError as error:
                    if error.error != "agent_exists":
                        self.workloads.pop(agent, None)
                        continue
                except _HttpError:
                    self.workloads.pop(agent, None)
                    continue
                target.agents[agent] = benchmark
                self.metrics.counter(
                    "repro_shard_agents_rehashed_total",
                    help="Agents re-homed from a dead cell to a survivor.",
                ).inc()
        self.metrics.gauge(
            "repro_shard_cells", help="Live cell workers behind the coordinator."
        ).set(len(self.live_cells()))
        # Liveness or placement may have changed (including cells marked
        # dead by a failed RPC since the last round).
        self._invalidate_snapshots()

    # ------------------------------------------------------------------
    # Routes

    def _routes(self):
        return {
            "/v1/agents": ("POST", self._route_agents),
            "/v1/samples": ("POST", self._route_samples),
            "/v1/capacity": ("POST", self._route_capacity),
            "/v1/allocation": ("GET", self._route_allocation),
            "/v1/cells": ("GET", self._route_cells),
            "/healthz": ("GET", self._route_health),
            "/metrics": ("GET", self._route_metrics),
        }

    async def _route_agents(self, body: bytes):
        request = AgentRequest.from_dict(parse_json(body.decode("utf-8", "replace")))
        if request.action == "register":
            if request.profile_free and not self.learn_demands:
                raise _HttpError(
                    400,
                    "learning_disabled",
                    "profile: null requires a coordinator started with "
                    "--learn-demands",
                )
            if not request.profile_free and request.workload not in BENCHMARKS:
                raise _HttpError(
                    400, "unknown_workload", f"no benchmark named {request.workload!r}"
                )
            if self._owner(request.agent) is not None:
                raise _HttpError(
                    409, "agent_exists", f"{request.agent!r} is registered"
                )
            target = self._place(request.agent)
            try:
                await self._call(
                    target,
                    lambda client: client.register(
                        request.agent, request.workload, request.workload_class
                    ),
                )
            except ServeError as error:
                raise _HttpError(error.status, error.error, error.detail) from None
            target.agents[request.agent] = request.workload
            self.workloads[request.agent] = request.workload
            if request.workload_class is not None:
                self.agent_classes[request.agent] = request.workload_class
        else:

            async def attempt(owner: CellWorker):
                try:
                    return await self._call(
                        owner, lambda client: client.deregister(request.agent)
                    )
                except ServeError as error:
                    # The worker's 409 last_agent refusal is the invariant
                    # that keeps every cell non-empty; surface it as-is.
                    raise _HttpError(error.status, error.error, error.detail) from None

            await self._proxy_retry(request.agent, attempt)
            owner = self._owner(request.agent)
            if owner is not None:
                owner.agents.pop(request.agent, None)
            self.workloads.pop(request.agent, None)
            self.agent_classes.pop(request.agent, None)
        self._invalidate_snapshots()  # membership changed
        response = AgentResponse(
            action=request.action,
            agent=request.agent,
            agents=tuple(sorted(self.workloads)),
            epoch=self._epoch - 1,
        )
        return 200, response.as_dict(), "application/json"

    async def _route_samples(self, body: bytes):
        data = parse_json(body.decode("utf-8", "replace"))
        if "samples" in data:
            return await self._proxy_bulk(BulkSampleRequest.from_dict(data))
        request = SampleRequest.from_dict(data)

        async def attempt(owner: CellWorker):
            try:
                return await self._call(
                    owner,
                    lambda client: client.submit_sample(
                        request.agent,
                        request.bandwidth_gbps,
                        request.cache_kb,
                        request.ipc,
                    ),
                )
            except ServeError as error:
                raise _HttpError(error.status, error.error, error.detail) from None

        response = await self._proxy_retry(request.agent, attempt)
        return 200, response.as_dict(), "application/json"

    async def _proxy_bulk(self, request: BulkSampleRequest):
        """Fan a bulk sample array out to the owning cells; merge aligned.

        Each owning cell receives ONE sub-bulk POST (a round trip per
        cell, not per sample) and the per-sample outcomes are merged
        back index-aligned with the request.  A cell death mid-fan-out
        is reaped and only the unanswered samples are retried once
        against the re-homed placement — the bulk analogue of
        :meth:`_proxy_retry`.  ``epoch`` in the response is the
        coordinator's grant round; ``pending`` sums the owning cells'
        reported queues.
        """
        results: List[Optional[SampleOutcome]] = [None] * len(request.samples)
        pending = 0
        for retry in (False, True):
            groups: Dict[str, List[int]] = {}
            for i, sample in enumerate(request.samples):
                if results[i] is not None:
                    continue
                owner = self._owner(sample.agent)
                if owner is None:
                    results[i] = SampleOutcome(sample.agent, False, "unknown_agent")
                else:
                    groups.setdefault(owner.name, []).append(i)
            if not groups:
                break

            async def forward(name: str, indexes: List[int]) -> int:
                cell = next(c for c in self.cells if c.name == name)
                sub = [request.samples[i] for i in indexes]
                try:
                    response = await self._call(
                        cell, lambda client: client.post_samples_bulk(sub)
                    )
                except _HttpError:
                    return 0  # dead cell: reaped below, samples retried
                except ServeError as error:
                    for i in indexes:
                        results[i] = SampleOutcome(
                            request.samples[i].agent, False, error.error
                        )
                    return 0
                for i, outcome in zip(indexes, response.results):
                    results[i] = outcome
                return response.pending

            pending += sum(
                await asyncio.gather(
                    *[forward(name, indexes) for name, indexes in groups.items()]
                )
            )
            if all(result is not None for result in results):
                break
            if not retry:
                await self._reap_dead_cells()
        outcomes = tuple(
            result
            if result is not None
            else SampleOutcome(sample.agent, False, "cell_unreachable")
            for sample, result in zip(request.samples, results)
        )
        accepted = sum(1 for outcome in outcomes if outcome.queued)
        response = BulkSampleResponse(
            epoch=self._epoch - 1,
            pending=pending,
            accepted=accepted,
            rejected=len(outcomes) - accepted,
            results=outcomes,
        )
        return 200, response.as_dict(), "application/json"

    async def _route_capacity(self, body: bytes):
        """Replace the *global* capacity vector; re-grant immediately."""
        request = CapacityRequest.from_dict(parse_json(body.decode("utf-8", "replace")))
        names = self.resource_names
        if set(request.capacities) != set(names):
            raise _HttpError(
                400,
                "unknown_resource",
                f"grant must cover exactly {sorted(names)}, "
                f"got {sorted(request.capacities)}",
            )
        # Swap the vector and re-grant under the round lock, so no
        # merged read ever judges old grants against the new capacities.
        async with self._round_lock:
            self.capacities = tuple(request.capacities[name] for name in names)
            # _grant_round invalidates the snapshots too, but it returns
            # early during a total outage — the capacity change itself
            # must still drop the cached reads.
            self._invalidate_snapshots()
            await self._grant_round_locked()
        aggregate = np.zeros(len(names))
        for cell in self.live_cells():
            if cell.aggregate is not None:
                aggregate += cell.aggregate
        response = CapacityResponse(
            epoch=self._epoch - 1,
            agents=tuple(sorted(self.workloads)),
            capacities=dict(zip(names, map(float, self.capacities))),
            aggregate_elasticity=dict(zip(names, map(float, aggregate))),
        )
        return 200, response.as_dict(), "application/json"

    async def _merged_allocation(self) -> AllocationResponse:
        """Union of the live cells' allocations under the global capacities.

        Holds the round lock so the union is read against one
        consistent set of grants, never halfway through a round.
        """
        async with self._round_lock:
            return await self._merged_allocation_locked()

    async def _merged_allocation_locked(self) -> AllocationResponse:
        live = self.live_cells()
        if not live:
            raise _HttpError(503, "no_cells", "no live cell workers")
        responses = await asyncio.gather(
            *[self._call(cell, lambda client: client.allocation()) for cell in live],
            return_exceptions=True,
        )
        shares: Dict[str, Dict[str, float]] = {}
        feasible = True
        got_any = False
        for cell, response in zip(live, responses):
            if isinstance(response, BaseException):
                feasible = False  # a cell we cannot read is not provably feasible
                continue
            got_any = True
            feasible = feasible and response.feasible
            shares.update(response.shares)
        if not got_any:
            raise _HttpError(502, "cells_unreachable", "no cell answered")
        # Grants sum to the global capacities, so the union must fit them.
        for r, name in enumerate(self.resource_names):
            total = sum(bundle.get(name, 0.0) for bundle in shares.values())
            feasible = feasible and total <= self.capacities[r] * (1 + 1e-9)
        self._last_feasible = feasible
        return AllocationResponse(
            epoch=self._epoch - 1,
            mechanism=f"{self.mechanism}-hierarchical",
            feasible=feasible,
            capacities=dict(
                zip(self.resource_names, map(float, self.capacities))
            ),
            shares=shares,
        )

    async def _route_allocation(self, _body: bytes):
        # Snapshot-served like the worker's read path, but the build is
        # async (it fans out to the cells), so the byte cache is managed
        # here instead of through _snapshot.  Staleness bound: one grant
        # round — every grant/reap/churn/capacity change invalidates.
        body = self._snapshots.get("/v1/allocation")
        result = "hit"
        if body is None:
            result = "miss"
            response = await self._merged_allocation()
            body = json.dumps(response.as_dict()).encode()
            self._snapshots["/v1/allocation"] = body
        self.metrics.counter(
            "repro_serve_snapshots_total",
            help="Snapshot-served reads, by route and cache result.",
            route="/v1/allocation",
            result=result,
        ).inc()
        return 200, body, "application/json"

    def _route_cells(self, _body: bytes):
        return self._snapshot("/v1/cells", self._build_cells)

    def _build_cells(self) -> CellsResponse:
        return CellsResponse(
            epoch=self._epoch - 1,
            capacities=dict(zip(self.resource_names, map(float, self.capacities))),
            cells=tuple(cell.info() for cell in self.cells),
        )

    def _route_health(self, _body: bytes):
        # Snapshot-served: uptime (and a cell marked dead by a failed
        # RPC but not yet reaped) can be up to one grant round stale.
        return self._snapshot("/healthz", self._build_health)

    def _build_health(self) -> HealthResponse:
        live = self.live_cells()
        uptime = (self._loop.time() - self._started_at) if self._loop else 0.0
        status = "ok" if len(live) == len(self.cells) else (
            "degraded" if live else "down"
        )
        return HealthResponse(
            status=status,
            epoch=self._epoch - 1,
            agents=tuple(sorted(self.workloads)),
            pending_samples=0,  # pending batches live in the cells
            uptime_seconds=max(0.0, uptime),
            mechanism=f"{self.mechanism}-hierarchical",
        )

    def _route_metrics(self, _body: bytes):
        merged = MetricsRegistry()
        merged.merge(global_registry())
        if self.metrics is not global_registry():
            merged.merge(self.metrics)
        return 200, to_prometheus(merged), "text/plain; version=0.0.4"
