"""Versioned JSON wire protocol for the REF allocation service.

Every request and response is a flat JSON object carrying a
``"version"`` field (currently :data:`PROTOCOL_VERSION`).  Parsing is
*strict*: unknown keys, missing keys, wrong types, non-finite numbers
(``NaN``/``Infinity`` are not valid JSON) and version mismatches all
raise :class:`ProtocolError`, which the server maps to an HTTP 400.
Semantic problems — an unknown agent, a sample the profiler rejects —
are *not* protocol errors; they surface as 404/409 responses or as
rejected-sample counters, because a fault-tolerant measurement pipeline
must accept syntactically valid garbage without dropping the
connection.

Dataclasses round-trip exactly::

    request = SampleRequest("dedup", 3.2, 512.0, 0.81)
    assert SampleRequest.from_dict(request.as_dict()) == request
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "AgentRequest",
    "AgentResponse",
    "BulkSampleRequest",
    "BulkSampleResponse",
    "SampleOutcome",
    "SampleRequest",
    "SampleResponse",
    "AllocationResponse",
    "CapacityRequest",
    "CapacityResponse",
    "CellInfo",
    "CellsResponse",
    "HealthResponse",
    "ErrorResponse",
    "parse_json",
]

#: Wire protocol version; bumped on any incompatible change.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A request that does not conform to the wire protocol (HTTP 400)."""


def _reject_constant(text: str) -> float:
    raise ProtocolError(f"non-finite JSON constant {text!r} is not allowed")


def parse_json(text: str) -> Dict[str, object]:
    """Parse a request body into a dict, strictly.

    Rejects invalid JSON, non-object payloads and the non-standard
    ``NaN``/``Infinity`` constants (Prometheus would render them, but a
    measurement that is not a finite number is not a measurement).
    """
    try:
        data = json.loads(text, parse_constant=_reject_constant)
    except ProtocolError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    return data


def _check_keys(
    data: Mapping[str, object],
    required: Tuple[str, ...],
    optional: Tuple[str, ...] = (),
) -> None:
    allowed = set(required) | set(optional) | {"version"}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ProtocolError(f"unknown field(s): {', '.join(unknown)}")
    missing = sorted(set(required) - set(data))
    if missing:
        raise ProtocolError(f"missing field(s): {', '.join(missing)}")
    version = data.get("version", PROTOCOL_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError(f"version must be an integer, got {version!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (this server speaks "
            f"{PROTOCOL_VERSION})"
        )


def _get_str(data: Mapping[str, object], key: str) -> str:
    value = data[key]
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{key} must be a non-empty string, got {value!r}")
    return value


def _get_number(data: Mapping[str, object], key: str) -> float:
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(f"{key} must be finite, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentRequest:
    """``POST /v1/agents`` — register or deregister an agent.

    ``workload`` names a benchmark from the bundled suite (the server
    needs a prior/spec to seed the agent's profiler context); a
    ``register`` must carry either a workload **or** an explicit
    ``"profile": null`` — the *profile-free* variant, accepted only by
    servers running with demand learning enabled
    (``--learn-demands``), whose demands are learned online from the
    agent's submitted samples.  A profile-free register may add a
    ``workload_class`` hint (``"C"`` or ``"M"``) steering the centroid
    prior.  ``deregister`` takes neither.
    """

    action: str
    agent: str
    workload: Optional[str] = None
    profile_free: bool = False
    workload_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ("register", "deregister"):
            raise ProtocolError(
                f"action must be 'register' or 'deregister', got {self.action!r}"
            )
        if self.action == "register":
            if self.profile_free and self.workload is not None:
                raise ProtocolError(
                    "register takes either a workload or profile: null, not both"
                )
            if not self.profile_free and not self.workload:
                raise ProtocolError("register requires a workload or profile: null")
        if self.action == "deregister" and (
            self.workload is not None or self.profile_free
        ):
            raise ProtocolError("deregister does not take a workload or profile")
        if self.workload_class is not None and not self.profile_free:
            raise ProtocolError("workload_class is only valid with profile: null")
        if self.workload_class is not None and self.workload_class not in ("C", "M"):
            raise ProtocolError(
                f"workload_class must be 'C' or 'M', got {self.workload_class!r}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AgentRequest":
        _check_keys(
            data,
            required=("action", "agent"),
            optional=("workload", "profile", "workload_class"),
        )
        workload = data.get("workload")
        if workload is not None and (not isinstance(workload, str) or not workload):
            raise ProtocolError(f"workload must be a non-empty string, got {workload!r}")
        profile_free = False
        if "profile" in data:
            if data["profile"] is not None:
                raise ProtocolError(
                    "only profile: null is supported (inline profiles are not); "
                    "name a workload instead"
                )
            profile_free = True
        workload_class = data.get("workload_class")
        if workload_class is not None and not isinstance(workload_class, str):
            raise ProtocolError(
                f"workload_class must be a string, got {workload_class!r}"
            )
        return cls(
            action=_get_str(data, "action"),
            agent=_get_str(data, "agent"),
            workload=workload,
            profile_free=profile_free,
            workload_class=workload_class,
        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "action": self.action,
            "agent": self.agent,
        }
        if self.workload is not None:
            payload["workload"] = self.workload
        if self.profile_free:
            payload["profile"] = None
        if self.workload_class is not None:
            payload["workload_class"] = self.workload_class
        return payload


@dataclass(frozen=True)
class SampleRequest:
    """``POST /v1/samples`` — one measured (bundle, IPC) observation.

    The resource amounts and the IPC must be finite numbers — that is a
    *wire* requirement.  Whether the sample is plausible (positive, not
    an outlier against the agent's current fit) is decided by the
    fault-tolerant profiler at the next epoch tick, not by the parser.
    The optional ``exploration`` flag marks a measurement taken at a
    deliberately perturbed operating point; the profiler's outlier gate
    is bypassed for it (see
    :meth:`repro.profiling.online.OnlineProfiler.observe`).
    """

    agent: str
    bandwidth_gbps: float
    cache_kb: float
    ipc: float
    exploration: bool = False

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SampleRequest":
        _check_keys(
            data,
            required=("agent", "bandwidth_gbps", "cache_kb", "ipc"),
            optional=("exploration",),
        )
        exploration = data.get("exploration", False)
        if not isinstance(exploration, bool):
            raise ProtocolError(
                f"exploration must be a boolean, got {exploration!r}"
            )
        return cls(
            agent=_get_str(data, "agent"),
            bandwidth_gbps=_get_number(data, "bandwidth_gbps"),
            cache_kb=_get_number(data, "cache_kb"),
            ipc=_get_number(data, "ipc"),
            exploration=exploration,
        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "agent": self.agent,
            "bandwidth_gbps": self.bandwidth_gbps,
            "cache_kb": self.cache_kb,
            "ipc": self.ipc,
        }
        if self.exploration:
            payload["exploration"] = True
        return payload

    @property
    def bundle(self) -> Tuple[float, float]:
        return (self.bandwidth_gbps, self.cache_kb)


@dataclass(frozen=True)
class BulkSampleRequest:
    """``POST /v1/samples`` with a ``samples`` array — bulk ingest.

    One round trip carries an epoch's worth of measurements: each
    element is a full single-sample object (the inner ``version`` field
    is optional; the outer one governs).  The array must be non-empty,
    and its length is effectively bounded by the server's request body
    limit.  The single-sample body (no ``samples`` key) remains valid —
    the server dispatches on the presence of the key.
    """

    samples: Tuple[SampleRequest, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ProtocolError("samples must be a non-empty array")

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BulkSampleRequest":
        _check_keys(data, required=("samples",))
        samples = data["samples"]
        if not isinstance(samples, (list, tuple)):
            raise ProtocolError(f"samples must be an array, got {samples!r}")
        parsed = []
        for i, item in enumerate(samples):
            if not isinstance(item, dict):
                raise ProtocolError(f"samples[{i}] must be an object, got {item!r}")
            try:
                parsed.append(SampleRequest.from_dict(item))
            except ProtocolError as error:
                raise ProtocolError(f"samples[{i}]: {error}") from None
        return cls(samples=tuple(parsed))

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "samples": [
                {
                    "agent": sample.agent,
                    "bandwidth_gbps": sample.bandwidth_gbps,
                    "cache_kb": sample.cache_kb,
                    "ipc": sample.ipc,
                }
                for sample in self.samples
            ],
        }


@dataclass(frozen=True)
class SampleOutcome:
    """Per-sample accept/reject inside a :class:`BulkSampleResponse`."""

    agent: str
    queued: bool
    error: str = ""

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SampleOutcome":
        _check_keys(data, required=("agent", "queued"), optional=("error",))
        queued = data["queued"]
        if not isinstance(queued, bool):
            raise ProtocolError(f"queued must be a boolean, got {queued!r}")
        error = data.get("error", "")
        if not isinstance(error, str):
            raise ProtocolError(f"error must be a string, got {error!r}")
        return cls(agent=_get_str(data, "agent"), queued=queued, error=error)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"agent": self.agent, "queued": self.queued}
        if self.error:
            payload["error"] = self.error
        return payload


@dataclass(frozen=True)
class BulkSampleResponse:
    """Acknowledges a bulk sample POST, per-sample.

    ``results`` is index-aligned with the request's ``samples`` array;
    ``accepted``/``rejected`` are its tallies.  ``epoch`` is the epoch
    the accepted samples will be folded into and ``pending`` the batch
    occupancy after this call (as with :class:`SampleResponse`).
    """

    epoch: int
    pending: int
    accepted: int
    rejected: int
    results: Tuple[SampleOutcome, ...]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BulkSampleResponse":
        _check_keys(
            data, required=("epoch", "pending", "accepted", "rejected", "results")
        )
        for key in ("epoch", "pending", "accepted", "rejected"):
            if isinstance(data[key], bool) or not isinstance(data[key], int):
                raise ProtocolError(f"{key} must be an integer, got {data[key]!r}")
        results = data["results"]
        if not isinstance(results, (list, tuple)):
            raise ProtocolError(f"results must be an array, got {results!r}")
        parsed = []
        for i, item in enumerate(results):
            if not isinstance(item, dict):
                raise ProtocolError(f"results[{i}] must be an object, got {item!r}")
            parsed.append(SampleOutcome.from_dict(item))
        return cls(
            epoch=int(data["epoch"]),
            pending=int(data["pending"]),
            accepted=int(data["accepted"]),
            rejected=int(data["rejected"]),
            results=tuple(parsed),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "epoch": self.epoch,
            "pending": self.pending,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "results": [outcome.as_dict() for outcome in self.results],
        }


def _get_number_map(data: Mapping[str, object], key: str) -> Dict[str, float]:
    """A ``{resource: finite number}`` object field, strictly validated."""
    value = data[key]
    if not isinstance(value, dict) or not value:
        raise ProtocolError(f"{key} must be a non-empty object, got {value!r}")
    return {str(name): _get_number(value, name) for name in value}


@dataclass(frozen=True)
class CapacityRequest:
    """``POST /v1/capacity`` — a hierarchical capacity grant for this cell.

    Sent by the shard coordinator once per coordinator epoch: the cell's
    slice of the global capacity vector, computed by the Eq. 13 closed
    form on per-cell aggregate elasticities.  Every granted amount must
    be a finite, strictly positive number; the worker re-solves its cell
    immediately so the grant takes effect before the next read.
    """

    capacities: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.capacities:
            raise ProtocolError("a capacity grant needs at least one resource")
        for name, value in self.capacities.items():
            if not math.isfinite(value) or value <= 0.0:
                raise ProtocolError(
                    f"granted capacity for {name!r} must be finite and positive, "
                    f"got {value!r}"
                )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CapacityRequest":
        _check_keys(data, required=("capacities",))
        return cls(capacities=_get_number_map(data, "capacities"))

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "capacities": dict(self.capacities),
        }


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentResponse:
    """Acknowledges a register/deregister; lists current membership."""

    action: str
    agent: str
    agents: Tuple[str, ...]
    epoch: int

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AgentResponse":
        _check_keys(data, required=("action", "agent", "agents", "epoch"))
        agents = data["agents"]
        if not isinstance(agents, (list, tuple)) or not all(
            isinstance(name, str) for name in agents
        ):
            raise ProtocolError(f"agents must be a list of strings, got {agents!r}")
        epoch = data["epoch"]
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ProtocolError(f"epoch must be an integer, got {epoch!r}")
        return cls(
            action=_get_str(data, "action"),
            agent=_get_str(data, "agent"),
            agents=tuple(agents),
            epoch=epoch,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "action": self.action,
            "agent": self.agent,
            "agents": list(self.agents),
            "epoch": self.epoch,
        }


@dataclass(frozen=True)
class SampleResponse:
    """Acknowledges a queued sample.

    ``epoch`` is the index of the epoch the sample will be folded into
    (the *next* tick); ``pending`` is the batch occupancy after this
    sample, so clients can see coalescing happen.
    """

    agent: str
    queued: bool
    epoch: int
    pending: int

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SampleResponse":
        _check_keys(data, required=("agent", "queued", "epoch", "pending"))
        queued = data["queued"]
        if not isinstance(queued, bool):
            raise ProtocolError(f"queued must be a boolean, got {queued!r}")
        for key in ("epoch", "pending"):
            if isinstance(data[key], bool) or not isinstance(data[key], int):
                raise ProtocolError(f"{key} must be an integer, got {data[key]!r}")
        return cls(
            agent=_get_str(data, "agent"),
            queued=queued,
            epoch=int(data["epoch"]),
            pending=int(data["pending"]),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "agent": self.agent,
            "queued": self.queued,
            "epoch": self.epoch,
            "pending": self.pending,
        }


@dataclass(frozen=True)
class AllocationResponse:
    """``GET /v1/allocation`` — the current epoch's *enforced* allocation."""

    epoch: int
    mechanism: str
    feasible: bool
    capacities: Dict[str, float]
    shares: Dict[str, Dict[str, float]]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AllocationResponse":
        _check_keys(
            data, required=("epoch", "mechanism", "feasible", "capacities", "shares")
        )
        epoch = data["epoch"]
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ProtocolError(f"epoch must be an integer, got {epoch!r}")
        feasible = data["feasible"]
        if not isinstance(feasible, bool):
            raise ProtocolError(f"feasible must be a boolean, got {feasible!r}")
        capacities = data["capacities"]
        if not isinstance(capacities, dict):
            raise ProtocolError("capacities must be an object")
        shares = data["shares"]
        if not isinstance(shares, dict) or not all(
            isinstance(bundle, dict) for bundle in shares.values()
        ):
            raise ProtocolError("shares must be an object of per-agent objects")
        return cls(
            epoch=epoch,
            mechanism=_get_str(data, "mechanism"),
            feasible=feasible,
            capacities={str(k): _get_number(capacities, k) for k in capacities},
            shares={
                str(agent): {str(r): _get_number(bundle, r) for r in bundle}
                for agent, bundle in shares.items()
            },
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "epoch": self.epoch,
            "mechanism": self.mechanism,
            "feasible": self.feasible,
            "capacities": dict(self.capacities),
            "shares": {agent: dict(bundle) for agent, bundle in self.shares.items()},
        }

    def bundle(self, agent: str) -> Dict[str, float]:
        """The named agent's enforced bundle (KeyError if absent)."""
        return dict(self.shares[agent])


@dataclass(frozen=True)
class CapacityResponse:
    """Acknowledges a capacity grant; reports the cell's state back.

    ``aggregate_elasticity`` carries the cell's per-resource sum of
    re-scaled (Eq. 12) agent elasticities — exactly the weight the
    coordinator needs to compute the *next* epoch's Eq. 13 split, so a
    grant round is one request/response per cell.
    """

    epoch: int
    agents: Tuple[str, ...]
    capacities: Dict[str, float]
    aggregate_elasticity: Dict[str, float]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CapacityResponse":
        _check_keys(
            data,
            required=("epoch", "agents", "capacities", "aggregate_elasticity"),
        )
        epoch = data["epoch"]
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ProtocolError(f"epoch must be an integer, got {epoch!r}")
        agents = data["agents"]
        if not isinstance(agents, (list, tuple)) or not all(
            isinstance(name, str) for name in agents
        ):
            raise ProtocolError(f"agents must be a list of strings, got {agents!r}")
        return cls(
            epoch=epoch,
            agents=tuple(agents),
            capacities=_get_number_map(data, "capacities"),
            aggregate_elasticity=_get_number_map(data, "aggregate_elasticity"),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "epoch": self.epoch,
            "agents": list(self.agents),
            "capacities": dict(self.capacities),
            "aggregate_elasticity": dict(self.aggregate_elasticity),
        }


@dataclass(frozen=True)
class CellInfo:
    """One cell worker's identity and state, as the coordinator sees it."""

    cell: str
    host: str
    port: int
    pid: int
    alive: bool
    agents: Tuple[str, ...]
    grant: Dict[str, float]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CellInfo":
        _check_keys(
            data,
            required=("cell", "host", "port", "pid", "alive", "agents", "grant"),
        )
        for key in ("port", "pid"):
            if isinstance(data[key], bool) or not isinstance(data[key], int):
                raise ProtocolError(f"{key} must be an integer, got {data[key]!r}")
        alive = data["alive"]
        if not isinstance(alive, bool):
            raise ProtocolError(f"alive must be a boolean, got {alive!r}")
        agents = data["agents"]
        if not isinstance(agents, (list, tuple)) or not all(
            isinstance(name, str) for name in agents
        ):
            raise ProtocolError(f"agents must be a list of strings, got {agents!r}")
        grant = data["grant"]
        if not isinstance(grant, dict):
            raise ProtocolError(f"grant must be an object, got {grant!r}")
        return cls(
            cell=_get_str(data, "cell"),
            host=_get_str(data, "host"),
            port=int(data["port"]),
            pid=int(data["pid"]),
            alive=alive,
            agents=tuple(agents),
            grant={str(k): _get_number(grant, k) for k in grant},
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "cell": self.cell,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "alive": self.alive,
            "agents": list(self.agents),
            "grant": dict(self.grant),
        }


@dataclass(frozen=True)
class CellsResponse:
    """``GET /v1/cells`` — the coordinator's shard map.

    Smart clients use this to submit samples *directly* to the worker
    that owns their agent (one hop instead of two); operators use it to
    find each cell's metrics endpoint and pid.
    """

    epoch: int
    capacities: Dict[str, float]
    cells: Tuple[CellInfo, ...]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CellsResponse":
        _check_keys(data, required=("epoch", "capacities", "cells"))
        epoch = data["epoch"]
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ProtocolError(f"epoch must be an integer, got {epoch!r}")
        cells = data["cells"]
        if not isinstance(cells, (list, tuple)):
            raise ProtocolError(f"cells must be a list, got {cells!r}")
        return cls(
            epoch=epoch,
            capacities=_get_number_map(data, "capacities"),
            cells=tuple(
                CellInfo.from_dict(cell) if isinstance(cell, dict) else _bad_cell(cell)
                for cell in cells
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "epoch": self.epoch,
            "capacities": dict(self.capacities),
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def owner_of(self, agent: str) -> CellInfo:
        """The live cell currently hosting ``agent`` (KeyError if none)."""
        for cell in self.cells:
            if cell.alive and agent in cell.agents:
                return cell
        raise KeyError(f"no live cell owns agent {agent!r}")


def _bad_cell(value: object) -> CellInfo:
    raise ProtocolError(f"each cell must be an object, got {value!r}")


@dataclass(frozen=True)
class HealthResponse:
    """``GET /healthz`` — liveness plus a tiny service summary."""

    status: str
    epoch: int
    agents: Tuple[str, ...]
    pending_samples: int
    uptime_seconds: float
    mechanism: str = "ref"

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HealthResponse":
        _check_keys(
            data,
            required=("status", "epoch", "agents", "pending_samples", "uptime_seconds"),
            optional=("mechanism",),
        )
        agents = data["agents"]
        if not isinstance(agents, (list, tuple)) or not all(
            isinstance(name, str) for name in agents
        ):
            raise ProtocolError(f"agents must be a list of strings, got {agents!r}")
        for key in ("epoch", "pending_samples"):
            if isinstance(data[key], bool) or not isinstance(data[key], int):
                raise ProtocolError(f"{key} must be an integer, got {data[key]!r}")
        return cls(
            status=_get_str(data, "status"),
            epoch=int(data["epoch"]),
            agents=tuple(agents),
            pending_samples=int(data["pending_samples"]),
            uptime_seconds=_get_number(data, "uptime_seconds"),
            mechanism=_get_str(data, "mechanism") if "mechanism" in data else "ref",
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PROTOCOL_VERSION,
            "status": self.status,
            "epoch": self.epoch,
            "agents": list(self.agents),
            "pending_samples": self.pending_samples,
            "uptime_seconds": self.uptime_seconds,
            "mechanism": self.mechanism,
        }


@dataclass(frozen=True)
class ErrorResponse:
    """Any non-2xx response body."""

    error: str
    detail: str = ""

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ErrorResponse":
        _check_keys(data, required=("error",), optional=("detail",))
        detail = data.get("detail", "")
        if not isinstance(detail, str):
            raise ProtocolError(f"detail must be a string, got {detail!r}")
        return cls(error=_get_str(data, "error"), detail=detail)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"version": PROTOCOL_VERSION, "error": self.error}
        if self.detail:
            payload["detail"] = self.detail
        return payload
