"""Blocking HTTP client for the allocation service.

Used by the integration tests, the CI service-smoke driver and anyone
scripting against ``python -m repro serve`` without an event loop.  One
``http.client`` connection per request (the server closes after each
response), so a single :class:`ServeClient` is safe to share across
threads.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Optional, Sequence, Tuple

from .protocol import (
    AgentResponse,
    AllocationResponse,
    CapacityRequest,
    CapacityResponse,
    CellsResponse,
    HealthResponse,
    SampleRequest,
    SampleResponse,
    parse_json,
)

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, error: str, detail: str = ""):
        message = f"HTTP {status}: {error}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.status = status
        self.error = error
        self.detail = detail


class ServeClient:
    """Thin, typed wrapper over the service's routes.

    Works against both a flat :class:`~repro.serve.server.AllocationServer`
    and a :class:`~repro.serve.shard.ShardCoordinator` (same dialect;
    the coordinator adds ``GET /v1/cells``).
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, str]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read().decode("utf-8", "replace")
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        status, text = self._request(method, path, payload)
        data = parse_json(text)
        if status != 200:
            raise ServeError(
                status,
                str(data.get("error", "unknown")),
                str(data.get("detail", "")),
            )
        return data

    # ------------------------------------------------------------------
    # Routes

    def register(self, agent: str, workload: str) -> AgentResponse:
        """Admit ``agent`` running benchmark ``workload``."""
        payload = {"action": "register", "agent": agent, "workload": workload}
        return AgentResponse.from_dict(self._json("POST", "/v1/agents", payload))

    def deregister(self, agent: str) -> AgentResponse:
        """Retire ``agent``; capacity is re-divided from the next epoch."""
        payload = {"action": "deregister", "agent": agent}
        return AgentResponse.from_dict(self._json("POST", "/v1/agents", payload))

    def submit_sample(
        self, agent: str, bandwidth_gbps: float, cache_kb: float, ipc: float
    ) -> SampleResponse:
        """Queue one measured (bundle, IPC) observation for the next epoch."""
        request = SampleRequest(
            agent=agent, bandwidth_gbps=bandwidth_gbps, cache_kb=cache_kb, ipc=ipc
        )
        return SampleResponse.from_dict(
            self._json("POST", "/v1/samples", request.as_dict())
        )

    def grant_capacity(self, capacities: Dict[str, float]) -> CapacityResponse:
        """Apply a hierarchical capacity grant (coordinator → cell worker).

        Returns the cell's post-grant state, including the aggregate
        elasticities the next Eq. 13 split needs.
        """
        request = CapacityRequest(capacities=dict(capacities))
        return CapacityResponse.from_dict(
            self._json("POST", "/v1/capacity", request.as_dict())
        )

    def cells(self) -> CellsResponse:
        """The coordinator's shard map (coordinator-only route)."""
        return CellsResponse.from_dict(self._json("GET", "/v1/cells"))

    def allocation(self) -> AllocationResponse:
        """The current epoch's enforced allocation."""
        return AllocationResponse.from_dict(self._json("GET", "/v1/allocation"))

    def health(self) -> HealthResponse:
        return HealthResponse.from_dict(self._json("GET", "/healthz"))

    def metrics_text(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics``."""
        status, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, "metrics_unavailable", text[:200])
        return text

    # ------------------------------------------------------------------
    # Conveniences

    def wait_ready(
        self,
        timeout: float = 10.0,
        interval: float = 0.05,
        require: "str | Sequence[str]" = ("ok", "degraded"),
    ) -> HealthResponse:
        """Poll ``/healthz`` until the service is serving (or raise TimeoutError).

        A *degraded* sharded coordinator — alive and serving after a
        worker death — counts as ready by default: the health object is
        returned and callers branch on ``health.status``.  Callers that
        genuinely need a fully healthy fleet pass ``require="ok"`` (a
        single status or any sequence of acceptable statuses).
        """
        accepted = (require,) if isinstance(require, str) else tuple(require)
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        last_status: Optional[str] = None
        while time.monotonic() < deadline:
            try:
                health = self.health()
                last_status = health.status
                if health.status in accepted:
                    return health
            except (OSError, socket.timeout, ServeError, ValueError) as error:
                last_error = error
            time.sleep(interval)
        detail = (
            f"last status {last_status!r}" if last_status is not None else last_error
        )
        raise TimeoutError(f"service not ready after {timeout}s: {detail}")

    def wait_for_epoch(self, epoch: int, timeout: float = 10.0) -> HealthResponse:
        """Block until the service has completed at least ``epoch`` epochs."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            health = self.health()
            if health.epoch >= epoch:
                return health
            time.sleep(0.01)
        raise TimeoutError(f"epoch {epoch} not reached after {timeout}s")
