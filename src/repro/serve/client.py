"""Blocking HTTP client for the allocation service.

Used by the integration tests, the CI service-smoke driver and anyone
scripting against ``python -m repro serve`` without an event loop.

Transport is a **pooled persistent connection per thread**: the server
speaks HTTP/1.1 keep-alive, so one ``http.client.HTTPConnection`` is
reused across calls (connections live in a ``threading.local``, so a
single :class:`ServeClient` is still safe to share across threads).
A stale pooled socket — the server closed its end between our requests,
e.g. after an idle timeout or a restart — is reconnected once,
transparently; idempotent GETs get the same single transparent retry on
*any* transport failure.  Transport failures that survive the retry are
raised as :class:`ServeError` with ``status=0`` and the ``host:port``
in the message, never as bare ``ConnectionError``.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from .protocol import (
    AgentResponse,
    AllocationResponse,
    BulkSampleRequest,
    BulkSampleResponse,
    CapacityRequest,
    CapacityResponse,
    CellsResponse,
    HealthResponse,
    SampleRequest,
    SampleResponse,
    parse_json,
)

__all__ = ["ServeClient", "ServeError"]

#: Signatures of a pooled socket the server closed between our requests
#: (idle-timeout reap, restart).  The request was never processed, so a
#: single transparent retry on a fresh connection is safe for any method.
_STALE_SOCKET_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


class ServeError(RuntimeError):
    """A non-2xx response from the service, or a transport failure.

    ``status`` is the HTTP status for protocol-level errors and ``0``
    for transport failures (connection refused/reset, stale socket that
    survived the retry, timeouts) — check :attr:`is_transport`.
    """

    def __init__(self, status: int, error: str, detail: str = ""):
        message = f"transport: {error}" if status == 0 else f"HTTP {status}: {error}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.status = status
        self.error = error
        self.detail = detail

    @property
    def is_transport(self) -> bool:
        """True when no HTTP response was obtained at all (``status == 0``)."""
        return self.status == 0


class ServeClient:
    """Thin, typed wrapper over the service's routes.

    Works against both a flat :class:`~repro.serve.server.AllocationServer`
    and a :class:`~repro.serve.shard.ShardCoordinator` (same dialect;
    the coordinator adds ``GET /v1/cells``).
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Transport

    def _connection(self) -> Tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection, plus whether it is reused."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, True
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        self._local.connection = connection
        return connection, False

    def _discard(self) -> None:
        """Drop (and close) this thread's pooled connection, if any."""
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Close this thread's pooled connection (idempotent)."""
        self._discard()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, str]:
        body = None
        headers: Dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection, reused = self._connection()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                text = response.read().decode("utf-8", "replace")
                if response.will_close:
                    # The server asked to close (e.g. it answered a
                    # parse error); start fresh next call.
                    self._discard()
                return response.status, text
            except (http.client.HTTPException, OSError) as error:
                self._discard()
                stale = reused and isinstance(error, _STALE_SOCKET_ERRORS)
                if attempt == 0 and (stale or method == "GET"):
                    continue  # one transparent reconnect
                raise ServeError(
                    0,
                    "transport_error",
                    f"{method} {path} on {self.host}:{self.port}: "
                    f"{type(error).__name__}: {error}",
                ) from error
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        status, text = self._request(method, path, payload)
        data = parse_json(text)
        if status != 200:
            raise ServeError(
                status,
                str(data.get("error", "unknown")),
                str(data.get("detail", "")),
            )
        return data

    # ------------------------------------------------------------------
    # Routes

    def register(
        self,
        agent: str,
        workload: Optional[str] = None,
        workload_class: Optional[str] = None,
    ) -> AgentResponse:
        """Admit ``agent`` running benchmark ``workload``.

        ``workload=None`` sends the *profile-free* register variant
        (``"profile": null``) — the server must be running with
        ``--learn-demands`` and will learn the agent's demands online
        from its samples.  ``workload_class`` optionally hints the
        agent's class (``"C"``/``"M"``) for centroid priors.
        """
        payload: Dict[str, object] = {"action": "register", "agent": agent}
        if workload is None:
            payload["profile"] = None
            if workload_class is not None:
                payload["workload_class"] = workload_class
        else:
            payload["workload"] = workload
        return AgentResponse.from_dict(self._json("POST", "/v1/agents", payload))

    def deregister(self, agent: str) -> AgentResponse:
        """Retire ``agent``; capacity is re-divided from the next epoch."""
        payload = {"action": "deregister", "agent": agent}
        return AgentResponse.from_dict(self._json("POST", "/v1/agents", payload))

    def submit_sample(
        self,
        agent: str,
        bandwidth_gbps: float,
        cache_kb: float,
        ipc: float,
        exploration: bool = False,
    ) -> SampleResponse:
        """Queue one measured (bundle, IPC) observation for the next epoch.

        ``exploration=True`` marks a deliberately perturbed measurement
        so the server's outlier gate does not reject it.
        """
        request = SampleRequest(
            agent=agent,
            bandwidth_gbps=bandwidth_gbps,
            cache_kb=cache_kb,
            ipc=ipc,
            exploration=exploration,
        )
        return SampleResponse.from_dict(
            self._json("POST", "/v1/samples", request.as_dict())
        )

    def post_samples_bulk(
        self,
        samples: Iterable[Union[SampleRequest, Tuple[str, float, float, float]]],
    ) -> BulkSampleResponse:
        """Ship an epoch's worth of measurements in ONE round trip.

        ``samples`` is a sequence of :class:`SampleRequest` objects or
        ``(agent, bandwidth_gbps, cache_kb, ipc)`` tuples.  The response
        reports per-sample accept/reject, index-aligned with the input.
        """
        request = BulkSampleRequest(
            samples=tuple(
                item
                if isinstance(item, SampleRequest)
                else SampleRequest(
                    agent=item[0],
                    bandwidth_gbps=item[1],
                    cache_kb=item[2],
                    ipc=item[3],
                )
                for item in samples
            )
        )
        return BulkSampleResponse.from_dict(
            self._json("POST", "/v1/samples", request.as_dict())
        )

    def grant_capacity(self, capacities: Dict[str, float]) -> CapacityResponse:
        """Apply a hierarchical capacity grant (coordinator → cell worker).

        Returns the cell's post-grant state, including the aggregate
        elasticities the next Eq. 13 split needs.
        """
        request = CapacityRequest(capacities=dict(capacities))
        return CapacityResponse.from_dict(
            self._json("POST", "/v1/capacity", request.as_dict())
        )

    def cells(self) -> CellsResponse:
        """The coordinator's shard map (coordinator-only route)."""
        return CellsResponse.from_dict(self._json("GET", "/v1/cells"))

    def allocation(self) -> AllocationResponse:
        """The current epoch's enforced allocation."""
        return AllocationResponse.from_dict(self._json("GET", "/v1/allocation"))

    def health(self) -> HealthResponse:
        return HealthResponse.from_dict(self._json("GET", "/healthz"))

    def metrics_text(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics``."""
        status, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, "metrics_unavailable", text[:200])
        return text

    # ------------------------------------------------------------------
    # Conveniences

    def wait_ready(
        self,
        timeout: float = 10.0,
        interval: float = 0.05,
        require: "str | Sequence[str]" = ("ok", "degraded"),
    ) -> HealthResponse:
        """Poll ``/healthz`` until the service is serving (or raise TimeoutError).

        A *degraded* sharded coordinator — alive and serving after a
        worker death — counts as ready by default: the health object is
        returned and callers branch on ``health.status``.  Callers that
        genuinely need a fully healthy fleet pass ``require="ok"`` (a
        single status or any sequence of acceptable statuses).
        """
        accepted = (require,) if isinstance(require, str) else tuple(require)
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        last_status: Optional[str] = None
        while time.monotonic() < deadline:
            try:
                health = self.health()
                last_status = health.status
                if health.status in accepted:
                    return health
            except (OSError, socket.timeout, ServeError, ValueError) as error:
                last_error = error
            time.sleep(interval)
        detail = (
            f"last status {last_status!r}" if last_status is not None else last_error
        )
        raise TimeoutError(f"service not ready after {timeout}s: {detail}")

    def wait_for_epoch(self, epoch: int, timeout: float = 10.0) -> HealthResponse:
        """Block until the service has completed at least ``epoch`` epochs."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            health = self.health()
            if health.epoch >= epoch:
                return health
            time.sleep(0.01)
        raise TimeoutError(f"epoch {epoch} not reached after {timeout}s")
