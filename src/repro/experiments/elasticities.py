"""Experiments: Fig. 9 and Table 2 — elasticities and characterization."""

from __future__ import annotations

from ..core import classify_many
from ..profiling import OfflineProfiler
from ..workloads import BENCHMARK_ORDER, BENCHMARKS, MIXES
from .base import ExperimentResult, experiment

__all__ = ["fig09_elasticities", "table2_mixes"]


def _profiler(profiler) -> OfflineProfiler:
    return profiler if profiler is not None else OfflineProfiler()


@experiment("fig9")
def fig09_elasticities(profiler=None) -> ExperimentResult:
    """Re-scaled elasticities and C/M groups for all benchmarks (Fig. 9)."""
    profiler = _profiler(profiler)
    prefs = classify_many(profiler.fit_suite())
    lines = ["=== Fig. 9: re-scaled elasticities (cache vs memory bandwidth) ==="]
    lines.append(f"{'benchmark':<20} {'a_cache':>8} {'a_mem':>8} {'group':>6} {'paper':>6}")
    mismatches = 0
    groups = {}
    for name in BENCHMARK_ORDER:
        pref = prefs[name]
        expected = BENCHMARKS[name].expected_group
        match = pref.group.value == expected
        mismatches += 0 if match else 1
        groups[name] = pref.group.value
        flag = "" if match else "  <-- MISMATCH"
        lines.append(
            f"{name:<20} {pref.cache_elasticity:>8.3f} {pref.memory_elasticity:>8.3f} "
            f"{pref.group.value:>6} {expected:>6}{flag}"
        )
    n_c = sum(1 for g in groups.values() if g == "C")
    lines.append(
        f"\ngroups: {n_c} C, {len(groups) - n_c} M; mismatches vs Table 2: {mismatches}"
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9: re-scaled elasticities",
        text="\n".join(lines),
        data={"groups": groups, "mismatches": mismatches},
    )


@experiment("table2")
def table2_mixes(profiler=None) -> ExperimentResult:
    """Table 2 rows with measured C/M counts cross-checked."""
    profiler = _profiler(profiler)
    prefs = classify_many(profiler.fit_suite())
    lines = ["=== Table 2: workload characterization ==="]
    lines.append(f"{'mix':<6} {'members':<72} {'paper':>7} {'measured':>9}")
    mismatches = 0
    measured_all = {}
    for mix in MIXES.values():
        measured_c = sum(1 for m in mix.members if prefs[m].group.value == "C")
        measured_m = mix.n_agents - measured_c
        measured = (
            f"{measured_c}C-{measured_m}M" if measured_c and measured_m
            else (f"{measured_c}C" if measured_c else f"{measured_m}M")
        )
        measured_all[mix.name] = measured
        match = measured == mix.characterization
        mismatches += 0 if match else 1
        members = ", ".join(mix.members)
        lines.append(
            f"{mix.name:<6} {members:<72} {mix.characterization:>7} {measured:>9}"
            f"{'' if match else '  <-- MISMATCH'}"
        )
    lines.append(f"\nmismatches vs Table 2: {mismatches}")
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: workload characterization",
        text="\n".join(lines),
        data={"measured": measured_all, "mismatches": mismatches},
    )
