"""Experiment: regret of profile-free learned allocations vs the oracle.

*Online Learning Demands in Max-min Fairness* frames profile-free
allocation as an online-learning problem: how much welfare does the
system give up, epoch by epoch, for not knowing the demands it is
allocating for?  This harness makes that number concrete for the
:mod:`repro.learning` controller:

* the **oracle** allocation is Eq. 13 run on *offline-profiled*
  utilities (the full sweep the learner is built to avoid).  For
  re-scaled Cobb-Douglas utilities the Eq. 13 closed form maximizes
  Nash welfare ``sum_i log u_i``, so it is the right yardstick: no
  feasible allocation scores higher;
* the **learned** trajectory is a ``DynamicAllocator(learn_demands=
  True)`` run — naive (or centroid) priors, ε-greedy exploration,
  demand caps — with optional mid-run churn (an agent arriving with no
  history is exactly the case the learner exists for);
* **per-epoch regret** is the mean oracle-minus-learned log-utility
  gap over the agents present that epoch, evaluated under the *oracle*
  utilities on the enforced (post-cap, post-perturbation) shares the
  learned run actually granted.  Both allocations go through the same
  floor projection, so the gap measures learning, not floors;
* **convergence epoch** is the first epoch whose trailing
  ``window``-epoch mean regret drops below ``threshold`` — the
  "converges within N epochs" acceptance bound the ``regret-smoke`` CI
  job gates on, together with the final-window regret itself.

Registered as experiment id ``"regret"`` (``repro reproduce regret``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.mechanism import (
    Agent,
    AllocationProblem,
    apply_allocation_floors,
    proportional_elasticity,
)
from ..core.utility import CobbDouglasUtility
from ..dynamic import ChurnEvent, ChurnSchedule, DynamicAllocator
from ..workloads import get_workload
from .base import ExperimentResult, experiment

__all__ = ["RegretReport", "run_regret", "regret"]

#: Default learned-run population (agent name -> benchmark).
DEFAULT_AGENTS: Dict[str, str] = {
    "stream": "streamcluster",
    "freq": "freqmine",
    "dedup": "dedup",
}

#: The churny arrival exercising cold-start learning mid-run.
CHURN_AGENT = ("newcomer", "x264")


@dataclass(frozen=True)
class RegretReport:
    """Per-epoch and cumulative regret of a learned run vs the oracle."""

    agents: Tuple[str, ...]
    epochs: int
    threshold: float
    window: int
    per_epoch: Tuple[float, ...]
    per_agent_final: Dict[str, float]
    convergence_epoch: Optional[int]

    @property
    def cumulative(self) -> Tuple[float, ...]:
        """Running sum of the per-epoch regret."""
        return tuple(np.cumsum(self.per_epoch))

    @property
    def cumulative_regret(self) -> float:
        """Total regret over the whole run."""
        return float(np.sum(self.per_epoch))

    @property
    def final_window_regret(self) -> float:
        """Mean regret over the last ``window`` epochs."""
        return float(np.mean(self.per_epoch[-self.window :]))

    def converged_within(self, n_epochs: int) -> bool:
        """True when the trailing-window bound was met by ``n_epochs``."""
        return self.convergence_epoch is not None and self.convergence_epoch <= n_epochs

    def as_dict(self) -> Dict:
        """JSON-ready payload (the regret-smoke artifact body)."""
        return {
            "agents": list(self.agents),
            "epochs": self.epochs,
            "threshold": self.threshold,
            "window": self.window,
            "per_epoch": [float(v) for v in self.per_epoch],
            "cumulative": [float(v) for v in self.cumulative],
            "cumulative_regret": self.cumulative_regret,
            "final_window_regret": self.final_window_regret,
            "convergence_epoch": self.convergence_epoch,
            "per_agent_final": {
                name: float(v) for name, v in sorted(self.per_agent_final.items())
            },
        }

    def summary(self) -> str:
        lines = [
            f"agents:               {', '.join(self.agents)}",
            f"epochs:               {self.epochs}",
            f"cumulative regret:    {self.cumulative_regret:.4f}",
            f"final-window regret:  {self.final_window_regret:.4f} "
            f"(window={self.window}, threshold={self.threshold})",
            f"convergence epoch:    {self.convergence_epoch}",
            "per-agent final-window regret:",
        ]
        for name, value in sorted(self.per_agent_final.items()):
            lines.append(f"  {name:<16} {value:.4f}")
        return "\n".join(lines)


def _oracle_utilities(
    benchmarks: Dict[str, str], profiler=None
) -> Dict[str, CobbDouglasUtility]:
    """Offline-profiled, re-scaled utility per agent (the oracle's view)."""
    from ..profiling import OfflineProfiler

    owns = profiler is None
    if owns:
        profiler = OfflineProfiler(noise_sigma=0.0)
    try:
        fits = {
            bench: profiler.fit(get_workload(bench)).utility.rescaled()
            for bench in sorted(set(benchmarks.values()))
        }
    finally:
        if owns:
            profiler.close()
    return {name: fits[bench] for name, bench in benchmarks.items()}


def run_regret(
    agents: Optional[Dict[str, str]] = None,
    epochs: int = 200,
    capacities: Optional[Tuple[float, float]] = None,
    churn: bool = True,
    prior: str = "equal",
    seed: int = 0,
    threshold: float = 0.05,
    window: int = 20,
    profiler=None,
) -> RegretReport:
    """Run the learned trajectory and score it against the oracle.

    Parameters mirror the ``regret-smoke`` knobs: ``agents`` maps agent
    names to benchmarks (the learned run still *measures* on these
    ground-truth workloads — it just never sees their profiles),
    ``churn=True`` adds :data:`CHURN_AGENT` a quarter of the way in and
    removes it at the three-quarter mark, and ``threshold``/``window``
    define the convergence bound recorded in the report.
    """
    if epochs < 2 * window:
        raise ValueError(f"epochs must be >= 2 * window, got {epochs} < {2 * window}")
    agents = dict(DEFAULT_AGENTS if agents is None else agents)
    if capacities is None:
        capacities = (6.4 * len(agents), 1024.0 * len(agents))
    oracle = _oracle_utilities(agents, profiler=profiler)
    name, bench = CHURN_AGENT
    schedule = None
    if churn:
        oracle.update(_oracle_utilities({name: bench}, profiler=profiler))
        schedule = ChurnSchedule(
            [
                ChurnEvent(epochs // 4, "add", name, get_workload(bench)),
                ChurnEvent((3 * epochs) // 4, "remove", name),
            ]
        )
    allocator = DynamicAllocator(
        {agent: get_workload(b) for agent, b in agents.items()},
        capacities=capacities,
        seed=seed,
        learn_demands=True,
        prior=prior,
    )
    result = allocator.run(epochs, churn=schedule)

    floors = (allocator.MIN_BANDWIDTH_GBPS, allocator.MIN_CACHE_KB)
    per_epoch = []
    per_agent: Dict[str, list] = {agent: [] for agent in oracle}
    for record in result.records:
        present = list(record.agents)
        problem = AllocationProblem(
            [Agent(a, oracle[a]) for a in present],
            capacities,
            allocator.resource_names,
        )
        ideal = apply_allocation_floors(proportional_elasticity(problem), floors)
        enforced = record.enforced or record.allocation
        gaps = []
        for i, agent in enumerate(present):
            utility = oracle[agent]
            gap = float(
                np.log(utility.value(ideal.shares[i]))
                - np.log(utility.value(enforced[agent]))
            )
            gaps.append(gap)
            per_agent[agent].append(gap)
        per_epoch.append(float(np.mean(gaps)))

    series = np.asarray(per_epoch)
    convergence_epoch: Optional[int] = None
    if series.size >= window:
        trailing = np.convolve(series, np.ones(window) / window, mode="valid")
        hits = np.nonzero(trailing <= threshold)[0]
        if hits.size:
            # trailing[k] covers epochs [k, k + window): converged at the
            # window's *last* epoch — the bound is met by then.
            convergence_epoch = int(hits[0]) + window - 1

    per_agent_final = {
        agent: float(np.mean(values[-window:]))
        for agent, values in per_agent.items()
        if values
    }
    for agent, value in per_agent_final.items():
        allocator.metrics.gauge(
            "repro_learning_regret",
            help="Final-window mean regret vs the oracle allocation.",
            agent=agent,
        ).set(value)
    return RegretReport(
        agents=tuple(sorted(per_agent_final)),
        epochs=epochs,
        threshold=threshold,
        window=window,
        per_epoch=tuple(per_epoch),
        per_agent_final=per_agent_final,
        convergence_epoch=convergence_epoch,
    )


@experiment("regret")
def regret(profiler=None) -> ExperimentResult:
    """Regret of the profile-free learned allocation vs the oracle."""
    report = run_regret(profiler=profiler)
    return ExperimentResult(
        experiment_id="regret",
        title="Online demand learning: regret vs offline-profiled oracle",
        text=report.summary(),
        data=report.as_dict(),
    )
