"""Experiment: Figs. 10-12 — equal slowdown vs REF on benchmark pairs."""

from __future__ import annotations

from ..core import check_fairness, proportional_elasticity
from ..optimize import equal_slowdown
from ..profiling import OfflineProfiler
from ..workloads import problem_from_fits
from ..workloads.mixes import WorkloadMix
from .base import ExperimentResult, experiment

__all__ = ["EXAMPLE_PAIRS", "fig10_12_examples"]

CAPACITIES = (24.0, 12.0 * 1024)

#: The §5.4 roles and the pairs that play them with our fitted
#: elasticities (role shifts documented in EXPERIMENTS.md).
EXAMPLE_PAIRS = [
    ("Fig. 10 (Example 1, C-M, equal slowdown happens fair)", "histogram", "string_match", "1C-1M"),
    ("Fig. 11 (Example 2, C-M, SI+EF violated)", "histogram", "dedup", "1C-1M"),
    ("Fig. 11 (paper's pair)", "barnes", "canneal", "1C-1M"),
    ("Fig. 12 (Example 3, C-C, SI+EF violated)", "freqmine", "linear_regression", "2C"),
]


def _pair_report(fits, title, first, second, label):
    mix = WorkloadMix(f"{first}+{second}", (first, second), label)
    problem = problem_from_fits(mix, fits, CAPACITIES)
    lines = [f"--- {title}: {first} + {second} ---"]
    verdicts = {}
    for mech_name, mechanism in (
        ("equal slowdown", equal_slowdown),
        ("proportional elasticity", proportional_elasticity),
    ):
        allocation = mechanism(problem)
        fractions = allocation.fractions()
        report = check_fairness(allocation, rtol=1e-4)
        for i, agent in enumerate(problem.agents):
            lines.append(
                f"  {mech_name:<24} {agent.name:<20} "
                f"bw {fractions[i, 0] * 100:5.1f}%  cache {fractions[i, 1] * 100:5.1f}%"
            )
        lines.append(
            f"  {mech_name:<24} SI={report.sharing_incentives} "
            f"EF={report.envy_free} PE={report.pareto_efficient}"
        )
        verdicts[mech_name] = (
            report.sharing_incentives,
            report.envy_free,
            report.pareto_efficient,
        )
    return "\n".join(lines), verdicts


@experiment("fig10-12")
def fig10_12_examples(profiler=None) -> ExperimentResult:
    """The three §5.4 examples, allocations as % of total capacity."""
    profiler = profiler if profiler is not None else OfflineProfiler()
    fits = profiler.fit_suite()
    parts = ["=== Figs. 10-12: allocations as % of total capacity ==="]
    verdicts = {}
    for title, first, second, label in EXAMPLE_PAIRS:
        text, pair_verdicts = _pair_report(fits, title, first, second, label)
        parts.append(text)
        verdicts[f"{first}+{second}"] = pair_verdicts
    return ExperimentResult(
        experiment_id="fig10-12",
        title="Figs. 10-12: equal slowdown vs proportional elasticity",
        text="\n".join(parts),
        data={"verdicts": verdicts},
    )
