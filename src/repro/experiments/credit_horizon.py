"""Experiment: credit-based temporal fairness over bursty horizons.

The :class:`~repro.core.registry.CreditMechanism` deliberately trades
the paper's *per-epoch* sharing incentives for their *windowed* form:
an agent shorted in one epoch banks credit and is repaid in later
epochs, so its time-averaged bundle — not each instantaneous one —
dominates the equal split.  This harness makes that trade measurable:

* drive a mechanism through a horizon of epochs whose agents have
  *time-varying* elasticities (:class:`AgentSchedule`, e.g. a steady
  agent sharing with a bursty one that flips its preferred resource);
* count utility-based per-epoch SI violations
  (:func:`~repro.core.properties.satisfies_sharing_incentives`);
* check the windowed properties over tumbling windows of epochs:

  - **windowed SI** — each agent's *mean received fraction* of every
    resource over the window is at least ``1/N`` minus a telescoping
    tolerance of ``2 * max_balance / window`` (the credit-balance
    update sums to the balance change, which the clip bounds), which
    by monotonicity dominates an equal split of the window;
  - **windowed EF** — no agent prefers another agent's *window-mean*
    bundle to its own under any utility it held during the window.

The registered ``credit-horizon`` experiment runs a bursty pair under
both ``ref`` and ``credit``: REF never violates per-epoch SI (the
paper's theorem) but tracks the instantaneous elasticities, while
credit shows per-epoch violations around phase flips yet repays them
within the window.  See ``docs/mechanisms.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mechanism import Agent, AllocationProblem
from ..core.properties import satisfies_sharing_incentives
from ..core.registry import CreditMechanism, SolveContext, create_mechanism
from ..core.utility import CobbDouglasUtility
from .base import ExperimentResult, experiment

__all__ = [
    "AgentSchedule",
    "HorizonReport",
    "bursty_pair",
    "run_credit_horizon",
    "credit_horizon",
]

#: Default global capacities: the paper's 24 GB/s + 12 MB example.
CAPACITIES = (24.0, 12.0 * 1024)


@dataclass(frozen=True)
class AgentSchedule:
    """One agent's elasticity vector as a cyclic function of the epoch.

    ``phases`` is a sequence of ``(length, alpha)`` pairs; the schedule
    cycles through them forever, holding each ``alpha`` for ``length``
    epochs.  A steady agent is a single phase.
    """

    name: str
    phases: Tuple[Tuple[int, Tuple[float, ...]], ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"agent {self.name!r} needs at least one phase")
        if any(length <= 0 for length, _alpha in self.phases):
            raise ValueError(f"agent {self.name!r} has a non-positive phase length")

    @property
    def cycle(self) -> int:
        """Epochs in one full pass through the phases."""
        return sum(length for length, _alpha in self.phases)

    def alpha_at(self, epoch: int) -> Tuple[float, ...]:
        """The elasticity vector in force at ``epoch``."""
        offset = epoch % self.cycle
        for length, alpha in self.phases:
            if offset < length:
                return alpha
            offset -= length
        raise AssertionError("unreachable")  # pragma: no cover


def bursty_pair(
    quiet: int = 30, burst: int = 20
) -> Tuple[AgentSchedule, AgentSchedule]:
    """A steady agent sharing with a bursty one (the canonical stressor).

    The steady agent wants ``(0.5, 0.5)`` forever; the bursty one is
    cache-hungry for ``quiet`` epochs then flips to bandwidth-hungry
    for ``burst`` epochs.  The natural analysis window is the bursty
    agent's full cycle, ``quiet + burst``.
    """
    steady = AgentSchedule("steady", ((quiet + burst, (0.5, 0.5)),))
    bursty = AgentSchedule(
        "bursty", ((quiet, (0.1, 0.9)), (burst, (0.9, 0.1)))
    )
    return steady, bursty


@dataclass(frozen=True)
class HorizonReport:
    """What one mechanism did over one scheduled horizon."""

    mechanism: str
    epochs: int
    window: int
    agent_names: Tuple[str, ...]
    #: Epochs whose allocation violated utility-based per-epoch SI.
    per_epoch_si_violations: int
    #: Every epoch's allocation fit the capacities.
    all_feasible: bool
    #: min over (window, agent, resource) of mean fraction - 1/N.
    min_windowed_si_margin: float
    #: Telescoping slack the windowed-SI check allows below 1/N.
    si_window_tolerance: float
    windowed_si_ok: bool
    #: max over (window, epoch, agent pair) of u_i(xbar_j)/u_i(xbar_i) - 1.
    max_windowed_envy: float
    windowed_ef_ok: bool
    #: Largest |credit balance| ever observed (0 for stateless mechanisms).
    max_abs_balance: float
    #: Largest |sum over agents of balance| per resource (credit only).
    balance_zero_sum_gap: float
    #: Per-window minimum SI margin, for the report table.
    window_margins: Tuple[float, ...] = field(default=())


def run_credit_horizon(
    schedules: Sequence[AgentSchedule],
    capacities: Sequence[float] = CAPACITIES,
    epochs: int = 300,
    window: int = 50,
    mechanism: str = "credit",
    spend_rate: float = 4.0,
    max_balance: float = 0.5,
    envy_rtol: Optional[float] = None,
) -> HorizonReport:
    """Drive ``mechanism`` through the scheduled horizon and audit it.

    ``epochs`` must be a whole number of tumbling ``window``s so every
    epoch is audited exactly once.  ``spend_rate``/``max_balance`` are
    forwarded to the credit mechanism (ignored for stateless ones);
    the default spend rate is high enough that a 9:1 elasticity skew
    reaches its bias equilibrium without saturating the bank.

    ``envy_rtol`` defaults to the envy a window-mean fraction at the
    edge of the windowed-SI tolerance band could legitimately produce
    (mean fractions within ``1/N ± tol`` bound the homogeneous utility
    ratio by ``(1/N + tol) / (1/N - tol)``).
    """
    if epochs <= 0 or window <= 0:
        raise ValueError("epochs and window must be positive")
    if epochs % window != 0:
        raise ValueError(
            f"epochs ({epochs}) must be a multiple of window ({window})"
        )
    names = [schedule.name for schedule in schedules]
    if len(set(names)) != len(names):
        raise ValueError(f"schedule names must be unique, got {names}")
    caps = np.asarray(capacities, dtype=float)
    n_agents, n_resources = len(schedules), len(caps)
    impl = (
        create_mechanism(mechanism, spend_rate=spend_rate, max_balance=max_balance)
        if mechanism == "credit"
        else create_mechanism(mechanism)
    )

    fractions = np.empty((epochs, n_agents, n_resources))
    utilities: List[List[CobbDouglasUtility]] = []
    per_epoch_si_violations = 0
    all_feasible = True
    max_abs_balance = 0.0
    zero_sum_gap = 0.0
    for t in range(epochs):
        agents = tuple(
            Agent(s.name, CobbDouglasUtility(s.alpha_at(t))) for s in schedules
        )
        problem = AllocationProblem(agents, tuple(caps))
        allocation = impl.solve(problem, SolveContext(epoch=t))
        all_feasible = all_feasible and allocation.is_feasible()
        if not satisfies_sharing_incentives(allocation):
            per_epoch_si_violations += 1
        fractions[t] = allocation.shares / caps
        utilities.append([agent.utility for agent in agents])
        if impl.stateful:
            impl.observe(allocation, epoch=t)
        if isinstance(impl, CreditMechanism):
            balances = np.vstack([impl.balance(name, n_resources) for name in names])
            max_abs_balance = max(max_abs_balance, float(np.abs(balances).max()))
            zero_sum_gap = max(
                zero_sum_gap, float(np.abs(balances.sum(axis=0)).max())
            )

    entitlement = 1.0 / n_agents
    si_tolerance = (
        2.0 * max_balance / window if isinstance(impl, CreditMechanism) else 1e-9
    )
    if envy_rtol is None:
        envy_rtol = (entitlement + si_tolerance) / (entitlement - si_tolerance) - 1.0
    window_margins: List[float] = []
    max_envy = 0.0
    for start in range(0, epochs, window):
        mean_fraction = fractions[start : start + window].mean(axis=0)
        window_margins.append(float((mean_fraction - entitlement).min()))
        mean_bundles = mean_fraction * caps
        for t in range(start, start + window):
            for i in range(n_agents):
                u_own = utilities[t][i].value(mean_bundles[i])
                for j in range(n_agents):
                    if i == j:
                        continue
                    envy = utilities[t][i].value(mean_bundles[j]) / u_own - 1.0
                    max_envy = max(max_envy, envy)

    min_margin = min(window_margins)
    return HorizonReport(
        mechanism=mechanism,
        epochs=epochs,
        window=window,
        agent_names=tuple(names),
        per_epoch_si_violations=per_epoch_si_violations,
        all_feasible=all_feasible,
        min_windowed_si_margin=min_margin,
        si_window_tolerance=si_tolerance,
        windowed_si_ok=min_margin >= -si_tolerance,
        max_windowed_envy=max_envy,
        windowed_ef_ok=max_envy <= envy_rtol,
        max_abs_balance=max_abs_balance,
        balance_zero_sum_gap=zero_sum_gap,
        window_margins=tuple(window_margins),
    )


def _report_lines(report: HorizonReport) -> List[str]:
    lines = [
        f"--- {report.mechanism}: {report.epochs} epochs, "
        f"window {report.window}, agents {', '.join(report.agent_names)} ---",
        f"  per-epoch SI violations : {report.per_epoch_si_violations}",
        f"  all epochs feasible     : {report.all_feasible}",
        f"  windowed SI             : ok={report.windowed_si_ok} "
        f"min margin {report.min_windowed_si_margin:+.2e} "
        f"(tolerance {report.si_window_tolerance:.2e})",
        f"  windowed EF             : ok={report.windowed_ef_ok} "
        f"max envy {report.max_windowed_envy:.2e}",
    ]
    if report.mechanism == "credit":
        lines.append(
            f"  credit bank             : max |balance| "
            f"{report.max_abs_balance:.3f}, zero-sum gap "
            f"{report.balance_zero_sum_gap:.2e}"
        )
    return lines


@experiment("credit-horizon")
def credit_horizon(profiler=None) -> ExperimentResult:
    """Windowed SI/EF of ``credit`` vs ``ref`` on a bursty agent pair.

    Synthetic elasticity schedules, so the shared profiler is unused.
    REF satisfies SI every epoch by construction but fails the windowed
    checks (its window-mean bundles track the instantaneous
    elasticities, not the entitlement); credit violates per-epoch SI —
    marginally at its bias equilibrium, sharply at the bursty agent's
    phase flips — yet repays every debt within the 50-epoch window, so
    the windowed SI and EF properties hold.
    """
    steady, bursty = bursty_pair()
    reports: Dict[str, HorizonReport] = {
        name: run_credit_horizon((steady, bursty), mechanism=name)
        for name in ("ref", "credit")
    }
    parts = ["=== Credit horizon: temporal fairness over a bursty cycle ==="]
    for report in reports.values():
        parts.extend(_report_lines(report))
    return ExperimentResult(
        experiment_id="credit-horizon",
        title="Credit mechanism: windowed SI/EF over bursty horizons",
        text="\n".join(parts),
        data={
            name: {
                "per_epoch_si_violations": report.per_epoch_si_violations,
                "windowed_si_ok": report.windowed_si_ok,
                "windowed_ef_ok": report.windowed_ef_ok,
                "min_windowed_si_margin": report.min_windowed_si_margin,
                "max_abs_balance": report.max_abs_balance,
            }
            for name, report in reports.items()
        },
    )
