"""Experiment: Table 1 — the simulated platform parameters."""

from __future__ import annotations

from ..sim import TABLE1_PLATFORM
from .base import ExperimentResult, experiment

__all__ = ["table1_platform"]


@experiment("table1")
def table1_platform(profiler=None) -> ExperimentResult:
    """Print the reproduction's analogue of Table 1."""
    platform = TABLE1_PLATFORM
    lines = ["=== Table 1: platform parameters ==="]
    lines.append(
        f"Processor      : {platform.core.frequency_ghz} GHz OOO core, "
        f"{platform.core.issue_width}-wide issue"
    )
    lines.append(
        f"L1 cache       : {platform.l1.size_kb} KB, {platform.l1.ways}-way, "
        f"{platform.l1.line_bytes}-byte blocks, {platform.l1.latency_cycles}-cycle latency"
    )
    lines.append(
        f"L2 cache       : {list(platform.l2_sweep_kb)} KB, {platform.l2.ways}-way, "
        f"{platform.l2.line_bytes}-byte blocks, {platform.l2.latency_cycles}-cycle latency"
    )
    lines.append(
        f"DRAM controller: closed-page, {platform.dram.n_channels} channel(s) x "
        f"{platform.dram.n_ranks} ranks x {platform.dram.n_banks} banks, "
        "rank-then-bank round-robin"
    )
    lines.append(
        f"DRAM bandwidth : {list(platform.bandwidth_sweep_gbps)} GB/s shares of a "
        f"{platform.dram.channel_gbps} GB/s channel"
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: platform parameters",
        text="\n".join(lines),
        data={
            "l2_sweep_kb": list(platform.l2_sweep_kb),
            "bandwidth_sweep_gbps": list(platform.bandwidth_sweep_gbps),
        },
    )
