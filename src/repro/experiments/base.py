"""Experiment registry: every paper artifact as a first-class object.

Each module in :mod:`repro.experiments` regenerates one of the paper's
figures or tables and registers it here.  An experiment is a callable
taking an optional shared :class:`~repro.profiling.OfflineProfiler`
(so suites of experiments reuse one profile cache) and returning an
:class:`ExperimentResult` — the artifact's identity plus the regenerated
rows as text and as structured data.

Consumers:

* the benchmark harness (`benchmarks/bench_*.py`) wraps each experiment
  in pytest-benchmark and stores its text under `benchmarks/results/`;
* the CLI (``python -m repro reproduce <id>``) runs one or all of them
  interactively;
* tests assert registry completeness and per-experiment invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["ExperimentResult", "EXPERIMENTS", "experiment", "run_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    text: str
    data: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise ValueError(f"experiment {self.experiment_id} produced empty output")


#: Registry: experiment id -> callable(profiler=None) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable] = {}


def experiment(experiment_id: str):
    """Class-of-one decorator registering an experiment function."""

    def register(fn: Callable) -> Callable:
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return register


def run_experiment(experiment_id: str, profiler=None) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    return fn(profiler=profiler)


def list_experiments() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)
