"""Experiment registry: every paper artifact as a first-class object.

Each module in :mod:`repro.experiments` regenerates one of the paper's
figures or tables and registers it here.  An experiment is a callable
taking an optional shared :class:`~repro.profiling.OfflineProfiler`
(so suites of experiments reuse one profile cache) and returning an
:class:`ExperimentResult` — the artifact's identity plus the regenerated
rows as text and as structured data.

Consumers:

* the benchmark harness (`benchmarks/bench_*.py`) wraps each experiment
  in pytest-benchmark and stores its text under `benchmarks/results/`;
* the CLI (``python -m repro reproduce <id>``) runs one or all of them
  interactively;
* tests assert registry completeness and per-experiment invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment",
    "run_experiment",
    "run_experiment_batch",
    "list_experiments",
]


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    text: str
    data: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise ValueError(f"experiment {self.experiment_id} produced empty output")


#: Registry: experiment id -> callable(profiler=None) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable] = {}


def experiment(experiment_id: str):
    """Class-of-one decorator registering an experiment function."""

    def register(fn: Callable) -> Callable:
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return register


def run_experiment(experiment_id: str, profiler=None) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    return fn(profiler=profiler)


def list_experiments() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment_batch(
    experiment_ids: Optional[Iterable[str]] = None,
    profiler=None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, ExperimentResult]:
    """Run a set of experiments over one shared pool and profile cache.

    The batch entry point behind ``repro reproduce``: one
    :class:`~repro.profiling.OfflineProfiler` (with its process pool and
    on-disk cache) serves every experiment.  When ``jobs > 1`` the whole
    28-benchmark sweep is warmed in a single parallel fan-out up front,
    so individual experiments only ever read memoized profiles.

    Parameters
    ----------
    experiment_ids:
        Ids to run, in the order given (default: all registered,
        sorted).  Unknown ids raise ``KeyError`` before anything runs.
    profiler:
        An existing profiler to reuse (its ``jobs``/``cache_dir`` win);
        when omitted one is built from ``jobs``/``cache_dir`` and shut
        down when the batch finishes.
    """
    from ..profiling import OfflineProfiler

    ids = list_experiments() if experiment_ids is None else list(experiment_ids)
    unknown = [experiment_id for experiment_id in ids if experiment_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    owns_profiler = profiler is None
    if owns_profiler:
        profiler = OfflineProfiler(jobs=jobs, cache_dir=cache_dir)
    try:
        if profiler.jobs > 1:
            profiler.profile_suite()  # one parallel fan-out warms every experiment
        return {
            experiment_id: run_experiment(experiment_id, profiler=profiler)
            for experiment_id in ids
        }
    finally:
        if owns_profiler:
            profiler.close()
