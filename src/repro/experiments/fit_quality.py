"""Experiments: Fig. 8 — quality of the Cobb-Douglas fits."""

from __future__ import annotations

import numpy as np

from ..profiling import OfflineProfiler
from ..workloads import BENCHMARK_ORDER, get_workload
from .base import ExperimentResult, experiment

__all__ = ["fig08a_r_squared", "fig08b_high_r2", "fig08c_low_r2"]


def _profiler(profiler) -> OfflineProfiler:
    return profiler if profiler is not None else OfflineProfiler()


@experiment("fig8a")
def fig08a_r_squared(profiler=None) -> ExperimentResult:
    """R² per benchmark over the Table 1 sweep (Fig. 8a)."""
    profiler = _profiler(profiler)
    fits = profiler.fit_suite()
    lines = ["=== Fig. 8a: coefficient of determination per benchmark ==="]
    lines.append(f"{'benchmark':<20} {'R^2':>7}")
    values = {}
    for name in BENCHMARK_ORDER:
        r2 = fits[name].r_squared
        values[name] = r2
        lines.append(f"{name:<20} {r2:7.3f}")
    fraction_high = float(np.mean([v >= 0.7 for v in values.values()]))
    lowest = min(values, key=values.get)
    lines.append(
        f"\nfraction of benchmarks with R^2 in [0.7, 1.0]: {fraction_high:.2f} "
        "(paper: 'most benchmarks')"
    )
    lines.append(f"lowest-R^2 benchmark: {lowest}")
    return ExperimentResult(
        experiment_id="fig8a",
        title="Fig. 8a: fit quality (R²)",
        text="\n".join(lines),
        data={"r_squared": values, "fraction_high": fraction_high, "lowest": lowest},
    )


def _sim_vs_est(profiler, names, figure) -> ExperimentResult:
    profiler = _profiler(profiler)
    fits = {name: profiler.fit(get_workload(name)) for name in names}
    lines = [f"=== Fig. 8{figure}: simulated vs fitted IPC ({', '.join(names)}) ==="]
    header = f"{'bw GB/s':>8} {'cache KB':>9}"
    for name in names:
        header += f" {name + ' sim':>16} {name + ' est':>16}"
    lines.append(header)
    profiles = {name: profiler.profile(get_workload(name)) for name in names}
    for k in range(25):
        bw, kb = profiles[names[0]].allocations[k]
        row = f"{bw:>8.1f} {kb:>9.0f}"
        for name in names:
            sim = profiles[name].ipc[k]
            est = fits[name].utility.value([bw, kb])
            row += f" {sim:>16.3f} {est:>16.3f}"
        lines.append(row)
    worst = {}
    for name in names:
        sim = profiles[name].ipc
        est = fits[name].predict(profiles[name].allocations)
        worst[name] = float(np.max(np.abs(est - sim) / sim))
        lines.append(f"{name}: worst relative fit error {worst[name] * 100:.1f}%")
    return ExperimentResult(
        experiment_id=f"fig8{figure}",
        title=f"Fig. 8{figure}: simulated vs fitted IPC",
        text="\n".join(lines),
        data={"worst_relative_error": worst},
    )


@experiment("fig8b")
def fig08b_high_r2(profiler=None) -> ExperimentResult:
    """Representative high-R² series: ferret and fmm (Fig. 8b)."""
    return _sim_vs_est(profiler, ["ferret", "fmm"], "b")


@experiment("fig8c")
def fig08c_low_r2(profiler=None) -> ExperimentResult:
    """Representative low-R² series: radiosity and string_match (Fig. 8c)."""
    return _sim_vs_est(profiler, ["radiosity", "string_match"], "c")
