"""Experiment: Figs. 1-7 — the Edgeworth-box geometry of the §3 example."""

from __future__ import annotations

import numpy as np

from ..core import EdgeworthBox, proportional_elasticity
from ..core.mechanism import Agent, AllocationProblem
from ..core.utility import CobbDouglasUtility, LeontiefUtility
from .base import ExperimentResult, experiment

__all__ = ["paper_box", "fig01_07_edgeworth"]


def paper_box() -> EdgeworthBox:
    """The recurring example: Eq. 2 utilities on 24 GB/s + 12 MB."""
    problem = AllocationProblem(
        agents=[
            Agent("user1", CobbDouglasUtility((0.6, 0.4))),
            Agent("user2", CobbDouglasUtility((0.2, 0.8))),
        ],
        capacities=(24.0, 12.0),
        resource_names=("membw_gbps", "cache_mb"),
    )
    return EdgeworthBox(problem)


@experiment("fig1-7")
def fig01_07_edgeworth(profiler=None) -> ExperimentResult:
    """Regenerate the geometry behind Figs. 1-7.

    Computes the feasible box, EF/SI region areas, Cobb-Douglas vs
    Leontief MRS values, the contract curve, and the fair segments with
    and without SI — plus the REF point's membership in the fair set.
    """
    box = paper_box()
    lines = ["=== Figs. 1-7: Edgeworth box, u1 = x^0.6 y^0.4, u2 = x^0.2 y^0.8 ==="]

    # Fig. 1: the box.
    lines.append(f"box: {box.cx} GB/s wide x {box.cy} MB tall")
    lines.append("example point: user1 (6 GB/s, 8 MB) -> user2 (18 GB/s, 4 MB)")

    # Fig. 2: EF region areas (fraction of the box).
    ef1, ef2, si1, si2, _ = box.region_masks(n_grid=101)
    lines.append(f"EF region area, user1: {ef1.mean():.3f} of box (Fig. 2a)")
    lines.append(f"EF region area, user2: {ef2.mean():.3f} of box (Fig. 2b)")
    lines.append(f"EF1 ∩ EF2 area: {np.mean(ef1 & ef2):.3f} of box")
    lines.append(f"SI region area, user1: {si1.mean():.3f}, user2: {si2.mean():.3f} (Fig. 7)")

    # Fig. 3/4: MRS at the worked point, Cobb-Douglas vs Leontief.
    mrs = box.u1.marginal_rate_of_substitution([6.0, 8.0])
    lines.append(f"Cobb-Douglas MRS for user1 at (6, 8): {mrs:.3f} (Eq. 9: 0.6/0.4 * 8/6)")
    leontief = LeontiefUtility((1.0, 0.5))
    lines.append(
        "Leontief MRS (Fig. 4): "
        f"{leontief.marginal_rate_of_substitution([2.0, 10.0])} above the kink, "
        f"{leontief.marginal_rate_of_substitution([10.0, 2.0])} below"
    )

    # Fig. 5: contract curve samples.
    curve = box.contract_curve(n_points=7)
    samples = ", ".join(f"({x:.1f}, {y:.2f})" for x, y in zip(curve.x, curve.y))
    lines.append(f"contract curve (x1, y1) samples: {samples}")

    # Figs. 6-7: fair segments.
    ef_segment = box.fair_segment(include_si=False)
    si_segment = box.fair_segment(include_si=True)
    lines.append(
        f"fair set on contract curve (EF+PE, Fig. 6): "
        f"x1 in [{ef_segment[0]:.3f}, {ef_segment[1]:.3f}] GB/s"
    )
    lines.append(
        f"fair set with SI (Fig. 7):                 "
        f"x1 in [{si_segment[0]:.3f}, {si_segment[1]:.3f}] GB/s"
    )

    ref = proportional_elasticity(box.problem)
    ref_inside = bool(si_segment[0] <= ref.shares[0, 0] <= si_segment[1])
    lines.append(
        f"REF allocation: user1 ({ref.shares[0, 0]:.1f} GB/s, {ref.shares[0, 1]:.1f} MB) "
        f"— inside the Fig. 7 fair set: {ref_inside}"
    )
    return ExperimentResult(
        experiment_id="fig1-7",
        title="Figs. 1-7: Edgeworth-box geometry",
        text="\n".join(lines),
        data={
            "ef_segment": ef_segment,
            "si_segment": si_segment,
            "ref_point": tuple(ref.shares[0]),
            "ref_inside_fair_set": ref_inside,
        },
    )
