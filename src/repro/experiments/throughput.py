"""Experiments: Figs. 13-14 — weighted system throughput per mechanism."""

from __future__ import annotations

from ..core import weighted_system_throughput
from ..optimize import MECHANISMS
from ..profiling import OfflineProfiler
from ..workloads import EIGHT_CORE_MIXES, FOUR_CORE_MIXES, build_mix_problem, get_mix
from .base import ExperimentResult, experiment

__all__ = ["MECHANISM_ORDER", "throughput_rows", "fig13_four_core", "fig14_eight_core"]

MECHANISM_ORDER = [
    "Max Welfare w/ Fairness",
    "Proportional Elasticity w/ Fairness",
    "Max Welfare w/o Fairness",
    "Equal Slowdown w/o Fairness",
]


def throughput_rows(profiler, mix_names):
    """Weighted system throughput for every (mix, mechanism) pair."""
    profiler = profiler if profiler is not None else OfflineProfiler()
    rows = {}
    for mix_name in mix_names:
        problem = build_mix_problem(mix_name, profiler=profiler)
        rows[mix_name] = {
            name: weighted_system_throughput(MECHANISMS[name](problem))
            for name in MECHANISM_ORDER
        }
    return rows


def _table(rows, title):
    lines = [f"=== {title} ==="]
    lines.append(f"{'mix':<14}" + "".join(f"{name:>38}" for name in MECHANISM_ORDER))
    worst_penalty = 0.0
    for mix_name, values in rows.items():
        label = f"{mix_name} ({get_mix(mix_name).characterization})"
        lines.append(
            f"{label:<14}" + "".join(f"{values[m]:>38.4f}" for m in MECHANISM_ORDER)
        )
        penalty = 1.0 - (
            values["Proportional Elasticity w/ Fairness"]
            / values["Max Welfare w/o Fairness"]
        )
        worst_penalty = max(worst_penalty, penalty)
    lines.append(
        f"\nworst fairness penalty (REF vs unfair max welfare): {worst_penalty * 100:.1f}%"
    )
    return "\n".join(lines), worst_penalty


@experiment("fig13")
def fig13_four_core(profiler=None) -> ExperimentResult:
    """4-core throughput comparison across the four mechanisms (Fig. 13)."""
    rows = throughput_rows(profiler, FOUR_CORE_MIXES)
    text, worst_penalty = _table(rows, "Fig. 13: 4-core weighted system throughput")
    return ExperimentResult(
        experiment_id="fig13",
        title="Fig. 13: 4-core weighted system throughput",
        text=text,
        data={"rows": rows, "worst_penalty": worst_penalty},
    )


@experiment("fig14")
def fig14_eight_core(profiler=None) -> ExperimentResult:
    """8-core comparison plus the equal-slowdown-trails-REF check (Fig. 14)."""
    rows = throughput_rows(profiler, EIGHT_CORE_MIXES)
    text, worst_penalty = _table(rows, "Fig. 14: 8-core weighted system throughput")
    trailing = []
    for mix_name, values in rows.items():
        ref = values["Proportional Elasticity w/ Fairness"]
        eq = values["Equal Slowdown w/o Fairness"]
        if eq < ref:
            trailing.append(f"{mix_name} ({(1 - eq / ref) * 100:.1f}% behind)")
    text += (
        f"\nmixes where equal slowdown trails REF: "
        f"{', '.join(trailing) if trailing else 'none'}"
    )
    return ExperimentResult(
        experiment_id="fig14",
        title="Fig. 14: 8-core weighted system throughput",
        text=text,
        data={"rows": rows, "worst_penalty": worst_penalty, "trailing": trailing},
    )
