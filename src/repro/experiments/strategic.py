"""Experiments: §4.3 SPL scaling and the §5.5 complexity claim."""

from __future__ import annotations

import time

import numpy as np

from ..core.mechanism import Agent, AllocationProblem, proportional_elasticity
from ..core.spl import best_response
from ..core.utility import CobbDouglasUtility
from ..optimize import equal_slowdown, max_nash_welfare, solve_batch
from .base import ExperimentResult, experiment

__all__ = ["population", "spl_scaling", "mechanism_cost"]

CAPACITIES = (128.0, 96.0 * 1024)
POPULATIONS = (2, 4, 8, 16, 32, 64)
N_STRATEGIC = 6


def population(n: int, seed: int = 2014) -> AllocationProblem:
    """N agents with elasticities drawn uniformly, as §4.3 prescribes."""
    rng = np.random.default_rng(seed)
    agents = [
        Agent(f"t{i}", CobbDouglasUtility(rng.uniform(0.05, 1.0, size=2)))
        for i in range(n)
    ]
    return AllocationProblem(agents, CAPACITIES)


@experiment("spl")
def spl_scaling(profiler=None) -> ExperimentResult:
    """Worst manipulation gain versus population size (§4.3)."""
    lines = ["=== §4.3: worst manipulation gain vs population size ==="]
    lines.append(f"{'N agents':>9} {'worst gain %':>13} {'worst report deviation':>23}")
    gains = {}
    for n in POPULATIONS:
        problem = population(n)
        alpha = problem.rescaled_alpha_matrix()
        caps = problem.capacity_vector
        worst_gain, worst_dev = 0.0, 0.0
        for i in range(min(N_STRATEGIC, n)):
            others = alpha.sum(axis=0) - alpha[i]
            response = best_response(alpha[i], others, caps)
            worst_gain = max(worst_gain, response.gain)
            worst_dev = max(worst_dev, response.deviation)
        gains[n] = worst_gain
        lines.append(f"{n:>9} {worst_gain * 100:>13.4f} {worst_dev:>23.4f}")
    lines.append(
        f"\nat N = 64 the worst gain is {gains[64] * 100:.4f}% — lying does not pay (SPL)"
    )
    return ExperimentResult(
        experiment_id="spl",
        title="§4.3: strategy-proofness in the large",
        text="\n".join(lines),
        data={"worst_gain": gains},
    )


@experiment("cost")
def mechanism_cost(profiler=None) -> ExperimentResult:
    """Closed-form REF vs convex-optimization mechanisms (§5.5)."""
    lines = ["=== §5.5: mechanism cost, closed form vs convex optimization ==="]
    lines.append(
        f"{'N agents':>9} {'REF (ms)':>10} {'REF batch (ms)':>15} "
        f"{'equal slowdown (ms)':>21} {'max welfare fair (ms)':>23} {'speedup':>9}"
    )
    timings = {}
    for n in (2, 4, 8, 16):
        problem = population(n, seed=7)
        scenarios = [population(n, seed=7 + s) for s in range(50)]

        start = time.perf_counter()
        for _ in range(50):
            proportional_elasticity(problem)
        ref_ms = (time.perf_counter() - start) / 50 * 1e3

        # Vectorized across scenarios: one stacked NumPy solve for all 50.
        start = time.perf_counter()
        solve_batch(scenarios, mechanism="ref")
        batch_ms = (time.perf_counter() - start) / 50 * 1e3

        start = time.perf_counter()
        equal_slowdown(problem)
        eq_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        max_nash_welfare(problem, fair=True)
        fair_ms = (time.perf_counter() - start) * 1e3

        timings[n] = {
            "ref_ms": ref_ms,
            "ref_batch_ms": batch_ms,
            "equal_slowdown_ms": eq_ms,
            "fair_ms": fair_ms,
        }
        lines.append(
            f"{n:>9} {ref_ms:>10.4f} {batch_ms:>15.4f} {eq_ms:>21.1f} "
            f"{fair_ms:>23.1f} {fair_ms / ref_ms:>8.0f}x"
        )
    return ExperimentResult(
        experiment_id="cost",
        title="§5.5: mechanism computational cost",
        text="\n".join(lines),
        data={"timings": timings},
    )
