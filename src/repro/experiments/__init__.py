"""First-class experiments: every paper artifact, regenerable by id.

Importing this package registers all experiments; run them via

>>> from repro.experiments import run_experiment
>>> result = run_experiment("fig13")
>>> print(result.text)

or from the shell: ``python -m repro reproduce fig13``.
"""

from . import (  # noqa: F401  (imported for registration side effects)
    credit_horizon,
    edgeworth_box,
    elasticities,
    fit_quality,
    mechanism_examples,
    platform_table,
    regret,
    strategic,
    throughput,
)
from .base import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
    run_experiment_batch,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "list_experiments",
    "run_experiment",
    "run_experiment_batch",
]
