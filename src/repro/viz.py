"""Terminal renderings of the paper's figures (pure text, no deps).

The benches regenerate each figure's *data*; this module draws it:

* :func:`hbar_chart` — horizontal bars, one per label (Fig. 8a's R²
  bars, Fig. 9's elasticity bars);
* :func:`grouped_bars` — grouped series per category (Figs. 13-14's
  four mechanisms per workload mix);
* :func:`stacked_shares` — two-segment 100% bars (Fig. 9's
  cache-vs-memory split; Figs. 10-12's allocation percentages);
* :func:`line_plot` — a crude scatter/line canvas (Fig. 8b/8c's
  simulated-vs-fitted IPC series).

All functions return strings; nothing is printed.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["hbar_chart", "grouped_bars", "stacked_shares", "line_plot"]

#: Glyphs for successive series in grouped charts.
_SERIES_GLYPHS = "█▓▒░#%*+"


def _check_width(width: int) -> None:
    if width < 10:
        raise ValueError(f"width must be at least 10 columns, got {width}")


def hbar_chart(
    values: Mapping[str, float],
    width: int = 50,
    max_value: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart: one row per (label, value).

    Parameters
    ----------
    values:
        Ordered label -> non-negative value mapping.
    width:
        Bar width in columns at ``max_value``.
    max_value:
        Scale ceiling; defaults to the largest value.
    fmt:
        Format string for the numeric annotation.
    """
    _check_width(width)
    if not values:
        raise ValueError("at least one value is required")
    if any(v < 0 for v in values.values()):
        raise ValueError("hbar_chart only draws non-negative values")
    ceiling = max_value if max_value is not None else max(values.values())
    if ceiling <= 0:
        ceiling = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = int(round(min(value / ceiling, 1.0) * width))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{label:<{label_width}} |{bar}| " + fmt.format(value))
    return "\n".join(lines)


def grouped_bars(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """Grouped horizontal bars: each category shows every series.

    The Figs. 13-14 shape: categories are workload mixes, series are
    the four mechanisms.
    """
    _check_width(width)
    if not categories or not series:
        raise ValueError("categories and series must be non-empty")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    ceiling = max(max(values) for values in series.values())
    if ceiling <= 0:
        ceiling = 1.0
    name_width = max(len(name) for name in series)
    lines: List[str] = []
    for index, category in enumerate(categories):
        lines.append(str(category))
        for glyph, (name, values) in zip(_SERIES_GLYPHS, series.items()):
            value = values[index]
            filled = int(round(min(value / ceiling, 1.0) * width))
            bar = glyph * filled + "·" * (width - filled)
            lines.append(f"  {name:<{name_width}} |{bar}| " + fmt.format(value))
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_SERIES_GLYPHS, series)
    )
    lines.append(f"[{legend}]")
    return "\n".join(lines)


def stacked_shares(
    shares: Mapping[str, float],
    width: int = 50,
    left_label: str = "",
    right_label: str = "",
) -> str:
    """100% stacked bars for fractions in [0, 1] (Fig. 9's split).

    Each row draws ``share`` of the bar filled (the left quantity) and
    the remainder hollow (the right quantity).
    """
    _check_width(width)
    if not shares:
        raise ValueError("at least one share is required")
    if any(not 0 <= v <= 1 for v in shares.values()):
        raise ValueError("shares must lie in [0, 1]")
    label_width = max(len(label) for label in shares)
    lines = []
    if left_label or right_label:
        lines.append(f"{'':<{label_width}}  {left_label} █ vs ░ {right_label}")
    for label, share in shares.items():
        filled = int(round(share * width))
        bar = "█" * filled + "░" * (width - filled)
        lines.append(f"{label:<{label_width}} |{bar}| {share:.2f}")
    return "\n".join(lines)


def line_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 16,
) -> str:
    """A character-canvas plot of one or more y-series over shared x.

    Good enough to eyeball the Fig. 8b/8c simulated-vs-fitted overlays
    in a terminal; points from successive series use successive glyphs
    and overwrite earlier ones when they collide.
    """
    _check_width(width)
    if height < 4:
        raise ValueError(f"height must be at least 4 rows, got {height}")
    if not series:
        raise ValueError("at least one series is required")
    x = list(x)
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length does not match x")
    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x), max(x)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    glyphs = "ox+*st"
    for glyph, (name, ys) in zip(glyphs, series.items()):
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y_hi - yv) / (y_hi - y_lo) * (height - 1)))
            canvas[row][col] = glyph
    lines = [f"{y_hi:9.3f} ┤" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 9 + " │" + "".join(row))
    lines.append(f"{y_lo:9.3f} ┤" + "".join(canvas[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    lines.append(
        " " * 11 + f"{x_lo:<12.3g}" + " " * max(width - 24, 0) + f"{x_hi:>12.3g}"
    )
    legend = "  ".join(f"{glyph}={name}" for glyph, name in zip(glyphs, series))
    lines.append(f"[{legend}]")
    return "\n".join(lines)
