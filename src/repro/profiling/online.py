"""On-line profiling: adapt a utility function while running (§4.4).

"Without prior knowledge, a user assumes all resources contribute
equally to performance.  Such a naive user reports utility
``u = x**0.5 * y**0.5``.  As the system allocates for this utility, the
user profiles software performance.  And as profiles are accumulated for
varied allocations, the user adapts its utility function."

:class:`OnlineProfiler` implements that loop: it starts from the naive
equal-elasticity report, records (allocation, IPC) observations, and
re-fits once enough linearly-independent samples accumulate, optionally
weighting recent samples more heavily (software phases change).

The profiler is built to survive a *long-running* closed loop fed by an
imperfect measurement pipeline:

* non-positive or non-finite samples are **rejected** (skipped and
  counted), never raised — one bad sensor reading must not kill the
  service;
* an optional outlier gate rejects samples wildly inconsistent with the
  current fit, while re-admitting a *run* of consistent "outliers"
  (a genuine phase change looks like one);
* with ``decay < 1`` the sample history is bounded: samples whose weight
  has decayed below ``weight_floor`` are dropped, so memory and re-fit
  cost stay O(1) over thousands of epochs;
* ill-conditioned or non-finite re-fits are discarded and the last good
  fit (or the naive prior) is kept — degenerate fits are counted, not
  propagated.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.fitting import CobbDouglasFit, fit_cobb_douglas
from ..core.utility import CobbDouglasUtility
from ..obs import MetricsRegistry

__all__ = ["OnlineProfiler"]


class OnlineProfiler:
    """Incrementally learns a workload's Cobb-Douglas utility.

    Parameters
    ----------
    n_resources:
        Number of shared resources.
    min_samples:
        Observations required before the first re-fit; until then the
        naive equal-elasticity utility is reported.  Must be at least
        ``n_resources + 1`` (the regression's parameter count).
    decay:
        Per-step multiplicative weight decay in (0, 1]; 1.0 weights all
        history equally, smaller values emphasize recent samples.
    weight_floor:
        With ``decay < 1``, samples whose weight has decayed below this
        threshold are dropped from the history (bounding its length at
        ``log(weight_floor) / log(decay)`` samples).  Ignored when
        ``decay == 1``.
    max_condition:
        Re-fits whose design-matrix condition number exceeds this bound
        are considered degenerate and discarded (the previous fit is
        kept).  ``None`` disables the check.
    outlier_log_threshold:
        When set, a sample whose log-space residual against the current
        fit exceeds this value is rejected as an outlier.  After
        ``max_consecutive_outliers`` rejections in a row the gate yields
        and accepts the sample — a sustained shift is a phase change,
        not a fault.  ``None`` (the default) disables the gate.
    max_consecutive_outliers:
        See ``outlier_log_threshold``.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; when given, the
        rejection/fallback counters are mirrored into it
        (``repro_online_*`` metrics) and every attempted re-fit's
        condition number is exposed as a gauge.  ``None`` (default)
        keeps the profiler metric-free.
    metric_labels:
        Labels attached to every mirrored metric (e.g.
        ``{"agent": name}`` when one registry serves many profilers).
    auto_refit:
        When True (default) every accepted observation re-fits
        immediately, preserving the historical per-observe behaviour.
        When False the profiler only *marks itself dirty*; an external
        driver (the dynamic controller) batches dirty profilers through
        :func:`~repro.core.fitting.fit_cobb_douglas_batch` once per
        epoch and feeds results back via :meth:`apply_fit`.  The fit is
        a pure function of the sample history, so deferring it changes
        when — not what — the profiler learns.
    """

    #: Internal counter key -> (metric name, extra labels) mirror map.
    _COUNTER_METRICS = {
        "rejected_non_positive": (
            "repro_online_samples_rejected_total",
            {"reason": "non_positive"},
        ),
        "rejected_outliers": (
            "repro_online_samples_rejected_total",
            {"reason": "outlier"},
        ),
        "fit_fallbacks": ("repro_online_fit_fallbacks_total", {}),
        "trimmed_samples": ("repro_online_samples_trimmed_total", {}),
    }

    def __init__(
        self,
        n_resources: int = 2,
        min_samples: Optional[int] = None,
        decay: float = 1.0,
        weight_floor: float = 1e-6,
        max_condition: Optional[float] = 1e8,
        outlier_log_threshold: Optional[float] = None,
        max_consecutive_outliers: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Mapping[str, str]] = None,
        auto_refit: bool = True,
    ):
        if n_resources < 1:
            raise ValueError(f"n_resources must be >= 1, got {n_resources}")
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        minimum_viable = n_resources + 1
        if min_samples is None:
            min_samples = max(minimum_viable, 4)
        if min_samples < minimum_viable:
            raise ValueError(
                f"min_samples must be >= n_resources + 1 = {minimum_viable}, got {min_samples}"
            )
        if not 0 < weight_floor < 1:
            raise ValueError(f"weight_floor must be in (0, 1), got {weight_floor}")
        if max_condition is not None and max_condition <= 1:
            raise ValueError(f"max_condition must exceed 1, got {max_condition}")
        if outlier_log_threshold is not None and outlier_log_threshold <= 0:
            raise ValueError(
                f"outlier_log_threshold must be positive, got {outlier_log_threshold}"
            )
        if max_consecutive_outliers < 1:
            raise ValueError(
                f"max_consecutive_outliers must be >= 1, got {max_consecutive_outliers}"
            )
        self.n_resources = n_resources
        self.min_samples = min_samples
        self.decay = decay
        self.weight_floor = weight_floor
        self.max_condition = max_condition
        self.outlier_log_threshold = outlier_log_threshold
        self.max_consecutive_outliers = max_consecutive_outliers
        # The fit keeps at least min_samples even if decay would age
        # them all out; identification beats forgetting.
        if decay < 1.0:
            self.max_history = max(
                int(math.ceil(math.log(weight_floor) / math.log(decay))), min_samples
            )
        else:
            self.max_history = None
        self.auto_refit = auto_refit
        self._allocations: List[np.ndarray] = []
        self._performance: List[float] = []
        self._fit: Optional[CobbDouglasFit] = None
        self._dirty = False
        self._last_condition = float("nan")
        self._consecutive_outliers = 0
        self._metrics = metrics
        self._metric_labels = dict(metric_labels or {})
        self._counters: Dict[str, int] = {
            "rejected_non_positive": 0,
            "rejected_outliers": 0,
            "fit_fallbacks": 0,
            "trimmed_samples": 0,
        }

    def _count(self, key: str, n: int = 1) -> None:
        """Bump an internal counter and its metric mirror (if any)."""
        self._counters[key] += n
        if self._metrics is not None:
            name, extra = self._COUNTER_METRICS[key]
            self._metrics.counter(name, **{**self._metric_labels, **extra}).inc(n)

    @property
    def n_samples(self) -> int:
        return len(self._performance)

    @property
    def counters(self) -> Dict[str, int]:
        """Fault-handling counters accumulated over the profiler's life."""
        return dict(self._counters)

    @property
    def last_condition_number(self) -> float:
        """Condition number of the most recent *attempted* re-fit."""
        return self._last_condition

    @property
    def naive_utility(self) -> CobbDouglasUtility:
        """The §4.4 prior: all resources contribute equally."""
        return CobbDouglasUtility([1.0 / self.n_resources] * self.n_resources)

    @property
    def utility(self) -> CobbDouglasUtility:
        """Current best utility estimate (naive until enough samples)."""
        if self._fit is None:
            return self.naive_utility
        return self._fit.utility

    @property
    def last_fit(self) -> Optional[CobbDouglasFit]:
        """Diagnostics of the most recent *accepted* re-fit, or None."""
        return self._fit

    def report_elasticities(self) -> np.ndarray:
        """Re-scaled elasticities the agent would report to the mechanism."""
        return self.utility.rescaled().alpha

    def samples(self) -> Optional[tuple]:
        """Accepted ``(allocations, performance)`` history as arrays.

        ``None`` until at least one sample was accepted.  Consumers
        (the demand-cap estimator) read the evidence behind the current
        fit; the arrays are copies, mutating them cannot corrupt the
        profiler.
        """
        if not self._performance:
            return None
        return np.vstack(self._allocations), np.asarray(self._performance, dtype=float)

    def observe(
        self,
        allocation: Sequence[float],
        performance: float,
        exploration: bool = False,
    ) -> CobbDouglasUtility:
        """Record one (allocation, measured IPC) sample and maybe re-fit.

        Returns the (possibly updated) utility estimate.  Samples with
        non-positive or non-finite entries are rejected — skipped and
        counted under ``counters["rejected_non_positive"]`` — because the
        log transform needs strictly positive data and a long-running
        loop must survive a bad measurement.  Only a wrong *shape* (a
        caller bug, not a measurement fault) still raises.

        ``exploration=True`` marks the sample as deliberately taken at a
        perturbed operating point by a demand-learning controller.  Such
        samples bypass the fit-relative outlier gate entirely: they are
        *expected* to disagree with the current fit (that is the point of
        exploring), and a stream of exploration samples from a
        phase-changed agent would otherwise be rejected wholesale before
        the consecutive-run escape could fire.
        """
        arr = np.asarray(allocation, dtype=float)
        if arr.shape != (self.n_resources,):
            raise ValueError(
                f"allocation must have shape ({self.n_resources},), got {arr.shape}"
            )
        if (
            np.any(arr <= 0)
            or not np.all(np.isfinite(arr))
            or not np.isfinite(performance)
            or performance <= 0
        ):
            self._count("rejected_non_positive")
            return self.utility
        if not exploration and self._is_outlier(arr, float(performance)):
            self._count("rejected_outliers")
            return self.utility
        self._consecutive_outliers = 0
        self._allocations.append(arr)
        self._performance.append(float(performance))
        self._trim_history()
        self._dirty = True
        if (
            self.auto_refit
            and self.n_samples >= self.min_samples
            and self._has_variation()
        ):
            self._refit()
        return self.utility

    # ------------------------------------------------------------------

    def _is_outlier(self, allocation: np.ndarray, performance: float) -> bool:
        """Fit-relative outlier gate with a consecutive-run escape hatch."""
        if self.outlier_log_threshold is None or self._fit is None:
            return False
        predicted = self._fit.utility.value(allocation)
        if predicted <= 0 or not np.isfinite(predicted):
            return False
        residual = abs(math.log(performance) - math.log(predicted))
        if residual <= self.outlier_log_threshold:
            return False
        self._consecutive_outliers += 1
        if self._consecutive_outliers >= self.max_consecutive_outliers:
            # A run of consistent "outliers" is a regime change: yield.
            self._consecutive_outliers = 0
            return False
        return True

    def _trim_history(self) -> None:
        if self.max_history is None:
            return
        excess = self.n_samples - self.max_history
        if excess > 0:
            del self._allocations[:excess]
            del self._performance[:excess]
            self._count("trimmed_samples", excess)

    @property
    def needs_refit(self) -> bool:
        """True when deferred samples await a re-fit that could succeed.

        Used by batched drivers: a profiler is worth including in the
        epoch's :func:`~repro.core.fitting.fit_cobb_douglas_batch` call
        only when it has unfitted samples, enough of them, and a
        full-rank design.
        """
        return (
            self._dirty
            and self.n_samples >= self.min_samples
            and self._has_variation()
        )

    def fit_inputs(self) -> tuple:
        """The ``(allocations, performance, weights)`` the next re-fit uses.

        Exactly what :meth:`refit_now` would pass to
        :func:`~repro.core.fitting.fit_cobb_douglas`; batched drivers
        collect these across agents for one stacked solve.
        """
        return (
            np.vstack(self._allocations),
            np.asarray(self._performance),
            self._sample_weights(),
        )

    def apply_fit(self, fit: Optional[CobbDouglasFit]) -> None:
        """Accept or reject an externally computed re-fit.

        ``fit=None`` signals that the solve itself failed (the batched
        equivalent of ``fit_cobb_douglas`` raising); otherwise the fit
        goes through the same acceptance gate as the per-observe path —
        finite parameters and a condition number within
        ``max_condition`` — and a degenerate fit is counted and
        discarded while the previous fit (or the naive prior) is kept.
        """
        self._dirty = False
        if fit is None:
            self._last_condition = float("inf")
            self._count("fit_fallbacks")
            self._record_condition()
            return
        self._last_condition = fit.condition_number
        self._record_condition()
        alpha_ok = np.all(np.isfinite(fit.utility.alpha)) and np.isfinite(
            fit.utility.scale
        )
        condition_ok = self.max_condition is None or (
            np.isfinite(fit.condition_number)
            and fit.condition_number <= self.max_condition
        )
        if alpha_ok and condition_ok:
            self._fit = fit
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_online_refits_total", **self._metric_labels
                ).inc()
        else:
            self._count("fit_fallbacks")

    def refit_now(self) -> None:
        """Re-fit immediately from the accumulated history.

        The per-agent fallback when a batched solve rejects the whole
        stack; equivalent to the re-fit an ``auto_refit`` profiler runs
        on every accepted observation.
        """
        allocations, performance, weights = self.fit_inputs()
        try:
            fit: Optional[CobbDouglasFit] = fit_cobb_douglas(
                allocations, performance, weights=weights
            )
        except (ValueError, np.linalg.LinAlgError):
            fit = None
        self.apply_fit(fit)

    def _refit(self) -> None:
        """Attempt a re-fit; keep the previous fit if the new one is degenerate."""
        self.refit_now()

    def _record_condition(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge(
                "repro_online_fit_condition_number", **self._metric_labels
            ).set(self._last_condition)

    def _sample_weights(self) -> Optional[np.ndarray]:
        if self.decay == 1.0:
            return None
        ages = np.arange(self.n_samples - 1, -1, -1, dtype=float)
        return self.decay ** ages

    def _has_variation(self) -> bool:
        """True when every resource axis has been sampled at >= 2 levels.

        With all samples at a single allocation the design matrix is
        rank-deficient and the fit would be meaningless.
        """
        allocations = np.vstack(self._allocations)
        return bool(np.all(np.ptp(allocations, axis=0) > 0))
