"""On-line profiling: adapt a utility function while running (§4.4).

"Without prior knowledge, a user assumes all resources contribute
equally to performance.  Such a naive user reports utility
``u = x**0.5 * y**0.5``.  As the system allocates for this utility, the
user profiles software performance.  And as profiles are accumulated for
varied allocations, the user adapts its utility function."

:class:`OnlineProfiler` implements that loop: it starts from the naive
equal-elasticity report, records (allocation, IPC) observations, and
re-fits once enough linearly-independent samples accumulate, optionally
weighting recent samples more heavily (software phases change).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.fitting import CobbDouglasFit, fit_cobb_douglas
from ..core.utility import CobbDouglasUtility

__all__ = ["OnlineProfiler"]


class OnlineProfiler:
    """Incrementally learns a workload's Cobb-Douglas utility.

    Parameters
    ----------
    n_resources:
        Number of shared resources.
    min_samples:
        Observations required before the first re-fit; until then the
        naive equal-elasticity utility is reported.  Must be at least
        ``n_resources + 1`` (the regression's parameter count).
    decay:
        Per-step multiplicative weight decay in (0, 1]; 1.0 weights all
        history equally, smaller values emphasize recent samples.
    """

    def __init__(self, n_resources: int = 2, min_samples: Optional[int] = None, decay: float = 1.0):
        if n_resources < 1:
            raise ValueError(f"n_resources must be >= 1, got {n_resources}")
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        minimum_viable = n_resources + 1
        if min_samples is None:
            min_samples = max(minimum_viable, 4)
        if min_samples < minimum_viable:
            raise ValueError(
                f"min_samples must be >= n_resources + 1 = {minimum_viable}, got {min_samples}"
            )
        self.n_resources = n_resources
        self.min_samples = min_samples
        self.decay = decay
        self._allocations: List[np.ndarray] = []
        self._performance: List[float] = []
        self._fit: Optional[CobbDouglasFit] = None

    @property
    def n_samples(self) -> int:
        return len(self._performance)

    @property
    def naive_utility(self) -> CobbDouglasUtility:
        """The §4.4 prior: all resources contribute equally."""
        return CobbDouglasUtility([1.0 / self.n_resources] * self.n_resources)

    @property
    def utility(self) -> CobbDouglasUtility:
        """Current best utility estimate (naive until enough samples)."""
        if self._fit is None:
            return self.naive_utility
        return self._fit.utility

    @property
    def last_fit(self) -> Optional[CobbDouglasFit]:
        """Diagnostics of the most recent re-fit, or None before it."""
        return self._fit

    def report_elasticities(self) -> np.ndarray:
        """Re-scaled elasticities the agent would report to the mechanism."""
        return self.utility.rescaled().alpha

    def observe(self, allocation: Sequence[float], performance: float) -> CobbDouglasUtility:
        """Record one (allocation, measured IPC) sample and maybe re-fit.

        Returns the (possibly updated) utility estimate.  Samples with
        non-positive entries are rejected — the log transform needs
        strictly positive data.
        """
        arr = np.asarray(allocation, dtype=float)
        if arr.shape != (self.n_resources,):
            raise ValueError(
                f"allocation must have shape ({self.n_resources},), got {arr.shape}"
            )
        if np.any(arr <= 0) or performance <= 0:
            raise ValueError("allocation and performance must be strictly positive")
        self._allocations.append(arr)
        self._performance.append(float(performance))
        if self.n_samples >= self.min_samples and self._has_variation():
            weights = self._sample_weights()
            self._fit = fit_cobb_douglas(
                np.vstack(self._allocations), np.asarray(self._performance), weights=weights
            )
        return self.utility

    def _sample_weights(self) -> Optional[np.ndarray]:
        if self.decay == 1.0:
            return None
        ages = np.arange(self.n_samples - 1, -1, -1, dtype=float)
        return self.decay ** ages

    def _has_variation(self) -> bool:
        """True when every resource axis has been sampled at >= 2 levels.

        With all samples at a single allocation the design matrix is
        rank-deficient and the fit would be meaningless.
        """
        allocations = np.vstack(self._allocations)
        return bool(np.all(np.ptp(allocations, axis=0) > 0))
