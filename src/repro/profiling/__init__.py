"""Profiling: offline allocation sweeps and on-line utility adaptation (§4.4).

The offline path scales out and memoizes: :class:`OfflineProfiler`
accepts ``jobs=N`` (process-pool fan-out over workload x grid-point
tasks) and ``cache_dir=...`` (content-addressed on-disk profile cache),
both preserving bit-identical results versus the serial, uncached path.
"""

from .cache import CACHE_VERSION, ProfileCache, profile_cache_key
from .offline import OfflineProfiler, ProfilerStats
from .online import OnlineProfiler
from .profile import Profile

__all__ = [
    "CACHE_VERSION",
    "OfflineProfiler",
    "OnlineProfiler",
    "Profile",
    "ProfileCache",
    "ProfilerStats",
    "profile_cache_key",
]
