"""Profiling: offline allocation sweeps and on-line utility adaptation (§4.4)."""

from .offline import OfflineProfiler
from .online import OnlineProfiler
from .profile import Profile

__all__ = ["OfflineProfiler", "OnlineProfiler", "Profile"]
