"""Offline profiling: sweep the Table 1 grid and measure IPC (§4.4, §5.1).

The paper characterizes each application by simulating 25 architectures
(five cache sizes x five bandwidths).  :class:`OfflineProfiler` does the
same against either machine model:

* the fast analytic machine (default) — used for full-suite sweeps, and
* the trace-driven machine — the detailed path, for validation runs.

Real profiling is noisy (finite simulation windows, non-determinism);
the profiler therefore applies small multiplicative log-normal
measurement noise, seeded per workload for reproducibility.  This is
what gives the near-flat benchmarks (radiosity, string_match) their
paper-matching low R² — "negligible variance and no trend for
Cobb-Douglas to capture" — while leaving trendy workloads at high R².

Two accelerators wrap the sweep without changing its results:

* ``jobs=N`` fans (workload x grid-point) simulation tasks out over a
  process pool; noise is applied in the parent from the per-workload
  stream, so parallel profiles are bit-identical to serial ones;
* ``cache_dir=...`` memoizes finished profiles on disk, content-
  addressed by workload + platform + machine + noise configuration
  (:mod:`repro.profiling.cache`), so repeated runs skip simulation.

``profiler.stats`` counts simulated points and cache hits, which is how
tests (and the CI smoke job) verify that a warm run performs zero
simulator invocations.
"""

from __future__ import annotations

import zlib
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..core.fitting import CobbDouglasFit
from ..obs import MetricsRegistry, timed
from ..sim.analytic import AnalyticMachine
from ..sim.machine import TraceMachine
from ..sim.platform import PlatformConfig
from ..workloads.spec import WorkloadSpec
from ..workloads.suites import BENCHMARKS
from .cache import ProfileCache, profile_cache_key
from .parallel import SweepTask, simulate_task, split_points
from .profile import Profile

__all__ = ["OfflineProfiler", "ProfilerStats"]

#: Default multiplicative measurement-noise sigma (log-space).  About 1%
#: run-to-run variation, typical of sampled cycle-accurate simulation.
DEFAULT_NOISE_SIGMA = 0.01


@dataclass
class ProfilerStats:
    """Where profiles came from: fresh simulation vs cache tiers.

    ``fastcache_points`` / ``fallback_points`` split the trace-machine
    share of ``simulated_points`` by simulation path (stack-distance
    kernel vs per-access reference); both stay zero on analytic sweeps
    and on warm cache runs.
    """

    simulated_points: int = 0
    simulated_workloads: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    fastcache_points: int = 0
    fallback_points: int = 0

    def summary(self) -> str:
        """One-line machine-greppable report (used by the CI smoke job).

        New fields append after ``disk_hits``: CI greps anchor on the
        prefix (``simulated_points=0 `` ... ``disk_hits=28``).
        """
        return (
            f"simulated_points={self.simulated_points} "
            f"simulated_workloads={self.simulated_workloads} "
            f"memory_hits={self.memory_hits} disk_hits={self.disk_hits} "
            f"fastcache_points={self.fastcache_points} "
            f"fallback_points={self.fallback_points}"
        )


class OfflineProfiler:
    """Profiles workloads over the platform's allocation grid.

    Parameters
    ----------
    platform:
        Platform whose sweep grids define the profile points.
    noise_sigma:
        Log-space standard deviation of multiplicative measurement
        noise; 0 disables noise entirely.
    seed:
        Base seed; each workload's noise stream is derived from it and
        the workload name, so profiles are reproducible per benchmark
        and independent across benchmarks.
    use_trace_machine:
        Profile on the detailed trace-driven simulator instead of the
        analytic model (slower; used by validation tests/examples).
    use_fast_kernel:
        Run trace-driven sweeps on the stack-distance kernel
        (:mod:`repro.sim.fastcache`), collapsing the grid to one cache
        pass per cache size plus cheap DRAM replays.  Bit-identical to
        the reference path (same cache keys on disk); disable via the
        ``--no-fast-kernel`` CLI flag to cross-check or measure the
        reference simulator.  No effect on analytic sweeps.
    jobs:
        Worker processes for sweeps.  1 (default) simulates inline;
        ``N > 1`` distributes (workload x grid-point) tasks over a
        process pool, producing bit-identical profiles.
    cache_dir:
        Root of the on-disk profile cache; ``None`` (default) disables
        disk caching.  Profiles are still memoized in memory either way.
    metrics:
        :class:`~repro.obs.MetricsRegistry` to mirror ``stats`` into
        (``repro_profiler_*`` counters plus a per-workload sweep-latency
        histogram).  ``None`` (default) creates a private registry,
        exposed as ``profiler.metrics``.
    """

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        noise_sigma: float = DEFAULT_NOISE_SIGMA,
        seed: int = 2014,
        use_trace_machine: bool = False,
        use_fast_kernel: bool = True,
        trace_instructions: int = 400_000,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.platform = platform if platform is not None else PlatformConfig()
        self.noise_sigma = noise_sigma
        self.seed = seed
        self.use_trace_machine = use_trace_machine
        self.use_fast_kernel = bool(use_fast_kernel)
        self.jobs = int(jobs)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._analytic = AnalyticMachine(self.platform)
        self._trace = TraceMachine(
            self.platform,
            n_instructions=trace_instructions,
            use_fast_kernel=self.use_fast_kernel,
            metrics=self.metrics,
        )
        self._cache: Dict[str, Profile] = {}
        self.disk_cache = ProfileCache(cache_dir) if cache_dir is not None else None
        self.stats = ProfilerStats()
        self._executor: Optional[ProcessPoolExecutor] = None

    def _bump(self, stat: str, n: int = 1) -> None:
        """Increment one ProfilerStats field and its metric mirror together."""
        setattr(self.stats, stat, getattr(self.stats, stat) + n)
        name, labels = self._STAT_METRICS[stat]
        self.metrics.counter(name, **labels).inc(n)

    #: ProfilerStats field -> (metric name, labels) mirror map.
    _STAT_METRICS = {
        "simulated_points": ("repro_profiler_simulated_points_total", {}),
        "simulated_workloads": ("repro_profiler_simulated_workloads_total", {}),
        "memory_hits": ("repro_profiler_cache_hits_total", {"tier": "memory"}),
        "disk_hits": ("repro_profiler_cache_hits_total", {"tier": "disk"}),
        "fastcache_points": ("repro_profiler_fastcache_points_total", {"path": "fast"}),
        "fallback_points": (
            "repro_profiler_fastcache_points_total",
            {"path": "fallback"},
        ),
    }

    def _bump_trace_path(self, n_points: int) -> None:
        """Attribute trace-machine points to the fast or fallback path."""
        if not self.use_trace_machine or n_points <= 0:
            return
        if not self.use_fast_kernel:
            return
        stat = "fastcache_points" if self._trace.kernel_active else "fallback_points"
        self._bump(stat, n_points)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool restarts on demand)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "OfflineProfiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    @property
    def _machine_kind(self) -> str:
        return "trace" if self.use_trace_machine else "analytic"

    def cache_key(self, workload: WorkloadSpec) -> str:
        """Content address of this workload's sweep under current settings."""
        return profile_cache_key(
            workload,
            self.platform,
            self._machine_kind,
            self.noise_sigma,
            self.seed,
            trace_instructions=self._trace.n_instructions,
        )

    def _lookup(self, workload: WorkloadSpec) -> Optional[Profile]:
        """Memory then disk; a disk hit is promoted into memory."""
        cached = self._cache.get(workload.name)
        if cached is not None:
            self._bump("memory_hits")
            return cached
        if self.disk_cache is not None:
            stored = self.disk_cache.get(self.cache_key(workload))
            if stored is not None:
                self._bump("disk_hits")
                self._cache[workload.name] = stored
                return stored
        return None

    def _workload_rng(self, name: str) -> np.random.Generator:
        """Deterministic per-workload noise stream."""
        return np.random.default_rng((self.seed, zlib.crc32(name.encode())))

    def _finalize(
        self, workload: WorkloadSpec, allocations: np.ndarray, ipc: np.ndarray
    ) -> Profile:
        """Apply the seeded noise stream, memoize, and persist."""
        if self.noise_sigma > 0:
            rng = self._workload_rng(workload.name)
            ipc = ipc * np.exp(rng.normal(0.0, self.noise_sigma, size=ipc.shape))
        profile = Profile(
            workload_name=workload.name,
            allocations=allocations,
            ipc=ipc,
            source=self._machine_kind,
        )
        self._cache[workload.name] = profile
        if self.disk_cache is not None:
            self.disk_cache.put(self.cache_key(workload), profile)
        return profile

    # ------------------------------------------------------------------
    # Simulation: serial and fanned-out paths
    # ------------------------------------------------------------------

    def _simulate_serial(self, workload: WorkloadSpec) -> Profile:
        with timed(
            self.metrics, "repro_profiler_sweep_seconds", workload=workload.name
        ):
            if self.use_trace_machine:
                points = self.platform.sweep_points()
                # One sweep call, not one simulate per point: the fast
                # kernel collapses the cache dimension to a single pass
                # per cache size and replays DRAM timing per bandwidth.
                results = self._trace.sweep(workload, points)
                ipc = np.array([result.ipc for result in results])
                allocations = np.asarray(points)
                self._bump_trace_path(len(points))
            else:
                sweep = self._analytic.sweep(workload)
                allocations, ipc = sweep.allocations, sweep.ipc
            self._bump("simulated_points", int(ipc.shape[0]))
            self._bump("simulated_workloads")
            return self._finalize(workload, allocations, ipc)

    def _simulate_parallel(self, pending: List[WorkloadSpec]) -> Dict[str, Profile]:
        """Fan (workload x grid-point) tasks over the pool; reassemble in order.

        With at least ``jobs`` workloads pending, one task per workload
        keeps per-task overhead low; with fewer, each workload's grid is
        split so every worker still gets a slice.
        """
        # Workloads interleave across the pool, so the batch is timed as
        # one sweep rather than attributing wall time per workload.
        with timed(
            self.metrics, "repro_profiler_sweep_seconds", workload="__parallel_batch__"
        ):
            points = self.platform.sweep_points()
            chunks = 1 if len(pending) >= self.jobs else -(-self.jobs // len(pending))
            tasks = [
                SweepTask(
                    workload=workload,
                    points=chunk,
                    offset=offset,
                    machine=self._machine_kind,
                    platform=self.platform,
                    trace_instructions=self._trace.n_instructions,
                    use_fast_kernel=self.use_fast_kernel,
                )
                for workload in pending
                for offset, chunk in split_points(points, chunks)
            ]
            raw_ipc = {workload.name: np.empty(len(points)) for workload in pending}
            futures = {self._pool().submit(simulate_task, task): task for task in tasks}
            done, _ = wait(futures, return_when=FIRST_EXCEPTION)
            for future in done:
                task = futures[future]
                values = future.result()  # re-raises worker exceptions
                raw_ipc[task.workload.name][task.offset : task.offset + len(values)] = (
                    values
                )
                self._bump("simulated_points", len(values))
                self._bump_trace_path(len(values))
            allocations = np.asarray(points)
            profiles = {}
            for workload in pending:
                self._bump("simulated_workloads")
                profiles[workload.name] = self._finalize(
                    workload, allocations, raw_ipc[workload.name]
                )
            return profiles

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def profile(self, workload: WorkloadSpec) -> Profile:
        """Measure IPC at every Table 1 sweep point (cached per workload)."""
        cached = self._lookup(workload)
        if cached is not None:
            return cached
        if self.jobs > 1:
            return self._simulate_parallel([workload])[workload.name]
        return self._simulate_serial(workload)

    def fit(self, workload: WorkloadSpec) -> CobbDouglasFit:
        """Profile then fit the workload's Cobb-Douglas utility."""
        return self.profile(workload).fit()

    def profile_suite(
        self, workloads: Optional[Iterable[WorkloadSpec]] = None
    ) -> Dict[str, Profile]:
        """Profiles for a set of workloads (default: all 28 benchmarks).

        This is the batch entry point: with ``jobs > 1`` every uncached
        workload's sweep is simulated concurrently in one fan-out.
        """
        if workloads is None:
            workloads = BENCHMARKS.values()
        workloads = list(workloads)
        profiles: Dict[str, Profile] = {}
        pending: List[WorkloadSpec] = []
        for workload in workloads:
            cached = self._lookup(workload)
            if cached is not None:
                profiles[workload.name] = cached
            elif not any(w.name == workload.name for w in pending):
                pending.append(workload)
        if pending:
            if self.jobs > 1:
                profiles.update(self._simulate_parallel(pending))
            else:
                for workload in pending:
                    profiles[workload.name] = self._simulate_serial(workload)
        return {workload.name: profiles[workload.name] for workload in workloads}

    def fit_suite(
        self, workloads: Optional[Iterable[WorkloadSpec]] = None
    ) -> Dict[str, CobbDouglasFit]:
        """Fitted utilities for a set of workloads (default: all 28)."""
        return {
            name: profile.fit()
            for name, profile in self.profile_suite(workloads).items()
        }
