"""Offline profiling: sweep the Table 1 grid and measure IPC (§4.4, §5.1).

The paper characterizes each application by simulating 25 architectures
(five cache sizes x five bandwidths).  :class:`OfflineProfiler` does the
same against either machine model:

* the fast analytic machine (default) — used for full-suite sweeps, and
* the trace-driven machine — the detailed path, for validation runs.

Real profiling is noisy (finite simulation windows, non-determinism);
the profiler therefore applies small multiplicative log-normal
measurement noise, seeded per workload for reproducibility.  This is
what gives the near-flat benchmarks (radiosity, string_match) their
paper-matching low R² — "negligible variance and no trend for
Cobb-Douglas to capture" — while leaving trendy workloads at high R².
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional

import numpy as np

from ..core.fitting import CobbDouglasFit
from ..sim.analytic import AnalyticMachine
from ..sim.machine import TraceMachine
from ..sim.platform import PlatformConfig
from ..workloads.spec import WorkloadSpec
from ..workloads.suites import BENCHMARKS
from .profile import Profile

__all__ = ["OfflineProfiler"]

#: Default multiplicative measurement-noise sigma (log-space).  About 1%
#: run-to-run variation, typical of sampled cycle-accurate simulation.
DEFAULT_NOISE_SIGMA = 0.01


class OfflineProfiler:
    """Profiles workloads over the platform's allocation grid.

    Parameters
    ----------
    platform:
        Platform whose sweep grids define the profile points.
    noise_sigma:
        Log-space standard deviation of multiplicative measurement
        noise; 0 disables noise entirely.
    seed:
        Base seed; each workload's noise stream is derived from it and
        the workload name, so profiles are reproducible per benchmark
        and independent across benchmarks.
    use_trace_machine:
        Profile on the detailed trace-driven simulator instead of the
        analytic model (slower; used by validation tests/examples).
    """

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        noise_sigma: float = DEFAULT_NOISE_SIGMA,
        seed: int = 2014,
        use_trace_machine: bool = False,
        trace_instructions: int = 400_000,
    ):
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self.platform = platform if platform is not None else PlatformConfig()
        self.noise_sigma = noise_sigma
        self.seed = seed
        self.use_trace_machine = use_trace_machine
        self._analytic = AnalyticMachine(self.platform)
        self._trace = TraceMachine(self.platform, n_instructions=trace_instructions)
        self._cache: Dict[str, Profile] = {}

    def _workload_rng(self, name: str) -> np.random.Generator:
        """Deterministic per-workload noise stream."""
        return np.random.default_rng((self.seed, zlib.crc32(name.encode())))

    def profile(self, workload: WorkloadSpec) -> Profile:
        """Measure IPC at every Table 1 sweep point (cached per workload)."""
        if workload.name in self._cache:
            return self._cache[workload.name]
        if self.use_trace_machine:
            points = self.platform.sweep_points()
            ipc = np.array(
                [
                    self._trace.simulate(workload, cache_kb=kb, bandwidth_gbps=bw).ipc
                    for bw, kb in points
                ]
            )
            allocations = np.asarray(points)
            source = "trace"
        else:
            sweep = self._analytic.sweep(workload)
            allocations, ipc = sweep.allocations, sweep.ipc
            source = "analytic"
        if self.noise_sigma > 0:
            rng = self._workload_rng(workload.name)
            ipc = ipc * np.exp(rng.normal(0.0, self.noise_sigma, size=ipc.shape))
        profile = Profile(
            workload_name=workload.name, allocations=allocations, ipc=ipc, source=source
        )
        self._cache[workload.name] = profile
        return profile

    def fit(self, workload: WorkloadSpec) -> CobbDouglasFit:
        """Profile then fit the workload's Cobb-Douglas utility."""
        return self.profile(workload).fit()

    def profile_suite(
        self, workloads: Optional[Iterable[WorkloadSpec]] = None
    ) -> Dict[str, Profile]:
        """Profiles for a set of workloads (default: all 28 benchmarks)."""
        if workloads is None:
            workloads = BENCHMARKS.values()
        return {workload.name: self.profile(workload) for workload in workloads}

    def fit_suite(
        self, workloads: Optional[Iterable[WorkloadSpec]] = None
    ) -> Dict[str, CobbDouglasFit]:
        """Fitted utilities for a set of workloads (default: all 28)."""
        if workloads is None:
            workloads = BENCHMARKS.values()
        return {workload.name: self.fit(workload) for workload in workloads}
