"""Performance profiles: the data the utility-fitting step consumes.

A :class:`Profile` records measured performance (IPC) at a set of
resource allocations — the output of §4.4's profiling step and the
input to :func:`repro.core.fitting.fit_cobb_douglas`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..core.fitting import CobbDouglasFit, fit_cobb_douglas

__all__ = ["Profile"]


@dataclass(frozen=True)
class Profile:
    """IPC measurements over a set of (bandwidth GB/s, cache KB) points.

    Attributes
    ----------
    workload_name:
        The profiled benchmark.
    allocations:
        ``(n_samples, 2)`` array; column 0 is memory bandwidth in GB/s,
        column 1 is cache capacity in KB (the paper's resource ordering
        for ``u = a0 * x**ax * y**ay``).
    ipc:
        Measured instructions per cycle, one per row.
    source:
        Provenance label (``"analytic"``, ``"trace"``, ``"online"``).
    """

    workload_name: str
    allocations: np.ndarray = field(repr=False)
    ipc: np.ndarray = field(repr=False)
    source: str = "analytic"

    def __post_init__(self) -> None:
        allocations = np.asarray(self.allocations, dtype=float)
        ipc = np.asarray(self.ipc, dtype=float)
        if allocations.ndim != 2 or allocations.shape[1] != 2:
            raise ValueError(
                f"allocations must be (n, 2) [bandwidth, cache], got {allocations.shape}"
            )
        if ipc.shape != (allocations.shape[0],):
            raise ValueError("ipc must have one entry per allocation row")
        if np.any(allocations <= 0) or np.any(ipc <= 0):
            raise ValueError("allocations and ipc must be strictly positive")
        object.__setattr__(self, "allocations", allocations)
        object.__setattr__(self, "ipc", ipc)

    @property
    def n_samples(self) -> int:
        return int(self.ipc.shape[0])

    def fit(self) -> CobbDouglasFit:
        """Fit a Cobb-Douglas utility to this profile (Eq. 16)."""
        return fit_cobb_douglas(self.allocations, self.ipc)

    def extended(self, allocation: Sequence[float], ipc: float) -> "Profile":
        """A new profile with one more sample appended (online profiling)."""
        return Profile(
            workload_name=self.workload_name,
            allocations=np.vstack([self.allocations, np.asarray(allocation, dtype=float)]),
            ipc=np.append(self.ipc, float(ipc)),
            source=self.source,
        )

    def as_dict(self) -> Dict[str, List]:
        """JSON-serializable representation."""
        return {
            "workload_name": self.workload_name,
            "allocations": self.allocations.tolist(),
            "ipc": self.ipc.tolist(),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Profile":
        """Inverse of :meth:`as_dict`."""
        return cls(
            workload_name=data["workload_name"],
            allocations=np.asarray(data["allocations"], dtype=float),
            ipc=np.asarray(data["ipc"], dtype=float),
            source=data.get("source", "analytic"),
        )
