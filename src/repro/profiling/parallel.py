"""Pickle-safe work units for parallel profiling sweeps.

The offline profiler fans (workload x grid-point) simulation work out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  Everything a
worker needs crosses the process boundary as one small frozen
dataclass (:class:`SweepTask`): the workload spec, the platform, the
machine kind and a contiguous slice of sweep points.  The worker
(:func:`simulate_task`) rebuilds the machine locally and returns raw
(noise-free) IPC values; measurement noise is applied by the parent
from the per-workload seeded stream, so parallel profiles are
bit-identical to serial ones regardless of scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..sim.analytic import AnalyticMachine
from ..sim.machine import TraceMachine
from ..sim.platform import PlatformConfig
from ..workloads.spec import WorkloadSpec

__all__ = ["SweepTask", "simulate_task", "split_points"]


@dataclass(frozen=True)
class SweepTask:
    """One unit of simulation work: a slice of one workload's sweep.

    Attributes
    ----------
    workload:
        The benchmark to simulate (picklable frozen dataclass).
    points:
        ``(bandwidth_gbps, cache_kb)`` grid points, in sweep order.
    offset:
        Index of ``points[0]`` within the workload's full sweep — the
        reassembly key, so results land in grid order no matter which
        worker finishes first.
    machine:
        ``"analytic"`` (closed-form) or ``"trace"`` (trace-driven).
    platform:
        Platform configuration the machine is built from.
    trace_instructions:
        Simulated instruction count per point (trace machine only).
    use_fast_kernel:
        Run the trace machine on the stack-distance kernel (trace
        machine only; results are bit-identical either way).
    """

    workload: WorkloadSpec
    points: Tuple[Tuple[float, float], ...]
    offset: int
    machine: str
    platform: PlatformConfig
    trace_instructions: int = 400_000
    use_fast_kernel: bool = True

    def __post_init__(self) -> None:
        if self.machine not in ("analytic", "trace"):
            raise ValueError(f"machine must be 'analytic' or 'trace', got {self.machine!r}")
        if not self.points:
            raise ValueError("a sweep task needs at least one grid point")
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")


def simulate_task(task: SweepTask) -> List[float]:
    """Execute one task; returns raw IPC per point, in task order.

    Runs in a worker process (but is equally valid inline): machines
    are rebuilt from the pickled platform, and both machine models are
    deterministic, so results match the serial path bit for bit.
    """
    if task.machine == "trace":
        trace = TraceMachine(
            task.platform,
            n_instructions=task.trace_instructions,
            use_fast_kernel=task.use_fast_kernel,
        )
        return [result.ipc for result in trace.sweep(task.workload, list(task.points))]
    analytic = AnalyticMachine(task.platform)
    return [analytic.ipc(task.workload, kb, bw) for bw, kb in task.points]


def split_points(
    points: Sequence[Tuple[float, float]], n_chunks: int
) -> List[Tuple[int, Tuple[Tuple[float, float], ...]]]:
    """Split sweep points into up to ``n_chunks`` contiguous slices.

    Returns ``(offset, slice)`` pairs covering ``points`` exactly once,
    each slice non-empty and sized within one point of the others.
    """
    n_chunks = max(1, min(int(n_chunks), len(points)))
    base, extra = divmod(len(points), n_chunks)
    chunks: List[Tuple[int, Tuple[Tuple[float, float], ...]]] = []
    offset = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append((offset, tuple(points[offset : offset + size])))
        offset += size
    return chunks
