"""Content-addressed on-disk cache for profiling sweeps.

Profiling a workload over the Table 1 grid is a pure function of the
workload spec, the platform, the machine model and the noise stream.
This module memoizes that function on disk so repeated ``reproduce`` /
benchmark runs skip simulation entirely:

* :func:`profile_cache_key` hashes everything the sweep depends on —
  the full workload spec (including its locality mixture), the platform
  fingerprint (:meth:`repro.sim.platform.PlatformConfig.fingerprint`),
  the machine kind (analytic vs trace), the trace length, and the noise
  sigma/seed — into a content address;
* :class:`ProfileCache` stores one JSON file per key under a two-level
  directory fan-out, written atomically (temp file + rename) so a
  killed run never leaves a half-written entry;
* ``CACHE_VERSION`` is baked into every key and every stored entry:
  bumping it after a substrate change invalidates all prior entries at
  once.

Corrupted or stale entries are treated as misses and evicted, never
raised: the cache is an accelerator, not a source of truth.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from contextlib import suppress
from pathlib import Path
from typing import Optional, Union

from .profile import Profile

__all__ = ["ProfileCache", "CACHE_VERSION", "profile_cache_key"]

#: Bump to invalidate every previously written cache entry (e.g. after a
#: change to the simulators or the noise scheme).
#:
#: 2: trace-driven sweeps restructured around the stack-distance kernel
#:    (repro.sim.fastcache).  Results are bit-identical — and the key
#:    deliberately does NOT include ``use_fast_kernel``, so fast and
#:    reference runs share entries — but profiles written by pre-kernel
#:    code must not be trusted against post-restructure expectations.
CACHE_VERSION = 2


def _canonical_json(payload) -> str:
    """Deterministic serialization: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def profile_cache_key(
    workload,
    platform,
    machine: str,
    noise_sigma: float,
    seed: int,
    trace_instructions: Optional[int] = None,
) -> str:
    """Content address of one workload's sweep under one configuration.

    Any input that can change the resulting :class:`Profile` — workload
    parameters, platform geometry/timing/grids, machine model, trace
    length, noise sigma or seed — feeds the hash, so a change in any of
    them is a cache miss rather than a stale hit.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "workload": dataclasses.asdict(workload),
        "platform": platform.fingerprint(),
        "machine": machine,
        "noise_sigma": float(noise_sigma),
        "seed": int(seed),
    }
    if machine == "trace":
        payload["trace_instructions"] = int(trace_instructions or 0)
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


class ProfileCache:
    """A directory of content-addressed profile JSON files.

    Parameters
    ----------
    cache_dir:
        Root directory; created lazily on first write.  Entries live at
        ``<cache_dir>/<key[:2]>/<key>.json``.
    """

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Profile]:
        """The cached profile for ``key``, or ``None`` on any miss.

        Unreadable JSON, a version mismatch, a key mismatch (e.g. a file
        copied between stores) and malformed profile payloads all count
        as misses; the offending file is evicted so the slot heals on
        the next :meth:`put`.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self._evict(path)
            return None
        try:
            if data["cache_version"] != CACHE_VERSION or data["key"] != key:
                raise ValueError("stale cache entry")
            return Profile.from_dict(data["profile"])
        except (KeyError, TypeError, ValueError):
            self._evict(path)
            return None

    def put(self, key: str, profile: Profile) -> Path:
        """Store ``profile`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "profile": profile.as_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            with suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def __len__(self) -> int:
        """Number of stored entries."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*/*.json"):
                self._evict(path)
                removed += 1
        return removed

    @staticmethod
    def _evict(path: Path) -> None:
        with suppress(OSError):
            path.unlink()
