"""Metric primitives and the registry that owns them.

Three metric kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing totals;
* :class:`Gauge` — a value that can move both ways;
* :class:`Histogram` — observation count/sum/min/max, cumulative-style
  fixed buckets (for Prometheus export) and a *bounded reservoir* of
  the most recent observations (for quantile estimates without
  unbounded memory).

Every metric belongs to a *family* (one name, one kind, one help
string) and is keyed within the family by its label set, exactly like
Prometheus children.  :class:`MetricsRegistry` creates metrics on first
use, serializes to/from plain dicts (JSON-safe), and merges — the
operation the CLI uses to combine a profiler's registry with the
process-global one before export.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "set_global_registry",
]

#: Default latency-oriented bucket upper bounds (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default bound on each histogram's recent-sample reservoir.
DEFAULT_RESERVOIR_SIZE = 1024

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically non-decreasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        self.value += float(amount)


class Gauge:
    """A point-in-time value that can move in both directions."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= float(amount)


class Histogram:
    """Observation statistics with fixed buckets and a bounded reservoir.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` minus
    those counted by earlier buckets (non-cumulative storage; the
    Prometheus exporter re-accumulates).  The reservoir is a ring
    buffer of the most recent ``reservoir_size`` observations, so
    :meth:`quantile` stays meaningful over arbitrarily long runs at
    O(1) memory.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ):
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {buckets}")
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.reservoir_size = int(reservoir_size)
        self.bucket_counts = [0] * (len(buckets) + 1)  # final slot = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._ring_index = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            self._reservoir[self._ring_index] = value
            self._ring_index = (self._ring_index + 1) % self.reservoir_size

    @property
    def reservoir(self) -> Tuple[float, ...]:
        """The retained (most recent) observations, unordered."""
        return tuple(self._reservoir)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimated from the reservoir."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return float("nan")
        ordered = sorted(self._reservoir)
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class _Family:
    """One metric name: its kind, help string and per-label children."""

    def __init__(self, name: str, kind: str, help: str):
        self.name = name
        self.kind = kind
        self.help = help
        self.children: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Creates, owns, serializes and merges metric families.

    Metrics are created on first use and returned on every subsequent
    call with the same name and labels::

        registry = MetricsRegistry()
        registry.counter("requests_total", route="/allocate").inc()
        registry.histogram("epoch_seconds").observe(0.012)

    Access is guarded by a single lock, so concurrent instrumentation
    from worker threads is safe.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Creation / lookup

    def _family(self, name: str, kind: str, help: str) -> _Family:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get or create the counter ``name{labels}``."""
        with self._lock:
            family = self._family(name, "counter", help)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Counter(name, key)
            return child  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        with self._lock:
            family = self._family(name, "gauge", help)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Gauge(name, key)
            return child  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``.

        ``buckets`` applies only on first creation; later calls for the
        same child must agree (or omit the argument).
        """
        with self._lock:
            family = self._family(name, "histogram", help)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Histogram(
                    name,
                    key,
                    buckets=buckets if buckets is not None else DEFAULT_BUCKETS,
                    reservoir_size=reservoir_size,
                )
            elif buckets is not None and tuple(float(b) for b in buckets) != child.buckets:
                raise ValueError(
                    f"histogram {name!r}{dict(key)} already exists with buckets "
                    f"{child.buckets}; cannot change them to {tuple(buckets)}"
                )
            return child  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection

    def families(self) -> List[_Family]:
        """All families, sorted by metric name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def metrics(self) -> Iterator[object]:
        """Every child metric across all families, in stable order."""
        for family in self.families():
            for key in sorted(family.children):
                yield family.children[key]

    def get(self, name: str, **labels: str):
        """Return the child ``name{labels}`` or ``None`` if absent."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.children) for f in self._families.values())

    # ------------------------------------------------------------------
    # Serialization

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (``from_dict`` round-trips it exactly)."""
        counters, gauges, histograms = [], [], []
        for family in self.families():
            for key in sorted(family.children):
                child = family.children[key]
                base = {
                    "name": family.name,
                    "help": family.help,
                    "labels": dict(key),
                }
                if family.kind == "counter":
                    counters.append({**base, "value": child.value})
                elif family.kind == "gauge":
                    gauges.append({**base, "value": child.value})
                else:
                    histograms.append(
                        {
                            **base,
                            "count": child.count,
                            "sum": child.sum,
                            "min": child.min if child.count else None,
                            "max": child.max if child.count else None,
                            "buckets": [
                                [bound, count]
                                for bound, count in zip(child.buckets, child.bucket_counts)
                            ],
                            "overflow": child.bucket_counts[-1],
                            "reservoir": list(child.reservoir),
                            "reservoir_size": child.reservoir_size,
                        }
                    )
        return {
            "version": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output (extra keys ignored)."""
        registry = cls()
        for entry in data.get("counters", ()):  # type: ignore[union-attr]
            registry.counter(entry["name"], help=entry.get("help", ""), **entry["labels"]).inc(
                entry["value"]
            )
        for entry in data.get("gauges", ()):  # type: ignore[union-attr]
            registry.gauge(entry["name"], help=entry.get("help", ""), **entry["labels"]).set(
                entry["value"]
            )
        for entry in data.get("histograms", ()):  # type: ignore[union-attr]
            bounds = [bound for bound, _ in entry["buckets"]]
            child = registry.histogram(
                entry["name"],
                help=entry.get("help", ""),
                buckets=bounds,
                reservoir_size=entry.get("reservoir_size", DEFAULT_RESERVOIR_SIZE),
                **entry["labels"],
            )
            child.count = int(entry["count"])
            child.sum = float(entry["sum"])
            child.min = float(entry["min"]) if entry.get("min") is not None else float("inf")
            child.max = float(entry["max"]) if entry.get("max") is not None else float("-inf")
            child.bucket_counts = [int(c) for _, c in entry["buckets"]] + [
                int(entry.get("overflow", 0))
            ]
            for value in entry.get("reservoir", ()):
                if len(child._reservoir) < child.reservoir_size:
                    child._reservoir.append(float(value))
        return registry

    # ------------------------------------------------------------------
    # Merging

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place) and return self.

        Counters and histograms accumulate; gauges take the other
        registry's (more recent) value.  Histogram children must agree
        on bucket bounds.
        """
        for family in other.families():
            for key in sorted(family.children):
                child = family.children[key]
                labels = dict(key)
                if family.kind == "counter":
                    self.counter(family.name, help=family.help, **labels).inc(child.value)
                elif family.kind == "gauge":
                    self.gauge(family.name, help=family.help, **labels).set(child.value)
                else:
                    mine = self.histogram(
                        family.name,
                        help=family.help,
                        buckets=child.buckets,
                        reservoir_size=child.reservoir_size,
                        **labels,
                    )
                    if mine.buckets != child.buckets:
                        raise ValueError(
                            f"cannot merge histogram {family.name!r}: bucket bounds differ"
                        )
                    mine.count += child.count
                    mine.sum += child.sum
                    mine.min = min(mine.min, child.min)
                    mine.max = max(mine.max, child.max)
                    mine.bucket_counts = [
                        a + b for a, b in zip(mine.bucket_counts, child.bucket_counts)
                    ]
                    for value in child.reservoir:
                        if len(mine._reservoir) < mine.reservoir_size:
                            mine._reservoir.append(value)
                        else:
                            mine._reservoir[mine._ring_index] = value
                            mine._ring_index = (mine._ring_index + 1) % mine.reservoir_size
        return self


_GLOBAL_REGISTRY = MetricsRegistry()
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-global registry (for code no registry can be passed to)."""
    return _GLOBAL_REGISTRY


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Tests use this to observe instrumentation in isolation::

        previous = set_global_registry(MetricsRegistry())
        try:
            ...
        finally:
            set_global_registry(previous)
    """
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        previous = _GLOBAL_REGISTRY
        _GLOBAL_REGISTRY = registry
        return previous
