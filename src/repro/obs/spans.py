"""Context-manager tracing: hierarchical spans and one-shot timers.

:class:`Tracer` records *span trees*: a ``with tracer.span("epoch")``
block may open nested spans (``allocate``, ``measure``, ...), and on
exit each block knows its wall-clock duration.  Completed root spans
are kept in a bounded deque (``tracer.roots``), so a long-running
service can be traced indefinitely at O(1) memory; dropped roots are
counted.

:func:`timed` is the scalar little sibling: it times one block into a
registry histogram and involves no tree at all.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .registry import MetricsRegistry

__all__ = ["SpanRecord", "Tracer", "timed"]


@dataclass
class SpanRecord:
    """One completed (or in-flight) traced block.

    ``start`` is a ``time.perf_counter`` timestamp — meaningful only
    relative to other spans from the same process; exporters emit
    offsets relative to the root span instead.
    """

    name: str
    start: float
    duration: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["SpanRecord"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def as_dict(self, _origin: Optional[float] = None) -> Dict[str, object]:
        """JSON-safe tree; ``offset`` is seconds since the root's start."""
        origin = self.start if _origin is None else _origin
        record: Dict[str, object] = {
            "name": self.name,
            "offset": self.start - origin,
            "duration": self.duration,
        }
        if self.meta:
            record["meta"] = dict(self.meta)
        if self.children:
            record["children"] = [child.as_dict(origin) for child in self.children]
        return record


class Tracer:
    """Builds span trees from nested ``with`` blocks.

    Parameters
    ----------
    metrics:
        Optional registry; when given, every completed span also
        observes its duration into the ``histogram_name`` histogram,
        labeled by span name.
    max_roots:
        Bound on retained completed root spans (oldest dropped first;
        ``dropped_roots`` counts them).
    histogram_name:
        Name of the mirror histogram when ``metrics`` is set.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        max_roots: int = 1024,
        histogram_name: str = "repro_span_seconds",
    ):
        if max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.metrics = metrics
        self.max_roots = int(max_roots)
        self.histogram_name = histogram_name
        self.roots: List[SpanRecord] = []
        self.dropped_roots = 0
        self._stack: List[SpanRecord] = []

    @property
    def current(self) -> Optional[SpanRecord]:
        """The innermost open span, or ``None`` outside any block."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[SpanRecord]:
        """Open a span; nested calls become children of the open span."""
        record = SpanRecord(name=name, start=time.perf_counter(), meta=dict(meta))
        parent = self.current
        if parent is not None:
            parent.children.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - record.start
            self._stack.pop()
            if parent is None:
                self.roots.append(record)
                if len(self.roots) > self.max_roots:
                    del self.roots[: len(self.roots) - self.max_roots]
                    self.dropped_roots += 1
            if self.metrics is not None:
                self.metrics.histogram(
                    self.histogram_name,
                    help="Durations of traced spans, by span name.",
                    span=name,
                ).observe(record.duration)

    def spans_as_dicts(self) -> List[Dict[str, object]]:
        """All retained root span trees, JSON-safe."""
        return [root.as_dict() for root in self.roots]


@contextmanager
def timed(
    registry: MetricsRegistry,
    name: str,
    help: str = "",
    buckets: Optional[Tuple[float, ...]] = None,
    **labels: str,
) -> Iterator[None]:
    """Time one block into ``registry.histogram(name, **labels)``.

    The duration is recorded even when the block raises — a failing
    epoch still costs wall-clock time and must show up in latency
    telemetry.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        registry.histogram(name, help=help, buckets=buckets, **labels).observe(
            time.perf_counter() - start
        )
