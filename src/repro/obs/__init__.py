"""Observability: metrics, tracing and exporters for the REF service.

A dependency-free (stdlib + nothing) telemetry layer shared by every
hot path in the reproduction:

* :class:`MetricsRegistry` — named counters, gauges and histograms
  (fixed Prometheus-style buckets plus a bounded sample reservoir for
  quantiles), with labels, JSON round-trips and registry merging;
* :class:`Tracer` / :func:`timed` — ``with``-block tracing producing
  hierarchical :class:`SpanRecord` trees and latency histograms;
* :mod:`repro.obs.export` — JSON and Prometheus text-format exporters
  (plus a strict text-format parser used by tests and CI).

Producers either accept an explicit registry (``OfflineProfiler``,
``OnlineProfiler``, ``DynamicAllocator``) or fall back to the
process-global registry (:func:`global_registry`) when none can be
threaded through, as in :func:`repro.optimize.logspace.solve`.

Metric families are namespaced by layer: ``repro_profiler_*`` /
``repro_controller_*`` for the library, ``repro_serve_*`` for the HTTP
service, and ``repro_shard_*`` for the multi-cell coordinator
(:mod:`repro.serve.shard`) — live-cell count (``repro_shard_cells``),
per-cell capacity-grant latency
(``repro_shard_grant_latency_seconds``), grant rounds, and the
rebalance/rehash counters that track recovery from cell death.  In a
sharded deployment each cell worker exposes its own ``repro_serve_*``
families on its own ``/metrics`` port (discoverable via the
coordinator's ``GET /v1/cells``); the coordinator does not aggregate
them, matching the one-scrape-target-per-process Prometheus model.

See ``docs/observability.md`` for the metric catalogue and span
semantics.
"""

from .export import (
    parse_prometheus_text,
    render_table,
    to_json,
    to_prometheus,
    write_json,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    set_global_registry,
)
from .spans import SpanRecord, Tracer, timed

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "global_registry",
    "parse_prometheus_text",
    "render_table",
    "set_global_registry",
    "timed",
    "to_json",
    "to_prometheus",
    "write_json",
]
