"""Exporters: registry → JSON file / Prometheus text format / table.

The JSON form is ``MetricsRegistry.as_dict()`` plus an optional
``"spans"`` key (the dynamic service's per-epoch span trees); it
round-trips through ``MetricsRegistry.from_dict`` and is what
``--metrics-out`` writes and ``python -m repro metrics FILE`` reads.

The Prometheus form follows the text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` comments, escaped label values,
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.  :func:`parse_prometheus_text` is a strict
parser for that grammar, used by tests and the CI smoke job to prove
the output is scrapeable.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .registry import MetricsRegistry
from .spans import SpanRecord

__all__ = [
    "parse_prometheus_text",
    "render_table",
    "to_json",
    "to_prometheus",
    "write_json",
]


def _format_value(value: float) -> str:
    """A Prometheus-legal rendering of a float."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in labels)
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if family.kind in ("counter", "gauge"):
                lines.append(
                    f"{family.name}{_render_labels(key)} {_format_value(child.value)}"
                )
            else:
                cumulative = 0
                for bound, bucket_count in zip(child.buckets, child.bucket_counts):
                    cumulative += bucket_count
                    labels = key + (("le", _format_value(bound)),)
                    lines.append(
                        f"{family.name}_bucket{_render_labels(labels)} {cumulative}"
                    )
                labels = key + (("le", "+Inf"),)
                lines.append(f"{family.name}_bucket{_render_labels(labels)} {child.count}")
                lines.append(
                    f"{family.name}_sum{_render_labels(key)} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_render_labels(key)} {child.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(
    registry: MetricsRegistry,
    spans: Optional[Sequence[Union[SpanRecord, Dict[str, object]]]] = None,
    indent: int = 2,
) -> str:
    """Serialize a registry (and optional span trees) to a JSON string."""
    payload = registry.as_dict()
    if spans is not None:
        payload["spans"] = [
            span.as_dict() if isinstance(span, SpanRecord) else span for span in spans
        ]
    return json.dumps(payload, indent=indent, sort_keys=False)


def write_json(
    registry: MetricsRegistry,
    path: str,
    spans: Optional[Sequence[Union[SpanRecord, Dict[str, object]]]] = None,
) -> None:
    """Write :func:`to_json` output to ``path`` (the ``--metrics-out`` file)."""
    with open(path, "w") as handle:
        handle.write(to_json(registry, spans=spans))
        handle.write("\n")


def render_table(registry: MetricsRegistry) -> str:
    """Human-readable summary table (the default ``repro metrics`` view)."""
    rows: List[Tuple[str, str, str]] = []
    for family in registry.families():
        for key in sorted(family.children):
            child = family.children[key]
            name = f"{family.name}{_render_labels(key)}"
            if family.kind == "histogram":
                if child.count:
                    detail = (
                        f"count={child.count} mean={child.mean():.6g} "
                        f"min={child.min:.6g} max={child.max:.6g} "
                        f"p50={child.quantile(0.5):.6g} p99={child.quantile(0.99):.6g}"
                    )
                else:
                    detail = "count=0"
                rows.append((name, family.kind, detail))
            else:
                rows.append((name, family.kind, _format_value(child.value)))
    if not rows:
        return "(no metrics recorded)"
    name_width = max(len(name) for name, _, _ in rows)
    kind_width = max(len(kind) for _, kind, _ in rows)
    return "\n".join(
        f"{name:<{name_width}}  {kind:<{kind_width}}  {detail}"
        for name, kind, detail in rows
    )


# ---------------------------------------------------------------------------
# Prometheus text-format parser (for tests and CI assertions)
# ---------------------------------------------------------------------------

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALUE_RE = re.compile(r"^[+-]?(?:Inf|NaN|(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_prometheus_text(text: str) -> List[Dict[str, object]]:
    """Parse Prometheus text-format exposition; raises ``ValueError`` on
    any line that does not conform to the grammar.

    Returns the samples as ``{"name", "labels", "value"}`` dicts.
    Intentionally strict: the CI smoke job feeds ``repro metrics
    --format prometheus`` through this to guarantee scrapeability.
    """
    samples: List[Dict[str, object]] = []
    typed: Dict[str, str] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _METRIC_RE.match(parts[2]):
                    raise ValueError(f"line {line_number}: malformed {parts[1]} comment: {raw_line!r}")
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                        "counter",
                        "gauge",
                        "histogram",
                        "summary",
                        "untyped",
                    ):
                        raise ValueError(f"line {line_number}: bad TYPE: {raw_line!r}")
                    if parts[2] in typed:
                        raise ValueError(
                            f"line {line_number}: duplicate TYPE for {parts[2]!r}"
                        )
                    typed[parts[2]] = parts[3]
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: not a valid sample line: {raw_line!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text is not None and label_text.strip():
            position = 0
            while position < len(label_text):
                pair = _LABEL_PAIR_RE.match(label_text, position)
                if not pair:
                    raise ValueError(
                        f"line {line_number}: malformed labels: {label_text!r}"
                    )
                labels[pair.group("name")] = (
                    pair.group("value")
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                position = pair.end()
        value_text = match.group("value")
        if not _VALUE_RE.match(value_text):
            raise ValueError(f"line {line_number}: bad sample value {value_text!r}")
        samples.append(
            {
                "name": match.group("name"),
                "labels": labels,
                "value": float(value_text.replace("Inf", "inf").replace("NaN", "nan")),
            }
        )
    return samples
