"""Phase-changing workloads and agent churn: what the service adapts to.

§4.4's on-line profiler is motivated by software whose resource
preferences are unknown — and, in practice, change: applications move
between phases (e.g. a build phase that streams input, then a compute
phase that lives in cache).  A :class:`PhasedWorkload` strings together
existing :class:`~repro.workloads.spec.WorkloadSpec` behaviours with
epoch-granularity durations, giving the dynamic allocation controller
something real to chase.

A second kind of temporal structure is *membership* change: on a shared
machine users arrive and leave mid-run.  A :class:`ChurnSchedule` lists
:class:`ChurnEvent` arrivals/departures at epoch granularity; the
controller applies them between epochs and rebuilds the allocation
problem for the surviving population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Phase", "PhasedWorkload", "ChurnEvent", "ChurnSchedule"]


@dataclass(frozen=True)
class Phase:
    """One phase: a workload behaviour held for a number of epochs."""

    spec: object
    epochs: int

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"phase duration must be positive, got {self.epochs}")


@dataclass(frozen=True)
class PhasedWorkload:
    """A workload whose behaviour switches between phases over time.

    The phase sequence repeats cyclically, modelling iterative
    applications (e.g. MapReduce rounds alternating map-like and
    reduce-like behaviour).
    """

    name: str
    phases: Tuple[Phase, ...]

    def __init__(self, name: str, phases: Sequence[Phase]):
        phases = tuple(phases)
        if not name:
            raise ValueError("workload name must be non-empty")
        if not phases:
            raise ValueError("at least one phase is required")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "phases", phases)

    @property
    def cycle_epochs(self) -> int:
        """Total epochs in one trip through the phase sequence."""
        return sum(phase.epochs for phase in self.phases)

    def spec_at(self, epoch: int):
        """The active behaviour during the given (0-based) epoch."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        position = epoch % self.cycle_epochs
        for phase in self.phases:
            if position < phase.epochs:
                return phase.spec
            position -= phase.epochs
        raise AssertionError("unreachable: phase walk exhausted")  # pragma: no cover

    def phase_boundaries(self, n_epochs: int) -> List[int]:
        """Epochs at which the active phase changes, within a horizon."""
        boundaries = []
        previous = self.spec_at(0)
        for epoch in range(1, n_epochs):
            current = self.spec_at(epoch)
            if current is not previous:
                boundaries.append(epoch)
                previous = current
        return boundaries


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: an agent arriving at or leaving an epoch."""

    epoch: int
    action: str  # "add" | "remove"
    agent: str
    workload: Optional[object] = None

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch}")
        if self.action not in ("add", "remove"):
            raise ValueError(f"action must be 'add' or 'remove', got {self.action!r}")
        if not self.agent:
            raise ValueError("agent name must be non-empty")
        if self.action == "add" and self.workload is None:
            raise ValueError(f"adding agent {self.agent!r} requires a workload")


@dataclass(frozen=True)
class ChurnSchedule:
    """An epoch-ordered list of arrivals and departures.

    Events at epoch ``e`` take effect *before* epoch ``e`` is stepped,
    so an agent added at epoch 10 participates in epoch 10's allocation
    and an agent removed at epoch 10 does not.
    """

    events: Tuple[ChurnEvent, ...] = field(default=())

    def __init__(self, events: Sequence[ChurnEvent] = ()):
        ordered = tuple(sorted(events, key=lambda e: e.epoch))
        object.__setattr__(self, "events", ordered)

    def at(self, epoch: int) -> Tuple[ChurnEvent, ...]:
        """Events taking effect at the given epoch (add events first,

        so a same-epoch swap of one agent for another never empties the
        population)."""
        todays = [e for e in self.events if e.epoch == epoch]
        return tuple(sorted(todays, key=lambda e: 0 if e.action == "add" else 1))

    @property
    def last_epoch(self) -> int:
        """The latest epoch with a scheduled event (-1 when empty)."""
        return self.events[-1].epoch if self.events else -1
