"""Phase-changing workloads: the setting on-line profiling exists for.

§4.4's on-line profiler is motivated by software whose resource
preferences are unknown — and, in practice, change: applications move
between phases (e.g. a build phase that streams input, then a compute
phase that lives in cache).  A :class:`PhasedWorkload` strings together
existing :class:`~repro.workloads.spec.WorkloadSpec` behaviours with
epoch-granularity durations, giving the dynamic allocation controller
something real to chase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Phase", "PhasedWorkload"]


@dataclass(frozen=True)
class Phase:
    """One phase: a workload behaviour held for a number of epochs."""

    spec: object
    epochs: int

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"phase duration must be positive, got {self.epochs}")


@dataclass(frozen=True)
class PhasedWorkload:
    """A workload whose behaviour switches between phases over time.

    The phase sequence repeats cyclically, modelling iterative
    applications (e.g. MapReduce rounds alternating map-like and
    reduce-like behaviour).
    """

    name: str
    phases: Tuple[Phase, ...]

    def __init__(self, name: str, phases: Sequence[Phase]):
        phases = tuple(phases)
        if not name:
            raise ValueError("workload name must be non-empty")
        if not phases:
            raise ValueError("at least one phase is required")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "phases", phases)

    @property
    def cycle_epochs(self) -> int:
        """Total epochs in one trip through the phase sequence."""
        return sum(phase.epochs for phase in self.phases)

    def spec_at(self, epoch: int):
        """The active behaviour during the given (0-based) epoch."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        position = epoch % self.cycle_epochs
        for phase in self.phases:
            if position < phase.epochs:
                return phase.spec
            position -= phase.epochs
        raise AssertionError("unreachable: phase walk exhausted")  # pragma: no cover

    def phase_boundaries(self, n_epochs: int) -> List[int]:
        """Epochs at which the active phase changes, within a horizon."""
        boundaries = []
        previous = self.spec_at(0)
        for epoch in range(1, n_epochs):
            current = self.spec_at(epoch)
            if current is not previous:
                boundaries.append(epoch)
                previous = current
        return boundaries
