"""Dynamic reallocation: on-line profiling driving per-epoch REF (§4.4)."""

from .controller import ControllerResult, DynamicAllocator, EpochRecord
from .phases import Phase, PhasedWorkload

__all__ = [
    "ControllerResult",
    "DynamicAllocator",
    "EpochRecord",
    "Phase",
    "PhasedWorkload",
]
