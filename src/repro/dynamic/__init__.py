"""Dynamic reallocation: a fault-tolerant on-line REF service (§4.4)."""

from .controller import ControllerResult, DynamicAllocator, EpochEvent, EpochRecord
from .faults import FaultInjector, FaultSpec
from .phases import ChurnEvent, ChurnSchedule, Phase, PhasedWorkload

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ControllerResult",
    "DynamicAllocator",
    "EpochEvent",
    "EpochRecord",
    "FaultInjector",
    "FaultSpec",
    "Phase",
    "PhasedWorkload",
]
