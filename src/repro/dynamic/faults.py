"""Measurement-fault injection for the dynamic allocation service.

The §4.4 closed loop assumes every epoch yields a clean IPC sample.  A
real monitoring pipeline does not: counters get dropped, readings come
back zero or negative after a counter wrap, and interference spikes
produce wildly outlying values.  :class:`FaultSpec` describes such a
pipeline's failure distribution and :class:`FaultInjector` applies it to
ground-truth measurements, so the controller's retry / reject / fallback
machinery can be exercised (and CI can prove the loop survives it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FaultSpec", "FaultInjector"]


@dataclass(frozen=True)
class FaultSpec:
    """Failure distribution of the measurement pipeline.

    Each measurement independently fails in at most one mode:

    Attributes
    ----------
    drop:
        Probability the measurement is lost entirely (sensor timeout);
        surfaces to the controller as ``None``.
    non_positive:
        Probability the measurement comes back non-positive (counter
        wrap / underflow garbage).
    outlier:
        Probability the measurement is wildly scaled (interference
        spike) by ``outlier_scale`` or ``1 / outlier_scale``.
    outlier_scale:
        Multiplicative distortion applied to outlier faults; > 1.
    max_retries:
        Bounded retries the controller may spend per measurement on
        *detectable* faults (drops and non-positive readings) before
        skipping the sample.  Outliers are positive and thus not
        detectable at measurement time; the profiler's outlier gate
        handles them instead.
    backoff_base:
        First retry's (simulated) backoff in seconds.
    backoff_factor:
        Multiplier applied to the backoff after each failed retry.
    """

    drop: float = 0.0
    non_positive: float = 0.0
    outlier: float = 0.0
    outlier_scale: float = 50.0
    max_retries: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        for field_name in ("drop", "non_positive", "outlier"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be a probability, got {value}")
        if self.total_rate > 1.0:
            raise ValueError(
                f"fault probabilities must sum to at most 1, got {self.total_rate}"
            )
        if self.outlier_scale <= 1.0:
            raise ValueError(f"outlier_scale must exceed 1, got {self.outlier_scale}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be non-negative, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    @property
    def total_rate(self) -> float:
        """Probability an individual measurement is faulty."""
        return self.drop + self.non_positive + self.outlier

    @property
    def is_active(self) -> bool:
        return self.total_rate > 0.0

    def backoff(self, attempt: int) -> float:
        """Simulated backoff (seconds) before retry ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt


class FaultInjector:
    """Applies a :class:`FaultSpec` to ground-truth measurements.

    Draws from its own RNG stream so enabling/disabling injection does
    not perturb the controller's measurement-noise stream.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self._rng = np.random.default_rng([int(seed), 0xFA017])
        self.injected = {"drop": 0, "non_positive": 0, "outlier": 0}

    def corrupt(self, true_value: float) -> Optional[float]:
        """Return the measurement the pipeline would deliver.

        ``None`` models a dropped measurement; otherwise the returned
        value may be non-positive or wildly scaled per the spec.
        """
        draw = float(self._rng.uniform())
        spec = self.spec
        if draw < spec.drop:
            self.injected["drop"] += 1
            return None
        if draw < spec.drop + spec.non_positive:
            self.injected["non_positive"] += 1
            return -abs(true_value) if self._rng.uniform() < 0.5 else 0.0
        if draw < spec.total_rate:
            self.injected["outlier"] += 1
            scale = spec.outlier_scale
            return true_value * (scale if self._rng.uniform() < 0.5 else 1.0 / scale)
        return true_value
