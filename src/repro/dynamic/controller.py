"""Epoch-based dynamic reallocation: on-line profiling driving REF.

Implements the loop §4.4 sketches: "As the system allocates for this
utility, the user profiles software performance.  And as profiles are
accumulated for varied allocations, the user adapts its utility
function."

Every epoch the controller

1. collects each agent's currently reported elasticities (naive
   ``x^0.5 y^0.5`` until the on-line profiler has enough samples),
2. computes the REF allocation for the reports (closed form, so the
   per-epoch control cost is negligible),
3. lets each agent run one epoch at its allocation — measured on the
   analytic machine with optional noise — plus a configurable number of
   log-uniform exploration measurements, and
4. feeds the observations back into the agents' profilers.

With per-sample weight decay the controller tracks *phase changes*
(:class:`~repro.dynamic.phases.PhasedWorkload`), re-converging to each
phase's fair allocation a few epochs after every switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.mechanism import Agent, Allocation, AllocationProblem, proportional_elasticity
from ..profiling.online import OnlineProfiler
from ..sim.analytic import AnalyticMachine

__all__ = ["EpochRecord", "ControllerResult", "DynamicAllocator"]


@dataclass(frozen=True)
class EpochRecord:
    """Everything observed during one epoch."""

    epoch: int
    reported_alpha: Dict[str, np.ndarray]
    allocation: Allocation
    measured_ipc: Dict[str, float]


@dataclass(frozen=True)
class ControllerResult:
    """The full run history."""

    records: Tuple[EpochRecord, ...] = field(repr=False)

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    def reported_series(self, agent: str, resource: int = 1) -> np.ndarray:
        """One agent's reported elasticity for a resource, per epoch."""
        return np.array([record.reported_alpha[agent][resource] for record in self.records])

    def allocation_series(self, agent: str, resource: int) -> np.ndarray:
        """One agent's allocated amount of a resource, per epoch."""
        return np.array(
            [record.allocation[agent][resource] for record in self.records]
        )

    def ipc_series(self, agent: str) -> np.ndarray:
        return np.array([record.measured_ipc[agent] for record in self.records])


class DynamicAllocator:
    """Closed-loop on-line profiling + REF reallocation.

    Parameters
    ----------
    workloads:
        Agent name -> workload; either a static
        :class:`~repro.workloads.spec.WorkloadSpec` or a
        :class:`~repro.dynamic.phases.PhasedWorkload`.
    capacities:
        (bandwidth GB/s, cache KB) shared by the agents.
    decay:
        On-line profiler sample decay; < 1 makes the controller track
        phase changes (old evidence ages out).
    exploration_samples:
        Extra log-uniform measurements per agent per epoch; at least
        one is needed for the regression to stay identified.
    noise_sigma:
        Measurement noise applied to every IPC observation.
    machine:
        Performance model used as ground truth; defaults to the
        analytic machine.
    """

    #: Lower bounds keeping exploration inside the profiled regime.
    MIN_BANDWIDTH_GBPS = 0.4
    MIN_CACHE_KB = 64.0

    def __init__(
        self,
        workloads: Dict[str, object],
        capacities: Tuple[float, float],
        decay: float = 0.85,
        exploration_samples: int = 2,
        noise_sigma: float = 0.01,
        machine: Optional[AnalyticMachine] = None,
        seed: int = 0,
    ):
        if not workloads:
            raise ValueError("at least one agent is required")
        if exploration_samples < 1:
            raise ValueError("exploration_samples must be >= 1 to keep fits identified")
        if any(c <= 0 for c in capacities):
            raise ValueError(f"capacities must be positive, got {capacities}")
        self.workloads = dict(workloads)
        self.capacities = (float(capacities[0]), float(capacities[1]))
        self.exploration_samples = exploration_samples
        self.noise_sigma = noise_sigma
        self.machine = machine if machine is not None else AnalyticMachine()
        self._rng = np.random.default_rng(seed)
        self._profilers = {
            name: OnlineProfiler(n_resources=2, decay=decay) for name in self.workloads
        }

    # ------------------------------------------------------------------

    def _spec_at(self, workload, epoch: int):
        """Resolve phased workloads to the epoch's active behaviour."""
        spec_at = getattr(workload, "spec_at", None)
        return spec_at(epoch) if callable(spec_at) else workload

    def _measure(self, spec, bandwidth: float, cache_kb: float) -> float:
        ipc = self.machine.ipc(spec, cache_kb, bandwidth)
        if self.noise_sigma > 0:
            ipc *= float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        return float(ipc)

    def _explore(self, spec, profiler: OnlineProfiler) -> None:
        for _ in range(self.exploration_samples):
            bandwidth = float(
                np.exp(
                    self._rng.uniform(
                        np.log(self.MIN_BANDWIDTH_GBPS), np.log(self.capacities[0])
                    )
                )
            )
            cache_kb = float(
                np.exp(
                    self._rng.uniform(np.log(self.MIN_CACHE_KB), np.log(self.capacities[1]))
                )
            )
            profiler.observe((bandwidth, cache_kb), self._measure(spec, bandwidth, cache_kb))

    def step(self, epoch: int) -> EpochRecord:
        """Run one epoch: allocate on current reports, measure, update."""
        agents = [
            Agent(name, self._profilers[name].utility) for name in self.workloads
        ]
        problem = AllocationProblem(
            agents, self.capacities, ("membw_gbps", "cache_kb")
        )
        allocation = proportional_elasticity(problem)

        measured: Dict[str, float] = {}
        reported: Dict[str, np.ndarray] = {}
        for index, (name, workload) in enumerate(self.workloads.items()):
            spec = self._spec_at(workload, epoch)
            bandwidth, cache_kb = allocation.shares[index]
            # Clamp the observed operating point to the model's valid
            # region: transient mis-fits can starve an agent toward a
            # zero share, and log-space leverage points there would
            # poison the regression (a feedback spiral).  Real systems
            # enforce minimum allocations for the same reason.
            bandwidth = max(bandwidth, self.MIN_BANDWIDTH_GBPS)
            cache_kb = max(cache_kb, self.MIN_CACHE_KB)
            ipc = self._measure(spec, bandwidth, cache_kb)
            measured[name] = ipc
            profiler = self._profilers[name]
            reported[name] = profiler.report_elasticities().copy()
            profiler.observe((bandwidth, cache_kb), ipc)
            self._explore(spec, profiler)
        return EpochRecord(
            epoch=epoch,
            reported_alpha=reported,
            allocation=allocation,
            measured_ipc=measured,
        )

    def run(self, n_epochs: int) -> ControllerResult:
        """Run the closed loop for ``n_epochs``; returns the history."""
        if n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        records = [self.step(epoch) for epoch in range(n_epochs)]
        return ControllerResult(records=tuple(records))
