"""Epoch-based dynamic reallocation: a fault-tolerant §4.4 service.

Implements the loop §4.4 sketches: "As the system allocates for this
utility, the user profiles software performance.  And as profiles are
accumulated for varied allocations, the user adapts its utility
function."

Every epoch the controller

1. collects each agent's currently reported elasticities (naive
   ``x^0.5 y^0.5`` until the on-line profiler has enough samples),
2. computes the REF allocation for the reports (closed form, so the
   per-epoch control cost is negligible), falling back to an equal
   split if the mechanism cannot produce a valid allocation,
3. projects the allocation onto the floor-constrained simplex — the
   *enforced* allocation is always capacity-feasible and keeps every
   agent inside the profiled operating regime,
4. lets each agent run one epoch at its enforced bundle — measured on
   the analytic machine with optional noise and optional injected
   measurement faults — plus a configurable number of log-uniform
   exploration measurements, retrying failed measurements with bounded
   backoff and skipping (and counting) samples whose retries exhaust,
5. feeds the observations back into the agents' profilers, which
   themselves reject non-positive samples and ill-conditioned fits.

Between epochs agents may arrive (:meth:`DynamicAllocator.add_agent`)
or depart (:meth:`DynamicAllocator.remove_agent`) — directly or through
a :class:`~repro.dynamic.phases.ChurnSchedule` passed to ``run`` — and
the allocation problem is rebuilt each step for whoever is present.

With per-sample weight decay the controller tracks *phase changes*
(:class:`~repro.dynamic.phases.PhasedWorkload`), re-converging to each
phase's fair allocation a few epochs after every switch.  Everything
that goes wrong along the way is recorded as structured
:class:`EpochEvent` entries and aggregated into counters on
:class:`ControllerResult`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.fitting import fit_cobb_douglas_batch
from ..core.mechanism import (
    Agent,
    Allocation,
    AllocationProblem,
    apply_allocation_floors,
)
from ..core.registry import (
    SolveContext,
    controller_mechanism_names,
    create_mechanism,
    mechanism_names,
)
from ..core.utility import CobbDouglasUtility
from ..learning import DemandLearner
from ..obs import MetricsRegistry, Tracer, timed
from ..profiling.online import OnlineProfiler
from ..sim.analytic import AnalyticMachine
from .faults import FaultInjector, FaultSpec
from .phases import ChurnSchedule

__all__ = [
    "EpochEvent",
    "EpochRecord",
    "ControllerResult",
    "DynamicAllocator",
]


@dataclass(frozen=True)
class EpochEvent:
    """One structured entry in the service's per-epoch event log."""

    epoch: int
    kind: str
    agent: Optional[str] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        who = f" agent={self.agent}" if self.agent else ""
        what = f" ({self.detail})" if self.detail else ""
        return f"[epoch {self.epoch}] {self.kind}{who}{what}"


@dataclass(frozen=True)
class EpochRecord:
    """Everything observed during one epoch.

    ``allocation`` is the raw mechanism output for the epoch's reports;
    ``enforced`` is the floor-projected allocation the agents actually
    ran at — always feasible, every share at or above the floors.
    ``measured_ipc`` holds only the agents whose measurement succeeded
    this epoch (skipped measurements are recorded as events).
    """

    epoch: int
    reported_alpha: Dict[str, np.ndarray]
    allocation: Allocation
    measured_ipc: Dict[str, float]
    enforced: Optional[Allocation] = None
    agents: Tuple[str, ...] = ()
    events: Tuple[EpochEvent, ...] = ()
    fit_condition: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ControllerResult:
    """The full run history plus the service's health telemetry."""

    records: Tuple[EpochRecord, ...] = field(repr=False)

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    @property
    def events(self) -> Tuple[EpochEvent, ...]:
        """The structured event log, flattened across epochs."""
        return tuple(event for record in self.records for event in record.events)

    @property
    def counters(self) -> Dict[str, int]:
        """Event counts by kind (retries, rejections, fallbacks, churn...)."""
        return dict(Counter(event.kind for event in self.events))

    @property
    def agent_names(self) -> Tuple[str, ...]:
        """Every agent that participated in at least one epoch."""
        seen: Dict[str, None] = {}
        for record in self.records:
            for name in record.agents or record.reported_alpha:
                seen.setdefault(name, None)
        return tuple(seen)

    def all_feasible(self, tol: float = 1e-9) -> bool:
        """True when every epoch's enforced allocation is feasible."""
        return all(
            (record.enforced or record.allocation).is_feasible(tol)
            for record in self.records
        )

    def reported_series(self, agent: str, resource: int = 1) -> np.ndarray:
        """One agent's reported elasticity for a resource, per epoch.

        Epochs the agent was absent from are NaN-filled.
        """
        return np.array(
            [
                record.reported_alpha[agent][resource]
                if agent in record.reported_alpha
                else np.nan
                for record in self.records
            ]
        )

    def allocation_series(self, agent: str, resource: int) -> np.ndarray:
        """One agent's allocated amount of a resource, per epoch (NaN when absent)."""
        return self._share_series(agent, resource, enforced=False)

    def enforced_series(self, agent: str, resource: int) -> np.ndarray:
        """One agent's *enforced* amount of a resource, per epoch (NaN when absent)."""
        return self._share_series(agent, resource, enforced=True)

    def _share_series(self, agent: str, resource: int, enforced: bool) -> np.ndarray:
        values = []
        for record in self.records:
            allocation = (record.enforced or record.allocation) if enforced else record.allocation
            try:
                values.append(allocation[agent][resource])
            except KeyError:
                values.append(np.nan)
        return np.array(values)

    def ipc_series(self, agent: str) -> np.ndarray:
        """Measured IPC per epoch; NaN when absent or measurement skipped."""
        return np.array(
            [record.measured_ipc.get(agent, np.nan) for record in self.records]
        )

    def condition_series(self, agent: str) -> np.ndarray:
        """The agent's most recent fit condition number, per epoch."""
        return np.array(
            [record.fit_condition.get(agent, np.nan) for record in self.records]
        )

    def summary(self) -> str:
        """Human-readable service health report."""
        lines = [
            f"epochs run:        {self.n_epochs}",
            f"agents seen:       {', '.join(self.agent_names)}",
            f"all feasible:      {self.all_feasible()}",
        ]
        counters = self.counters
        if counters:
            lines.append("event counters:")
            for kind in sorted(counters):
                lines.append(f"  {kind:<28} {counters[kind]}")
        else:
            lines.append("event counters:    (none — a clean run)")
        return "\n".join(lines)


class DynamicAllocator:
    """Closed-loop on-line profiling + REF reallocation, hardened.

    Parameters
    ----------
    workloads:
        Agent name -> workload; either a static
        :class:`~repro.workloads.spec.WorkloadSpec` or a
        :class:`~repro.dynamic.phases.PhasedWorkload`.
    capacities:
        (bandwidth GB/s, cache KB) shared by the agents.
    decay:
        On-line profiler sample decay; < 1 makes the controller track
        phase changes (old evidence ages out) and bounds each
        profiler's sample history.
    exploration_samples:
        Extra log-uniform measurements per agent per epoch; at least
        one is needed for the regression to stay identified.
    noise_sigma:
        Measurement noise applied to every IPC observation.
    machine:
        Performance model used as ground truth; defaults to the
        analytic machine.
    faults:
        Optional :class:`~repro.dynamic.faults.FaultSpec` describing an
        imperfect measurement pipeline.  Detectable faults (drops,
        non-positive readings) are retried with bounded backoff and
        skipped when retries exhaust; outlier faults are left to the
        profilers' outlier gate.
    outlier_log_threshold:
        Passed to each agent's profiler; samples whose log-residual
        against the current fit exceeds it are rejected (a sustained
        run is re-admitted as a phase change).  Defaults to on (2.5)
        when fault injection is active, off otherwise.
    max_condition:
        Fit condition-number bound; ill-conditioned re-fits are
        discarded and the last good utility kept.
    metrics:
        :class:`~repro.obs.MetricsRegistry` receiving the controller's
        telemetry (epoch latency histogram, per-kind event counters,
        per-agent profiler counters).  ``None`` (default) creates a
        private registry, exposed as ``allocator.metrics``; its event
        counters therefore match ``ControllerResult.counters`` exactly.
    mechanism:
        Which allocation mechanism each epoch runs, resolved by name
        through the :mod:`repro.core.registry` (any registered
        controller-capable mechanism; ``MECHANISM_NAMES`` lists them).
        ``"ref"`` (the default, Eq. 13), ``"max-welfare-unfair"`` and
        ``"credit"`` are closed-form — the O(N·R) fast path, counted
        under ``repro_solver_fast_path_total``.  ``"max-welfare-fair"``
        and ``"equal-slowdown"`` run the SLSQP log-space program,
        warm-started from the previous epoch's enforced shares whenever
        the agent set is unchanged (hits/misses counted under
        ``repro_solver_warm_starts_total``).  Stateful mechanisms
        (``"credit"``) observe every enforced allocation and carry
        per-agent state across epochs; snapshot/restore it through
        :meth:`mechanism_state` / :meth:`load_mechanism_state`.
    batch_refit:
        When True (default) the agents' profilers defer re-fitting and
        the controller refits *every* dirty profiler in one
        :func:`~repro.core.fitting.fit_cobb_douglas_batch` call per
        epoch — one stacked solve per tick regardless of agent count.
        False restores the historical re-fit-per-observation behaviour.
        Fits are pure functions of each profiler's sample history, so
        on a clean run both modes learn identical utilities.
    learn_demands:
        Enable the :mod:`repro.learning` explore/exploit layer: agents
        may be added with **no workload** (profile-free), the mechanism
        sees confidence-weighted prior/fit elasticity blends, enforced
        shares get bounded ε-greedy exploration perturbations (tagged
        so the profilers' outlier gate cannot reject them), and
        demand-saturated agents are capped so surplus flows to
        unsaturated ones.  Off (default), behaviour is bit-identical to
        earlier releases.
    prior:
        Prior policy for learning agents: ``"equal"`` (the §4.4 naive
        report) or ``"centroid"`` (workload-class centroids learned
        from past confident fits).  Only meaningful with
        ``learn_demands=True``.
    """

    #: Lower bounds keeping every agent inside the profiled regime.
    MIN_BANDWIDTH_GBPS = 0.4
    MIN_CACHE_KB = 64.0

    #: Mechanisms the controller can run (registry-derived: every
    #: controller-capable registration is accepted automatically).
    MECHANISM_NAMES = controller_mechanism_names()
    #: The closed-form subset — no SLSQP process starts on this path.
    FAST_PATH_MECHANISMS = mechanism_names(controller=True, fast_path=True)

    def __init__(
        self,
        workloads: Dict[str, object],
        capacities: Tuple[float, float],
        decay: float = 0.85,
        exploration_samples: int = 2,
        noise_sigma: float = 0.01,
        machine: Optional[AnalyticMachine] = None,
        seed: int = 0,
        faults: Optional[FaultSpec] = None,
        outlier_log_threshold: Optional[float] = None,
        max_condition: Optional[float] = 1e8,
        metrics: Optional[MetricsRegistry] = None,
        mechanism: str = "ref",
        batch_refit: bool = True,
        learn_demands: bool = False,
        prior: str = "equal",
    ):
        if not workloads:
            raise ValueError("at least one agent is required")
        if exploration_samples < 1:
            raise ValueError("exploration_samples must be >= 1 to keep fits identified")
        if any(c <= 0 for c in capacities):
            raise ValueError(f"capacities must be positive, got {capacities}")
        if mechanism not in self.MECHANISM_NAMES:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; expected one of "
                f"{sorted(self.MECHANISM_NAMES)}"
            )
        self.workloads = dict(workloads)
        self.capacities = (float(capacities[0]), float(capacities[1]))
        self.exploration_samples = exploration_samples
        self.noise_sigma = noise_sigma
        self.machine = machine if machine is not None else AnalyticMachine()
        self.faults = faults
        if outlier_log_threshold is None and faults is not None and faults.is_active:
            outlier_log_threshold = 2.5
        self._outlier_log_threshold = outlier_log_threshold
        self._max_condition = max_condition
        self._decay = decay
        self._rng = np.random.default_rng(seed)
        self._injector = (
            FaultInjector(faults, seed=seed) if faults is not None and faults.is_active else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(metrics=self.metrics)
        self.mechanism = mechanism
        self._mechanism_impl = create_mechanism(mechanism)
        self._fallback_impl = create_mechanism("equal-split-fallback")
        self.batch_refit = batch_refit
        self.learn_demands = bool(learn_demands)
        self.prior_policy = prior
        self.learner: Optional[DemandLearner] = (
            DemandLearner(prior=prior, metrics=self.metrics, seed=seed)
            if self.learn_demands
            else None
        )
        self._last_enforced_shares: Optional[np.ndarray] = None
        self._last_agent_order: Tuple[str, ...] = ()
        if not self.learn_demands and any(w is None for w in self.workloads.values()):
            raise ValueError("profile-free agents require learn_demands=True")
        self._profilers = {name: self._new_profiler(name) for name in self.workloads}
        if self.learner is not None:
            for name, workload in self.workloads.items():
                self.learner.register(name, cls=self._class_hint(workload))
        self._next_epoch = 0

    @staticmethod
    def _class_hint(workload: object) -> Optional[str]:
        """Workload-class hint ("C"/"M") feeding centroid priors."""
        return getattr(workload, "expected_group", None)

    # ------------------------------------------------------------------
    # Agent churn

    def add_agent(
        self,
        name: str,
        workload: object = None,
        workload_class: Optional[str] = None,
    ) -> None:
        """Admit a new agent; it participates from the next stepped epoch.

        The arrival starts from the naive prior and profiles online like
        everyone else; the allocation problem is rebuilt each epoch, so
        no restart is needed.  With ``learn_demands=True`` the workload
        may be ``None`` — a *profile-free* agent whose demands are
        learned entirely from externally observed samples
        (:meth:`observe_sample`); ``workload_class`` optionally hints
        its class ("C"/"M") for centroid priors.
        """
        if name in self.workloads:
            raise ValueError(f"agent {name!r} already exists")
        if workload is None and self.learner is None:
            raise ValueError(
                f"agent {name!r} has no workload; profile-free agents "
                f"require learn_demands=True"
            )
        self.workloads[name] = workload
        self._profilers[name] = self._new_profiler(name)
        if self.learner is not None:
            self.learner.register(
                name, cls=workload_class or self._class_hint(workload)
            )

    def remove_agent(self, name: str) -> None:
        """Retire an agent; capacity is re-divided from the next epoch."""
        if name not in self.workloads:
            raise ValueError(f"no agent named {name!r}")
        if len(self.workloads) == 1:
            raise ValueError("cannot remove the last agent")
        del self.workloads[name]
        del self._profilers[name]
        if self.learner is not None:
            self.learner.forget(name)
        self._mechanism_impl.forget_agent(name)

    # ------------------------------------------------------------------
    # Mechanism state (checkpoint/restore for stateful mechanisms)

    def mechanism_state(self) -> Dict:
        """JSON-serializable snapshot of the mechanism's persistent state."""
        return self._mechanism_impl.state_dict()

    def load_mechanism_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`mechanism_state`."""
        self._mechanism_impl.load_state_dict(state)

    @property
    def agent_names(self) -> Tuple[str, ...]:
        return tuple(self.workloads)

    @property
    def resource_names(self) -> Tuple[str, str]:
        """Resource names in capacity order (matches Eq. 13 problems)."""
        return ("membw_gbps", "cache_kb")

    # ------------------------------------------------------------------
    # Hierarchical (cell-local) capacity

    def set_capacities(self, capacities: Tuple[float, float]) -> None:
        """Replace the capacity vector between epochs (sharding grants).

        A shard coordinator re-slices the global capacity across cells
        each grant round; the cell's controller must accept the new
        vector mid-run.  Warm-start shares from the previous capacity
        regime are discarded — they may be infeasible under a shrunk
        grant, and a cold SLSQP start is cheaper than a bad one.
        """
        values = tuple(float(c) for c in capacities)
        if len(values) != 2 or any(
            not np.isfinite(c) or c <= 0 for c in values
        ):
            raise ValueError(
                f"capacities must be two positive finite numbers, got {capacities}"
            )
        if values != self.capacities:
            self.capacities = values
            self._last_enforced_shares = None

    def aggregate_elasticities(self) -> np.ndarray:
        """Per-resource sum of re-scaled agent elasticities, shape (R,).

        This is the quantity the Eq. 13 closed form needs from each cell
        to split capacity hierarchically: the flat share of agent *i* in
        resource *r* is ``a_ir / sum_j a_jr * C_r``, so a cell's fair
        slice of ``C_r`` is its agents' partial sum of the denominator.
        """
        total = np.zeros(2, dtype=float)
        for name in self.workloads:
            total += self._report(name)
        return total

    def _report(self, name: str) -> np.ndarray:
        """The elasticities agent ``name`` currently reports.

        The learner's confidence-weighted blend in learning mode, the
        profiler's own (naive-until-fitted) report otherwise — so the
        shard coordinator aggregates learned elasticities exactly like
        fitted ones.
        """
        if self.learner is not None:
            return self.learner.report(name, self._profilers[name])
        return self._profilers[name].report_elasticities()

    def _new_profiler(self, name: str) -> OnlineProfiler:
        return OnlineProfiler(
            n_resources=2,
            decay=self._decay,
            outlier_log_threshold=self._outlier_log_threshold,
            max_condition=self._max_condition,
            metrics=self.metrics,
            metric_labels={"agent": name},
            auto_refit=not self.batch_refit,
        )

    def observe_sample(
        self,
        agent: str,
        bundle: Tuple[float, float],
        value: float,
        exploration: bool = False,
    ) -> bool:
        """Feed one *externally measured* IPC sample into an agent's profiler.

        This is the ingestion path used by the allocation server
        (:mod:`repro.serve`): instead of the controller measuring on its
        internal machine, independent clients run at their enforced
        bundles and report what they observed.  The sample goes through
        the same hardened :class:`~repro.profiling.online.OnlineProfiler`
        pipeline as internal measurements — non-positive/non-finite
        readings and fit-relative outliers are rejected and counted
        rather than crashing the loop.

        Returns ``True`` when the sample was accepted into the agent's
        history, ``False`` when the profiler rejected it.  Raises
        ``ValueError`` for an unknown agent (a caller bug, not a
        measurement fault).  ``exploration=True`` marks a sample the
        client took at a deliberately perturbed operating point; it
        bypasses the fit-relative outlier gate (see
        :meth:`~repro.profiling.online.OnlineProfiler.observe`).
        """
        profiler = self._profilers.get(agent)
        if profiler is None:
            raise ValueError(f"no agent named {agent!r}")
        before = profiler.counters
        profiler.observe(
            tuple(float(v) for v in bundle), float(value), exploration=exploration
        )
        after = profiler.counters
        return (
            after["rejected_non_positive"] == before["rejected_non_positive"]
            and after["rejected_outliers"] == before["rejected_outliers"]
        )

    def _record_events(self, events) -> None:
        """Mirror structured events into per-kind counters."""
        for event in events:
            self.metrics.counter(
                "repro_dynamic_events_total",
                help="Structured controller events by kind.",
                kind=event.kind,
            ).inc()

    # ------------------------------------------------------------------
    # Measurement (with fault injection and bounded retry)

    def _spec_at(self, workload, epoch: int):
        """Resolve phased workloads to the epoch's active behaviour."""
        spec_at = getattr(workload, "spec_at", None)
        return spec_at(epoch) if callable(spec_at) else workload

    def _measure(self, spec, bandwidth: float, cache_kb: float) -> Optional[float]:
        """One measurement as delivered by the (possibly faulty) pipeline."""
        ipc = self.machine.ipc(spec, cache_kb, bandwidth)
        if self.noise_sigma > 0:
            ipc *= float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        ipc = float(ipc)
        if self._injector is not None:
            return self._injector.corrupt(ipc)
        return ipc

    def _measure_with_retry(
        self,
        spec,
        bandwidth: float,
        cache_kb: float,
        epoch: int,
        agent: str,
        events: List[EpochEvent],
    ) -> Optional[float]:
        """Measure, retrying detectable faults with bounded backoff.

        Returns ``None`` — and logs a ``measurement_skipped`` event —
        when the retry budget is exhausted; the caller then proceeds
        without this sample instead of crashing the loop.
        """
        max_retries = self.faults.max_retries if self.faults is not None else 0
        attempt = 0
        while True:
            value = self._measure(spec, bandwidth, cache_kb)
            if value is not None and np.isfinite(value) and value > 0:
                return value
            if attempt >= max_retries:
                events.append(
                    EpochEvent(
                        epoch,
                        "measurement_skipped",
                        agent,
                        f"retries exhausted after {attempt} attempt(s)",
                    )
                )
                return None
            backoff = self.faults.backoff(attempt)
            events.append(
                EpochEvent(
                    epoch,
                    "measurement_retry",
                    agent,
                    f"attempt {attempt + 1}, backoff {backoff:.2f}s",
                )
            )
            attempt += 1

    def _explore(
        self,
        spec,
        profiler: OnlineProfiler,
        epoch: int,
        agent: str,
        events: List[EpochEvent],
    ) -> None:
        for _ in range(self.exploration_samples):
            bandwidth = float(
                np.exp(
                    self._rng.uniform(
                        np.log(self.MIN_BANDWIDTH_GBPS), np.log(self.capacities[0])
                    )
                )
            )
            cache_kb = float(
                np.exp(
                    self._rng.uniform(np.log(self.MIN_CACHE_KB), np.log(self.capacities[1]))
                )
            )
            value = self._measure_with_retry(
                spec, bandwidth, cache_kb, epoch, agent, events
            )
            if value is not None:
                # In learning mode these deliberate off-policy probes
                # are exploration-tagged so the outlier gate cannot
                # reject a phase-changed agent's evidence wholesale.
                profiler.observe(
                    (bandwidth, cache_kb), value, exploration=self.learner is not None
                )

    # ------------------------------------------------------------------
    # The epoch loop

    def _allocate(self, epoch: int, events: List[EpochEvent]) -> Allocation:
        """Run the configured mechanism; equal split if it fails.

        The mechanism is a registry strategy object: closed-form ones
        (the default) are O(N·R) — no SLSQP process ever starts on the
        fast path — while warm-startable ones receive the previous
        epoch's enforced shares whenever the agent set is unchanged,
        collapsing the multi-start sweep to a single solver run on
        stable epochs.  Telemetry counting lives in
        :meth:`repro.core.registry.Mechanism.solve`.
        """
        names = tuple(self.workloads)
        if self.learner is not None:
            # The mechanism sees the confidence-weighted prior/fit
            # blend; it is rescaled and strictly positive by
            # construction, so it is a valid Eq. 12 report.
            agents = [
                Agent(name, CobbDouglasUtility(self._report(name))) for name in names
            ]
        else:
            agents = [Agent(name, self._profilers[name].utility) for name in names]
        problem = AllocationProblem(agents, self.capacities, ("membw_gbps", "cache_kb"))
        warm = None
        if (
            self._mechanism_impl.warm_startable
            and self._last_enforced_shares is not None
            and self._last_agent_order == names
            and self._last_enforced_shares.shape == (problem.n_agents, problem.n_resources)
        ):
            warm = self._last_enforced_shares
        context = SolveContext(epoch=epoch, warm_shares=warm, metrics=self.metrics)
        try:
            return self._mechanism_impl.solve(problem, context)
        except (ValueError, FloatingPointError) as error:
            events.append(
                EpochEvent(epoch, "allocation_fallback", detail=str(error)[:80])
            )
            return self._fallback_impl.solve(problem, context)

    def _refit_pending(self) -> None:
        """Batched deferred re-fit: one stacked solve for every dirty profiler.

        With ``batch_refit`` the profilers only mark themselves dirty on
        new samples; this driver gathers everyone needing a re-fit and
        solves them in a single
        :func:`~repro.core.fitting.fit_cobb_douglas_batch` call.  Each
        returned fit then passes through the profiler's own acceptance
        gate (:meth:`~repro.profiling.online.OnlineProfiler.apply_fit`),
        so condition-number rejection and fallback counting behave as in
        the per-observe path.  If the stacked solve itself fails, each
        profiler falls back to its individual re-fit — one bad agent
        must not starve the others of updates.
        """
        if not self.batch_refit:
            return
        pending = [
            profiler for profiler in self._profilers.values() if profiler.needs_refit
        ]
        if not pending:
            return
        inputs = [profiler.fit_inputs() for profiler in pending]
        with self.tracer.span("batch_refit", agents=len(pending)):
            try:
                fits = fit_cobb_douglas_batch(
                    [allocations for allocations, _, _ in inputs],
                    [performance for _, performance, _ in inputs],
                    [weights for _, _, weights in inputs],
                )
            except (ValueError, np.linalg.LinAlgError):
                self.metrics.counter(
                    "repro_solver_batch_fit_fallbacks_total",
                    help="Stacked re-fit calls that fell back to per-agent fits.",
                ).inc()
                for profiler in pending:
                    profiler.refit_now()
                return
            for profiler, fit in zip(pending, fits):
                profiler.apply_fit(fit)
        self.metrics.counter(
            "repro_solver_batch_fits_total",
            help="Stacked multi-agent re-fit calls.",
        ).inc()
        self.metrics.histogram(
            "repro_solver_batch_fit_agents",
            help="Agents re-fitted per stacked call.",
            buckets=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0),
        ).observe(len(pending))

    def step(self, epoch: int, measure: bool = True) -> EpochRecord:
        """Run one epoch: allocate on current reports, enforce floors,

        measure under fault injection, and update the profilers.

        With ``measure=False`` the controller only allocates and
        enforces — no internal measurement or exploration happens.  This
        is the *service* epoch used by :mod:`repro.serve`, where the
        measurements arrive between ticks through
        :meth:`observe_sample` instead of from the built-in machine.
        """
        with timed(self.metrics, "repro_dynamic_epoch_latency_seconds"):
            with self.tracer.span("epoch", epoch=epoch):
                record = self._step(epoch, measure=measure)
        self.metrics.counter(
            "repro_dynamic_epochs_total", help="Epochs stepped by the controller."
        ).inc()
        self.metrics.gauge(
            "repro_dynamic_agents", help="Agents present in the last stepped epoch."
        ).set(len(record.agents))
        self._record_events(record.events)
        return record

    def _step(self, epoch: int, measure: bool = True) -> EpochRecord:
        events: List[EpochEvent] = []
        names = list(self.workloads)
        # Pick up samples fed externally (observe_sample) since the last
        # tick: one stacked re-fit covers every dirty profiler.
        self._refit_pending()
        with self.tracer.span("allocate"):
            allocation = self._allocate(epoch, events)
        floors = (self.MIN_BANDWIDTH_GBPS, self.MIN_CACHE_KB)
        # Feasible floor enforcement: transient mis-fits can starve an
        # agent toward a zero share, and log-space leverage points there
        # would poison the regression (a feedback spiral).  Projection
        # takes the excess from richer agents, so — unlike a per-agent
        # clamp — the enforced bundles never exceed capacity.
        with self.tracer.span("enforce"):
            enforced = apply_allocation_floors(allocation, floors)
        if not np.allclose(enforced.shares, allocation.shares, rtol=1e-9, atol=1e-12):
            lifted = int(np.sum(np.any(allocation.shares < enforced.shares - 1e-12, axis=1)))
            events.append(
                EpochEvent(
                    epoch,
                    "floor_projection",
                    detail=f"{lifted} agent(s) lifted to the floor",
                )
            )

        explored: Tuple[str, ...] = ()
        if self.learner is not None:
            # Demand caps first (saturated agents release surplus with
            # exact column sums), then bounded ε-greedy exploration
            # perturbations (column sums and floors preserved) — the
            # enforced allocation stays feasible through both.
            shares, capped = self.learner.apply_caps(
                enforced.shares, names, self._profilers, floors, self.capacities
            )
            if capped:
                events.append(
                    EpochEvent(
                        epoch, "demand_capped", detail=f"{capped} entr(ies) clipped"
                    )
                )
            shares, explored = self.learner.perturb(shares, names, floors)
            for name in explored:
                events.append(EpochEvent(epoch, "exploration_perturbed", name))
            enforced = Allocation(enforced.problem, shares, enforced.mechanism)

        self._last_enforced_shares = enforced.shares.copy()
        self._last_agent_order = tuple(names)

        if self._mechanism_impl.stateful:
            # Stateful mechanisms (credit) learn from what agents
            # actually ran at — the floor-projected allocation, whose
            # columns partition capacity exactly.
            for kind, agent, detail in self._mechanism_impl.observe(
                enforced, epoch=epoch, metrics=self.metrics
            ):
                events.append(EpochEvent(epoch, kind, agent, detail))

        measured: Dict[str, float] = {}
        reported: Dict[str, np.ndarray] = {}
        before_counters = {name: self._profilers[name].counters for name in names}
        with self.tracer.span("measure"):
            for index, name in enumerate(names):
                profiler = self._profilers[name]
                reported[name] = self._report(name).copy()
                spec = (
                    self._spec_at(self.workloads[name], epoch)
                    if self.workloads[name] is not None
                    else None
                )
                if measure and spec is not None:
                    bandwidth, cache_kb = enforced.shares[index]
                    value = self._measure_with_retry(
                        spec, bandwidth, cache_kb, epoch, name, events
                    )
                    if value is not None:
                        measured[name] = value
                        profiler.observe(
                            (bandwidth, cache_kb), value, exploration=name in explored
                        )
                    self._explore(spec, profiler, epoch, name, events)
        if measure:
            # Deferred mode: one stacked re-fit covers this epoch's
            # measurements for every agent (a no-op with auto_refit).
            self._refit_pending()
            for name in names:
                before = before_counters[name]
                after = self._profilers[name].counters
                for counter_key, kind in (
                    ("rejected_non_positive", "sample_rejected_non_positive"),
                    ("rejected_outliers", "sample_rejected_outlier"),
                    ("fit_fallbacks", "fit_fallback"),
                ):
                    delta = after[counter_key] - before[counter_key]
                    if delta > 0:
                        events.append(
                            EpochEvent(epoch, kind, name, f"{delta} this epoch")
                        )
        if self.learner is not None:
            for name in self.learner.note_epoch(epoch, names, self._profilers):
                events.append(
                    EpochEvent(epoch, "report_converged", name, f"epoch {epoch}")
                )
        conditions = {
            name: self._profilers[name].last_condition_number for name in names
        }
        return EpochRecord(
            epoch=epoch,
            reported_alpha=reported,
            allocation=allocation,
            measured_ipc=measured,
            enforced=enforced,
            agents=tuple(names),
            events=tuple(events),
            fit_condition=conditions,
        )

    def _apply_churn(
        self, schedule: ChurnSchedule, epoch: int, events: List[EpochEvent]
    ) -> None:
        for event in schedule.at(epoch):
            if event.action == "add":
                self.add_agent(event.agent, event.workload)
                events.append(EpochEvent(epoch, "agent_added", event.agent))
            else:
                self.remove_agent(event.agent)
                events.append(EpochEvent(epoch, "agent_removed", event.agent))

    def run(
        self, n_epochs: int, churn: Optional[ChurnSchedule] = None
    ) -> ControllerResult:
        """Run the closed loop for ``n_epochs``; returns the history.

        Repeated calls continue from where the previous run stopped, so
        a service can be driven in bursts.  ``churn`` events scheduled
        at epoch ``e`` are applied just before epoch ``e`` is stepped
        and logged into that epoch's record.
        """
        if n_epochs <= 0:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        records = []
        start = self._next_epoch
        for epoch in range(start, start + n_epochs):
            churn_events: List[EpochEvent] = []
            if churn is not None:
                self._apply_churn(churn, epoch, churn_events)
                self._record_events(churn_events)
            record = self.step(epoch)
            if churn_events:
                record = EpochRecord(
                    epoch=record.epoch,
                    reported_alpha=record.reported_alpha,
                    allocation=record.allocation,
                    measured_ipc=record.measured_ipc,
                    enforced=record.enforced,
                    agents=record.agents,
                    events=tuple(churn_events) + record.events,
                    fit_condition=record.fit_condition,
                )
            records.append(record)
            self._next_epoch = epoch + 1
        return ControllerResult(records=tuple(records))
