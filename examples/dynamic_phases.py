"""Dynamic reallocation: tracking software phases on-line (§4.4).

The on-line profiling story from the paper, run as a closed-loop
controller: a phased application alternates between a cache-loving
phase (freqmine-like) and a bandwidth-loving phase (dedup-like) while
co-located with a steady bandwidth-bound neighbour (canneal).  Every
epoch the controller re-fits utilities from recent observations
(decayed history) and re-runs REF.

Watch the reported cache elasticity — and the cache allocation — follow
the phase changes with a lag of a few epochs.

Run:  python examples/dynamic_phases.py
"""

from repro.dynamic import DynamicAllocator, Phase, PhasedWorkload
from repro.workloads import get_workload

CAPACITIES = (12.8, 2048.0)
PHASE_LENGTH = 12
N_EPOCHS = 3 * PHASE_LENGTH


def main() -> None:
    phased = PhasedWorkload(
        "phasey",
        [
            Phase(get_workload("freqmine"), PHASE_LENGTH),  # cache-loving phase
            Phase(get_workload("dedup"), PHASE_LENGTH),     # bandwidth-loving phase
        ],
    )
    allocator = DynamicAllocator(
        workloads={"phasey": phased, "canneal": get_workload("canneal")},
        capacities=CAPACITIES,
        decay=0.75,          # age out stale-phase evidence
        seed=1,
    )
    result = allocator.run(N_EPOCHS)

    boundaries = set(phased.phase_boundaries(N_EPOCHS))
    print(
        f"{'epoch':>5} {'phase':<10} {'reported a_cache':>17} "
        f"{'cache alloc KB':>15} {'IPC':>7}"
    )
    for record in result.records:
        epoch = record.epoch
        phase = phased.spec_at(epoch).name
        marker = "  <- phase change" if epoch in boundaries else ""
        print(
            f"{epoch:>5} {phase:<10} {record.reported_alpha['phasey'][1]:>17.3f} "
            f"{record.allocation['phasey'][1]:>15.1f} "
            f"{record.measured_ipc['phasey']:>7.3f}{marker}"
        )

    cache_series = result.reported_series("phasey", resource=1)
    freq_tail = cache_series[PHASE_LENGTH - 4 : PHASE_LENGTH]
    dedup_tail = cache_series[2 * PHASE_LENGTH - 4 : 2 * PHASE_LENGTH]
    print(
        f"\nreported cache elasticity, late freqmine phase: {freq_tail.mean():.2f} "
        f"vs late dedup phase: {dedup_tail.mean():.2f}"
    )
    print("The controller reallocates cache toward the phase that can use it.")


if __name__ == "__main__":
    main()
