"""Future-work extension: fair division of cores, bandwidth and cache (§7).

The paper's conclusion promises that "the mechanism can support
additional resources, such as the number of processor cores."  The REF
mechanism is already R-resource; this example supplies the missing
performance model — Amdahl's-law core scaling composed with the
cache/bandwidth machine — and runs the full pipeline on three
resources:

1. wrap three benchmarks with their exploitable parallel fractions;
2. sweep the (cores x bandwidth x cache) grid and fit three-resource
   Cobb-Douglas utilities;
3. allocate a 12-core, 36 GB/s, 36 MB system with REF and verify
   SI/EF/PE — the guarantees carry over unchanged.

Run:  python examples/three_resource_extension.py
"""

import numpy as np

from repro import (
    Agent,
    AllocationProblem,
    check_fairness,
    fit_cobb_douglas,
    proportional_elasticity,
)
from repro.sim import ParallelWorkload, ThreeResourceMachine
from repro.workloads import get_workload

#: (benchmark, Amdahl parallel fraction): an embarrassingly parallel
#: server app, a mining workload with serial sections, and a streaming
#: pipeline limited by its sequential stages.
TENANTS = [
    ("ferret", 0.95),
    ("freqmine", 0.60),
    ("dedup", 0.85),
]

CAPACITIES = (12.0, 36.0, 36.0 * 1024)  # cores, GB/s, KB
RESOURCES = ("cores", "membw_gbps", "cache_kb")


def main() -> None:
    machine = ThreeResourceMachine()

    agents = []
    print("Three-resource Cobb-Douglas fits (grid: 4 cores x 5 bw x 5 cache):")
    for name, fraction in TENANTS:
        workload = ParallelWorkload(get_workload(name), fraction)
        points, ipc = machine.sweep(workload)
        fit = fit_cobb_douglas(points, ipc)
        alpha = fit.rescaled_elasticities
        print(
            f"  {name:<10} f={fraction:.2f}  "
            f"a_cores={alpha[0]:.3f} a_mem={alpha[1]:.3f} a_cache={alpha[2]:.3f} "
            f"(R^2 = {fit.r_squared:.3f})"
        )
        agents.append(Agent(name, fit.utility))

    problem = AllocationProblem(agents, CAPACITIES, RESOURCES)
    allocation = proportional_elasticity(problem)
    print("\nREF allocation over three resources:")
    print(allocation.summary())

    report = check_fairness(allocation)
    print("\nFairness properties (unchanged by the third resource):")
    print(report.summary())
    assert report.is_fair

    # The parallel tenant values cores most; the streaming tenant
    # bandwidth; the miner keeps its serial turbo + cache.
    shares = allocation.fractions()
    dominant = [RESOURCES[int(np.argmax(row))] for row in shares]
    for (name, _), resource in zip(TENANTS, dominant):
        print(f"{name}: largest share is of {resource}")


if __name__ == "__main__":
    main()
