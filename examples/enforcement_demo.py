"""Enforcing REF shares with real schedulers (§4.4).

REF computes *what* each agent should get; hardware and OS substrates
enforce it.  "After the procedure determines proportional shares for
each user, we can enforce those shares with existing approaches, such as
weighted fair queuing or lottery scheduling."

This example takes the all-memory-bound WD3 mix (Table 2), computes the
REF allocation, then:

* partitions the shared L2's 8 ways according to the cache shares and
  reports the quantization error;
* drives a weighted-fair-queueing link with each agent's bandwidth
  weight under full backlog and shows achieved ~= allocated shares;
* runs a lottery scheduler with the same weights as tickets and shows
  statistical convergence.

Run:  python examples/enforcement_demo.py
"""

from repro import proportional_elasticity
from repro.sched import WfqPacket, build_enforcement
from repro.sim import TABLE1_PLATFORM
from repro.workloads import build_mix_problem

N_PACKETS_PER_FLOW = 2000
N_QUANTA = 50_000


def main() -> None:
    problem = build_mix_problem("WD3")
    allocation = proportional_elasticity(problem)
    print("REF allocation for WD3 (4M: lu_cb, fluidanimate, facesim, dedup):")
    print(allocation.summary())

    plan = build_enforcement(allocation, TABLE1_PLATFORM.l2)

    # --- cache way partitioning ----------------------------------------
    total_capacity = problem.capacities[1]
    print(f"\nL2 way partition ({TABLE1_PLATFORM.l2.ways} ways):")
    for i, agent in enumerate(problem.agents):
        target = allocation.shares[i, 1] / total_capacity
        ways = plan.way_assignment[agent.name]
        print(
            f"  {agent.name:<14} target {target * 100:5.1f}%  ->  {ways} ways "
            f"({ways / TABLE1_PLATFORM.l2.ways * 100:5.1f}%)"
        )
    print(f"  worst quantization error: {plan.cache_quantization_error * 100:.1f}% of capacity")

    # --- weighted fair queueing ----------------------------------------
    scheduler = plan.wfq_scheduler(rate=problem.capacities[0])
    packets = [
        WfqPacket(flow=agent.name, size=64.0)
        for _ in range(N_PACKETS_PER_FLOW)
        for agent in problem.agents
    ]
    records = scheduler.run(packets)
    # Early-window shares show convergence, not just the full-run total.
    horizon = records[len(records) // 4].finish
    served = scheduler.throughput_up_to(records, horizon)
    total_served = sum(served.values())
    print("\nWFQ shares over the first quarter of the schedule (backlogged):")
    for i, agent in enumerate(problem.agents):
        target = allocation.shares[i, 0] / problem.capacities[0]
        achieved = served[agent.name] / total_served
        print(
            f"  {agent.name:<14} target {target * 100:5.1f}%  "
            f"achieved {achieved * 100:5.1f}%"
        )

    # --- lottery scheduling ---------------------------------------------
    lottery = plan.lottery_scheduler(seed=1)
    lottery.run(N_QUANTA)
    print(f"\nLottery shares after {N_QUANTA} quanta:")
    achieved = lottery.achieved_shares()
    expected = lottery.expected_shares()
    for agent in problem.agents:
        print(
            f"  {agent.name:<14} target {expected[agent.name] * 100:5.1f}%  "
            f"achieved {achieved[agent.name] * 100:5.1f}%"
        )
    print(f"  worst deviation: {lottery.worst_share_error() * 100:.2f}%")


if __name__ == "__main__":
    main()
