"""Quickstart: the paper's recurring two-user example (§3-§4.1).

Two users share a chip multiprocessor with 24 GB/s of memory bandwidth
and 12 MB of last-level cache.  User 1 is bandwidth-hungry
(``u1 = x^0.6 * y^0.4``); user 2 re-uses its cache well
(``u2 = x^0.2 * y^0.8``).  The REF mechanism allocates each resource in
proportion to re-scaled elasticity, reproducing the worked example of
§4.1: user 1 gets 18 GB/s + 4 MB, user 2 gets 6 GB/s + 8 MB — and the
result provably satisfies sharing incentives, envy-freeness and Pareto
efficiency.

Run:  python examples/quickstart.py
"""

from repro import (
    Agent,
    AllocationProblem,
    CobbDouglasUtility,
    check_fairness,
    proportional_elasticity,
    weighted_system_throughput,
)


def main() -> None:
    # 1. Each user reports a Cobb-Douglas utility (normally fitted from
    #    profiles; see examples/cache_bandwidth_case_study.py).
    user1 = Agent("user1", CobbDouglasUtility((0.6, 0.4)))  # prefers bandwidth
    user2 = Agent("user2", CobbDouglasUtility((0.2, 0.8)))  # prefers cache

    # 2. Pose the fair-division problem: 24 GB/s and 12 MB to share.
    problem = AllocationProblem(
        agents=[user1, user2],
        capacities=(24.0, 12.0),
        resource_names=("membw_gbps", "cache_mb"),
    )

    # 3. Allocate in proportion to elasticity (Eq. 13) — closed form.
    allocation = proportional_elasticity(problem)
    print("REF allocation (paper §4.1 worked example):")
    print(allocation.summary())

    # 4. Verify the game-theoretic guarantees.
    report = check_fairness(allocation)
    print("\nFairness properties:")
    print(report.summary())
    assert report.is_fair, "REF must satisfy SI, EF and PE"

    # 5. Every user beats the equal split (the SI guarantee, Eq. 3).
    equal = problem.equal_split
    for i, agent in enumerate(problem.agents):
        u_ref = agent.utility.value(allocation.shares[i])
        u_eq = agent.utility.value(equal)
        print(
            f"\n{agent.name}: utility {u_ref:.3f} under REF vs {u_eq:.3f} "
            f"under an equal split ({(u_ref / u_eq - 1) * 100:+.1f}%)"
        )

    print(
        f"\nWeighted system throughput (Eq. 17): "
        f"{weighted_system_throughput(allocation):.4f} (max possible 2.0)"
    )


if __name__ == "__main__":
    main()
