"""Case study: profile, fit and fairly share cache + bandwidth (§5).

The full REF pipeline on the paper's case study, using the simulation
substrate instead of MARSSx86/DRAMSim2:

1. profile ``canneal`` and ``freqmine`` over the 25-point Table 1 grid
   (the paper notes the recurring example's utilities "accurately model
   the relative cache and memory intensities for canneal and freqmine");
2. fit Cobb-Douglas utilities with log-linear least squares (Eq. 16)
   and report R²;
3. re-scale elasticities and classify each workload (Fig. 9);
4. run the REF mechanism on a shared 24 GB/s + 12 MB system and verify
   SI/EF/PE;
5. compare against the equal-slowdown mechanism (§5.4);
6. map the fair set with an Edgeworth-box analysis (Figs. 5-7).

Run:  python examples/cache_bandwidth_case_study.py
"""

import numpy as np

from repro import check_fairness, proportional_elasticity
from repro.core import EdgeworthBox, classify, weighted_utilities
from repro.core.mechanism import Agent, AllocationProblem
from repro.optimize import equal_slowdown
from repro.profiling import OfflineProfiler
from repro.workloads import RESOURCE_NAMES, get_workload

CAPACITIES = (24.0, 12.0 * 1024)  # 24 GB/s, 12 MB (in KB)


def main() -> None:
    profiler = OfflineProfiler()

    # --- 1-2: profile and fit -----------------------------------------
    fits = {}
    for name in ("canneal", "freqmine"):
        workload = get_workload(name)
        profile = profiler.profile(workload)
        fit = profile.fit()
        fits[name] = fit
        print(
            f"{name}: fitted u = {fit.utility.scale:.3f} "
            f"* bw^{fit.elasticities[0]:.3f} * cache^{fit.elasticities[1]:.3f} "
            f"(R^2 = {fit.r_squared:.3f}, {profile.n_samples} samples)"
        )

    # --- 3: re-scale and classify (Fig. 9) -----------------------------
    print("\nRe-scaled elasticities (Eq. 12):")
    for name, fit in fits.items():
        pref = classify(name, fit.utility)
        print(
            f"  {name}: a_mem = {pref.memory_elasticity:.3f}, "
            f"a_cache = {pref.cache_elasticity:.3f} -> group {pref.group.value}"
        )

    # --- 4: REF allocation ---------------------------------------------
    problem = AllocationProblem(
        agents=[Agent(name, fit.utility) for name, fit in fits.items()],
        capacities=CAPACITIES,
        resource_names=RESOURCE_NAMES,
    )
    ref = proportional_elasticity(problem)
    print("\nREF allocation:")
    print(ref.summary())
    print(check_fairness(ref).summary())

    # --- 5: equal slowdown for contrast (§5.4) --------------------------
    eq = equal_slowdown(problem)
    print("\nEqual-slowdown allocation:")
    print(eq.summary())
    eq_report = check_fairness(eq)
    print(eq_report.summary())
    print(
        "equal slowdown weighted utilities:",
        np.round(weighted_utilities(eq), 4),
        "(equalized, but no SI/EF guarantee)",
    )

    # --- 6: the fair set on the contract curve (Figs. 5-7) -------------
    box = EdgeworthBox(problem)
    ef_segment = box.fair_segment(include_si=False)
    si_segment = box.fair_segment(include_si=True)
    print(
        f"\nContract-curve fair set (agent-1 bandwidth coordinate):"
        f"\n  EF + PE        : [{ef_segment[0]:7.3f}, {ef_segment[1]:7.3f}] GB/s"
        f"\n  EF + PE + SI   : [{si_segment[0]:7.3f}, {si_segment[1]:7.3f}] GB/s"
    )
    ref_x = ref.shares[0, 0]
    inside = si_segment[0] - 1e-6 <= ref_x <= si_segment[1] + 1e-6
    print(f"  REF point ({ref_x:.3f} GB/s) inside the fair set: {inside}")


if __name__ == "__main__":
    main()
