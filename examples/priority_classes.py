"""Priority classes: weighted REF via unequal-income CEEI.

The paper's mechanism treats every user equally (CEEI: competitive
equilibrium from *equal* incomes).  Datacenters, however, sell service
classes.  The natural generalization keeps the whole machinery and
changes one thing: incomes.  A gold tenant with weight 2 holds twice a
standard tenant's budget in the CEEI market; the closed form of Eq. 13
simply weights each agent's re-scaled elasticities.

What survives, and what changes:

* **Pareto efficiency survives** — competitive equilibria are efficient
  at any income vector (the first welfare theorem).
* **Envy-freeness and SI hold within a class** — agents with equal
  weights still do not envy each other and still beat an equal split of
  their class's aggregate entitlement.
* Across classes, envy toward heavier agents is the point.

Run:  python examples/priority_classes.py
"""

from repro import proportional_elasticity
from repro.core import check_fairness, is_pareto_efficient
from repro.core.ceei import competitive_equilibrium
from repro.profiling import OfflineProfiler
from repro.workloads import RESOURCE_NAMES, get_workload
from repro.core.mechanism import Agent, AllocationProblem

CAPACITIES = (24.0, 12.0 * 1024)
#: (tenant, benchmark, weight): one gold tenant, three standard.
TENANTS = [
    ("gold/canneal", "canneal", 2.0),
    ("std/freqmine", "freqmine", 1.0),
    ("std/bodytrack", "bodytrack", 1.0),
    ("std/dedup", "dedup", 1.0),
]


def main() -> None:
    profiler = OfflineProfiler()
    agents = [
        Agent(tenant, profiler.fit(get_workload(benchmark)).utility)
        for tenant, benchmark, _ in TENANTS
    ]
    weights = [weight for _, _, weight in TENANTS]
    problem = AllocationProblem(agents, CAPACITIES, RESOURCE_NAMES)

    plain = proportional_elasticity(problem)
    weighted = proportional_elasticity(problem, weights=weights)

    print("Equal-priority REF allocation:")
    print(plain.summary())
    print("\nWeighted REF allocation (gold tenant weight 2.0):")
    print(weighted.summary())

    gold = TENANTS[0][0]
    print(
        f"\n{gold}: bandwidth {plain[gold][0]:.2f} -> {weighted[gold][0]:.2f} GB/s, "
        f"cache {plain[gold][1]:.0f} -> {weighted[gold][1]:.0f} KB"
    )

    # The weighted allocation is the unequal-income market equilibrium.
    market = competitive_equilibrium(problem, incomes=weights)
    matches = bool(
        abs(market.allocation.shares - weighted.shares).max() < 1e-9
    )
    print(f"weighted REF == CEEI with incomes {weights}: {matches}")

    # Efficiency survives; class-blind fairness (of course) does not.
    print(f"weighted allocation Pareto efficient: {is_pareto_efficient(weighted)}")
    report = check_fairness(weighted)
    print(
        "global EF/SI (expected to fail across classes): "
        f"EF={report.envy_free} SI={report.sharing_incentives}"
    )


if __name__ == "__main__":
    main()
