"""Render the paper's key evaluation figures as terminal graphics.

Regenerates the data for Figs. 8a, 9, 13 and 14 through the library and
draws them with :mod:`repro.viz` — the whole evaluation at a glance,
no plotting stack required.

Run:  python examples/render_figures.py
"""

from repro import weighted_system_throughput
from repro.core import classify_many
from repro.optimize import MECHANISMS
from repro.profiling import OfflineProfiler
from repro.viz import grouped_bars, hbar_chart, line_plot, stacked_shares
from repro.workloads import (
    BENCHMARK_ORDER,
    EIGHT_CORE_MIXES,
    FOUR_CORE_MIXES,
    build_mix_problem,
    get_mix,
    get_workload,
)

MECHANISM_ORDER = [
    "Max Welfare w/ Fairness",
    "Proportional Elasticity w/ Fairness",
    "Max Welfare w/o Fairness",
    "Equal Slowdown w/o Fairness",
]


def main() -> None:
    profiler = OfflineProfiler()
    fits = profiler.fit_suite()

    print("=" * 72)
    print("Fig. 8a — coefficient of determination per benchmark")
    print("=" * 72)
    print(hbar_chart({name: fits[name].r_squared for name in BENCHMARK_ORDER}, max_value=1.0))

    print()
    print("=" * 72)
    print("Fig. 8b — simulated vs fitted IPC (ferret, 25 sweep points)")
    print("=" * 72)
    profile = profiler.profile(get_workload("ferret"))
    predicted = fits["ferret"].predict(profile.allocations)
    print(
        line_plot(
            range(profile.n_samples),
            {"simulated": profile.ipc, "fitted": predicted},
        )
    )

    print()
    print("=" * 72)
    print("Fig. 9 — re-scaled elasticities (cache filled, bandwidth hollow)")
    print("=" * 72)
    prefs = classify_many(fits)
    print(
        stacked_shares(
            {name: prefs[name].cache_elasticity for name in BENCHMARK_ORDER},
            left_label="cache",
            right_label="memory bandwidth",
        )
    )

    for title, mixes in (
        ("Fig. 13 — 4-core weighted system throughput", FOUR_CORE_MIXES),
        ("Fig. 14 — 8-core weighted system throughput", EIGHT_CORE_MIXES),
    ):
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)
        series = {name: [] for name in MECHANISM_ORDER}
        labels = []
        for mix_name in mixes:
            problem = build_mix_problem(mix_name, profiler=profiler)
            labels.append(f"{mix_name} ({get_mix(mix_name).characterization})")
            for name in MECHANISM_ORDER:
                allocation = MECHANISMS[name](problem)
                series[name].append(weighted_system_throughput(allocation))
        print(grouped_bars(labels, series))


if __name__ == "__main__":
    main()
