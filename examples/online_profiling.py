"""On-line profiling: a naive agent learns its utility while running (§4.4).

"Without prior knowledge, a user assumes all resources contribute
equally to performance.  Such a naive user reports utility
``u = x^0.5 y^0.5``.  As the system allocates for this utility, the user
profiles software performance ... and adapts its utility function."

This example runs that adaptive loop for two co-located workloads
(``ferret`` and ``dedup``):

* every round, the REF mechanism allocates using the *currently
  reported* elasticities;
* each agent measures its IPC at its current allocation (simulated with
  the analytic machine, with measurement noise) plus an occasional
  exploration sample, and re-fits;
* reported elasticities converge to the offline-profiled truth within a
  handful of rounds.

Run:  python examples/online_profiling.py
"""

import numpy as np

from repro import Agent, AllocationProblem, proportional_elasticity
from repro.profiling import OfflineProfiler, OnlineProfiler
from repro.sim import AnalyticMachine
from repro.workloads import RESOURCE_NAMES, get_workload

# Table-1-scale system: online samples stay inside the offline-profiled
# operating range, so the two fits are comparable.
CAPACITIES = (12.8, 2048.0)
N_ROUNDS = 12
NOISE_SIGMA = 0.01


def main() -> None:
    rng = np.random.default_rng(42)
    machine = AnalyticMachine()
    workloads = {name: get_workload(name) for name in ("ferret", "dedup")}
    online = {name: OnlineProfiler(n_resources=2) for name in workloads}

    # Ground truth from offline profiling, for reference.
    offline = OfflineProfiler()
    truth = {
        name: offline.fit(workload).rescaled_elasticities
        for name, workload in workloads.items()
    }

    def measure(name: str, bandwidth: float, cache_kb: float) -> float:
        """One noisy IPC observation at an allocation."""
        ipc = machine.ipc(workloads[name], cache_kb, bandwidth)
        return float(ipc * np.exp(rng.normal(0.0, NOISE_SIGMA)))

    print(f"{'round':>5}  " + "  ".join(f"{name} (mem, cache)" for name in workloads))
    for round_index in range(N_ROUNDS):
        # The mechanism allocates based on current reports.
        agents = [Agent(name, online[name].utility) for name in workloads]
        problem = AllocationProblem(agents, CAPACITIES, RESOURCE_NAMES)
        allocation = proportional_elasticity(problem)

        for i, name in enumerate(workloads):
            bandwidth, cache_kb = allocation.shares[i]
            online[name].observe((bandwidth, cache_kb), measure(name, bandwidth, cache_kb))
            # Exploration: log-uniform samples over the whole operating
            # range keep the regression identified on both axes.
            for _ in range(2):
                explore_bw = float(np.exp(rng.uniform(np.log(0.8), np.log(CAPACITIES[0]))))
                explore_kb = float(np.exp(rng.uniform(np.log(128.0), np.log(CAPACITIES[1]))))
                online[name].observe(
                    (explore_bw, explore_kb), measure(name, explore_bw, explore_kb)
                )

        reports = {name: online[name].report_elasticities() for name in workloads}
        row = "  ".join(
            f"({reports[name][0]:.3f}, {reports[name][1]:.3f})".center(20)
            for name in workloads
        )
        print(f"{round_index:>5}  {row}")

    print("\nConverged vs offline truth:")
    for name in workloads:
        learned = online[name].report_elasticities()
        print(
            f"  {name}: online ({learned[0]:.3f}, {learned[1]:.3f})  "
            f"offline ({truth[name][0]:.3f}, {truth[name][1]:.3f})  "
            f"max |delta| = {np.max(np.abs(learned - truth[name])):.3f}"
        )


if __name__ == "__main__":
    main()
