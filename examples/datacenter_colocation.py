"""Datacenter co-location: many agents and strategy-proofness (§4.3).

The paper argues REF is strategy-proof *in the large*: with tens of
agents, no single agent can gain by misreporting her elasticities.  This
example reproduces the §4.3 experiment — "consider 64 tasks sharing a
large system ... each of the 64 tasks' elasticities are uniformly random
from (0,1)" — and shows:

* the REF allocation for 64 heterogeneous tasks is computed in
  microseconds (closed form, Eq. 13);
* the optimal misreport of each strategic agent (solving Eq. 15) is
  essentially her true elasticity vector — lying does not pay;
* for contrast, in a 2-agent system lying *does* pay, which is why the
  guarantee is "in the large".

Run:  python examples/datacenter_colocation.py
"""

import time

import numpy as np

from repro import Agent, AllocationProblem, CobbDouglasUtility, proportional_elasticity
from repro.core import check_fairness
from repro.core.spl import best_response

#: A four-socket server: 64 threads, > 100 GB/s of bandwidth (§4.3).
CAPACITIES = (128.0, 96.0 * 1024)  # GB/s, KB of aggregate LLC
N_TASKS = 64


def random_agents(n: int, seed: int = 7) -> list:
    """Agents with elasticities drawn uniformly from (0, 1), as in §4.3."""
    rng = np.random.default_rng(seed)
    agents = []
    for i in range(n):
        alpha = rng.uniform(0.05, 1.0, size=2)
        agents.append(Agent(f"task{i:02d}", CobbDouglasUtility(alpha)))
    return agents


def main() -> None:
    agents = random_agents(N_TASKS)
    problem = AllocationProblem(agents, CAPACITIES, ("membw_gbps", "cache_kb"))

    start = time.perf_counter()
    allocation = proportional_elasticity(problem)
    elapsed_us = (time.perf_counter() - start) * 1e6
    print(f"REF allocated {N_TASKS} tasks x 2 resources in {elapsed_us:.0f} us (closed form)")

    report = check_fairness(allocation)
    print(report.summary())

    # Strategic analysis: can any of the first 8 tasks gain by lying?
    alpha = problem.rescaled_alpha_matrix()
    caps = problem.capacity_vector
    print("\nStrategic best responses (Eq. 15), 64-agent system:")
    print(f"{'task':<8} {'true alpha':>22} {'best report':>22} {'gain %':>8}")
    worst_gain = 0.0
    for i in range(8):
        others = alpha.sum(axis=0) - alpha[i]
        response = best_response(alpha[i], others, caps)
        worst_gain = max(worst_gain, response.gain)
        print(
            f"task{i:02d}   {np.array2string(alpha[i], precision=3):>22} "
            f"{np.array2string(response.reported_alpha, precision=3):>22} "
            f"{response.gain * 100:8.4f}"
        )
    print(f"worst manipulation gain across sampled tasks: {worst_gain * 100:.4f}%")

    # Contrast: with only two agents, lying can pay noticeably.
    two = problem = AllocationProblem(agents[:2], CAPACITIES, ("membw_gbps", "cache_kb"))
    alpha2 = two.rescaled_alpha_matrix()
    others = alpha2.sum(axis=0) - alpha2[0]
    response = best_response(alpha2[0], others, two.capacity_vector)
    print(
        f"\n2-agent contrast: task00's optimal misreport "
        f"{np.array2string(response.reported_alpha, precision=3)} "
        f"gains {response.gain * 100:.2f}% — SP holds only in the large."
    )


if __name__ == "__main__":
    main()
