"""Tests for the experiment registry (paper artifacts as objects)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
    run_experiment_batch,
)
from repro.profiling import OfflineProfiler

#: Fast experiments safe to execute wholesale in the unit suite.  The
#: heavyweight ones (fig13/fig14: twenty convex programs; cost: timed
#: solver runs) are exercised by the benchmark harness instead.
FAST_EXPERIMENTS = ["fig1-7", "fig8a", "fig8b", "fig8c", "fig9", "table1", "table2"]


@pytest.fixture(scope="module")
def profiler():
    return OfflineProfiler()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig1-7", "fig8a", "fig8b", "fig8c", "fig9",
            "fig10-12", "fig13", "fig14", "table1", "table2",
            "spl", "cost", "regret",
        }
        assert expected <= set(EXPERIMENTS)

    def test_list_is_sorted(self):
        assert list_experiments() == sorted(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.base import experiment

        with pytest.raises(ValueError, match="duplicate"):
            experiment("fig9")(lambda profiler=None: None)

    def test_every_experiment_has_docstring(self):
        for experiment_id, fn in EXPERIMENTS.items():
            assert fn.__doc__, f"{experiment_id} lacks a docstring"


class TestExecution:
    @pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
    def test_runs_and_returns_result(self, experiment_id, profiler):
        result = run_experiment(experiment_id, profiler=profiler)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.text.startswith("===")
        assert result.title

    def test_shared_profiler_reused(self, profiler):
        # Two experiments sharing one profiler reuse its cache: the
        # underlying Profile objects must be identical.
        run_experiment("fig8a", profiler=profiler)
        from repro.workloads import get_workload

        first = profiler.profile(get_workload("ferret"))
        run_experiment("fig9", profiler=profiler)
        assert profiler.profile(get_workload("ferret")) is first

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ExperimentResult(experiment_id="x", title="x", text="   ")

    def test_fig9_data_matches_expected_groups(self, profiler):
        result = run_experiment("fig9", profiler=profiler)
        assert result.data["mismatches"] == 0
        assert result.data["groups"]["dedup"] == "M"

    def test_fig1_7_fair_set_data(self):
        result = run_experiment("fig1-7")
        lo, hi = result.data["si_segment"]
        assert 0 < lo < hi < 24.0
        assert result.data["ref_inside_fair_set"]


class TestBatch:
    def test_batch_matches_individual_runs(self, profiler):
        ids = ["fig8a", "fig9"]
        batch = run_experiment_batch(ids, jobs=2)
        for experiment_id in ids:
            assert batch[experiment_id].text == run_experiment(
                experiment_id, profiler=profiler
            ).text

    def test_unknown_id_rejected_before_running(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiment_batch(["fig8a", "fig99"])

    def test_reuses_caller_profiler_without_closing_it(self, profiler):
        results = run_experiment_batch(["table1"], profiler=profiler)
        assert set(results) == {"table1"}
        # Caller's profiler is still usable afterwards.
        from repro.workloads import get_workload

        assert profiler.profile(get_workload("ferret")).n_samples == 25

    def test_batch_shares_one_profile_cache(self, tmp_path):
        run_experiment_batch(["fig8a"], jobs=2, cache_dir=tmp_path)
        warm = OfflineProfiler(jobs=2, cache_dir=tmp_path)
        try:
            results = run_experiment_batch(["fig8a"], profiler=warm)
            assert warm.stats.simulated_points == 0  # served from disk
            assert results["fig8a"].text
        finally:
            warm.close()


class TestRegret:
    def test_fast_run_invariants(self):
        from repro.experiments.regret import run_regret

        report = run_regret(epochs=40, window=10, churn=False, seed=1)
        assert len(report.per_epoch) == 40
        assert all(gap >= -1e-9 for gap in report.per_epoch)
        assert report.cumulative_regret == pytest.approx(sum(report.per_epoch))
        assert report.cumulative[-1] == pytest.approx(report.cumulative_regret)
        assert set(report.per_agent_final) == set(report.agents)
        payload = report.as_dict()
        assert payload["epochs"] == 40
        assert len(payload["per_epoch"]) == 40
        assert payload["cumulative_regret"] == pytest.approx(report.cumulative_regret)

    def test_epochs_must_cover_two_windows(self):
        from repro.experiments.regret import run_regret

        with pytest.raises(ValueError, match="epochs"):
            run_regret(epochs=10, window=10)
