"""DemandLearner: blended reports, perturbation, caps, convergence."""

import numpy as np
import pytest

from repro.learning import DemandLearner, LearnerConfig
from repro.obs import MetricsRegistry
from repro.profiling.online import OnlineProfiler

FLOORS = (0.4, 64.0)
CAPACITIES = (25.6, 8192.0)


def feed(profiler, alpha, n, seed=0):
    rng = np.random.default_rng(seed)
    from repro.core.utility import CobbDouglasUtility

    utility = CobbDouglasUtility(alpha)
    for _ in range(n):
        allocation = rng.uniform(0.5, 20.0, size=2)
        profiler.observe(allocation, utility.value(allocation))


class TestConfig:
    def test_defaults_validate(self):
        LearnerConfig()

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"epsilon0": 0.2, "epsilon_min": 0.5}, "epsilon_min"),
            ({"epsilon_decay": 0.0}, "epsilon_decay"),
            ({"perturb_width": 1.5}, "perturb_width"),
            ({"confidence_samples": 0}, "confidence_samples"),
            ({"convergence_tol": 0.0}, "convergence_tol/window"),
            ({"rearm_drift": 0.01}, "rearm_drift"),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LearnerConfig(**kwargs)


class TestReports:
    def test_unfitted_agent_reports_its_prior(self):
        learner = DemandLearner()
        learner.register("a")
        profiler = OnlineProfiler()
        assert learner.confidence("a", profiler) == 0.0
        assert learner.report("a", profiler) == pytest.approx([0.5, 0.5])

    def test_confidence_ramps_with_samples(self):
        learner = DemandLearner(config=LearnerConfig(confidence_samples=10))
        learner.register("a")
        profiler = OnlineProfiler()
        feed(profiler, (0.8, 0.2), 5)
        assert learner.confidence("a", profiler) == pytest.approx(0.5)
        feed(profiler, (0.8, 0.2), 10, seed=1)
        assert learner.confidence("a", profiler) == 1.0

    def test_blend_moves_from_prior_to_fit(self):
        learner = DemandLearner(config=LearnerConfig(confidence_samples=10))
        learner.register("a")
        profiler = OnlineProfiler()
        feed(profiler, (0.9, 0.1), 5)
        half = learner.report("a", profiler)
        fitted = profiler.report_elasticities()
        expected = 0.5 * np.array([0.5, 0.5]) + 0.5 * fitted
        assert half == pytest.approx(expected / expected.sum())
        feed(profiler, (0.9, 0.1), 10, seed=1)
        assert learner.report("a", profiler) == pytest.approx(fitted, rel=1e-6)

    def test_report_always_a_valid_rescaled_vector(self):
        learner = DemandLearner()
        learner.register("a")
        profiler = OnlineProfiler()
        feed(profiler, (0.7, 0.3), 30)
        report = learner.report("a", profiler)
        assert report.sum() == pytest.approx(1.0)
        assert np.all(report > 0)

    def test_unregistered_agent_passes_through(self):
        learner = DemandLearner()
        profiler = OnlineProfiler()
        feed(profiler, (0.7, 0.3), 30)
        assert learner.report("profiled", profiler) == pytest.approx(
            profiler.report_elasticities()
        )

    def test_register_is_idempotent(self):
        learner = DemandLearner()
        learner.register("a", cls="C")
        state = learner.state("a")
        learner.register("a", cls="M")
        assert learner.state("a") is state
        assert state.cls == "C"

    def test_forget_drops_state(self):
        learner = DemandLearner()
        learner.register("a")
        learner.forget("a")
        assert learner.state("a") is None
        learner.forget("a")  # no-op


class TestPriorFeedback:
    def test_confident_fit_feeds_the_store_once(self):
        learner = DemandLearner(prior="centroid")
        learner.register("a", cls="C")
        profiler = OnlineProfiler()
        feed(profiler, (0.8, 0.2), 20)
        learner.note_fit("a", profiler)
        learner.note_fit("a", profiler)
        assert learner.priors.observations("C") == 1
        # The next C agent starts from the learned centroid, not equal.
        learner.register("b", cls="C")
        assert learner.state("b").prior == pytest.approx([0.8, 0.2], rel=1e-5)

    def test_unconfident_fit_does_not_feed(self):
        learner = DemandLearner(prior="centroid")
        learner.register("a", cls="C")
        profiler = OnlineProfiler()
        feed(profiler, (0.8, 0.2), 5)
        learner.note_fit("a", profiler)
        assert learner.priors.observations("C") == 0


class TestPerturb:
    def _learner(self, epsilon=1.0):
        config = LearnerConfig(epsilon0=epsilon, epsilon_min=epsilon)
        return DemandLearner(config=config, seed=7)

    def test_perturbation_preserves_column_sums_and_floors(self):
        learner = self._learner(epsilon=1.0)
        names = ("a", "b", "c")
        for name in names:
            learner.register(name)
        shares = np.array([[10.0, 4000.0], [8.0, 2000.0], [7.6, 2192.0]])
        out, explored = learner.perturb(shares, names, FLOORS)
        assert set(explored) == set(names)
        assert not np.allclose(out, shares)
        assert out.sum(axis=0) == pytest.approx(shares.sum(axis=0), rel=1e-9)
        assert np.all(out >= np.asarray(FLOORS) - 1e-12)

    def test_epsilon_zero_never_perturbs(self):
        learner = self._learner(epsilon=0.0)
        learner.register("a")
        shares = np.array([[10.0, 4000.0]])
        out, explored = learner.perturb(shares, ("a",), FLOORS)
        assert explored == ()
        assert np.array_equal(out, shares)

    def test_non_learning_agents_untouched(self):
        learner = self._learner(epsilon=1.0)
        learner.register("learned")
        shares = np.array([[10.0, 4000.0], [8.0, 2000.0]])
        out, explored = learner.perturb(shares, ("learned", "profiled"), FLOORS)
        assert explored == ("learned",)
        # Column renormalization may move the profiled agent slightly,
        # but the perturbation factor only ever applies to the learner.
        assert out.sum(axis=0) == pytest.approx(shares.sum(axis=0), rel=1e-9)

    def test_exploration_fraction_gauge(self):
        registry = MetricsRegistry()
        learner = DemandLearner(
            config=LearnerConfig(epsilon0=1.0, epsilon_min=1.0),
            metrics=registry,
            seed=3,
        )
        learner.register("a")
        learner.perturb(np.array([[10.0, 4000.0]]), ("a",), FLOORS)
        gauge = registry.gauge("repro_learning_exploration_fraction")
        assert gauge.value == 1.0


class TestCaps:
    def test_caps_require_confidence(self):
        learner = DemandLearner()
        learner.register("a")
        profiler = OnlineProfiler()
        caps = learner.caps_for(("a",), {"a": profiler}, FLOORS)
        assert np.all(np.isinf(caps))

    def test_apply_caps_counts_events(self):
        registry = MetricsRegistry()
        learner = DemandLearner(metrics=registry)
        learner.register("a")
        profiler = OnlineProfiler()
        # A response flat in resource 1: performance tracks resource 0.
        rng = np.random.default_rng(2)
        for _ in range(20):
            allocation = rng.uniform((1.0, 200.0), (10.0, 3000.0))
            profiler.observe(allocation, float(allocation[0] ** 0.9))
        shares = np.array([[12.0, 4096.0], [13.6, 4096.0]])
        out, capped = learner.apply_caps(
            shares, ("a", "b"), {"a": profiler}, FLOORS, CAPACITIES
        )
        assert capped >= 1
        assert out[0, 1] < shares[0, 1]  # the saturated entry shrank
        assert out.sum(axis=0)[1] == pytest.approx(shares.sum(axis=0)[1])
        counter = registry.counter("repro_learning_cap_events_total")
        assert counter.value == capped


class TestConvergence:
    def _converged_learner(self):
        config = LearnerConfig(
            epsilon0=0.0,
            epsilon_min=0.0,
            confidence_samples=10,
            convergence_window=3,
        )
        learner = DemandLearner(config=config)
        learner.register("a")
        profiler = OnlineProfiler()
        feed(profiler, (0.8, 0.2), 20)
        return learner, profiler

    def test_stable_reports_converge(self):
        learner, profiler = self._converged_learner()
        converged = []
        for epoch in range(6):
            converged += learner.note_epoch(epoch, ("a",), {"a": profiler})
        assert converged == ["a"]
        assert learner.state("a").converged_epoch is not None

    def test_drift_rearms_exploration(self):
        learner, profiler = self._converged_learner()
        for epoch in range(6):
            learner.note_epoch(epoch, ("a",), {"a": profiler})
        assert learner.state("a").converged_epoch is not None
        # A phase change: the report jumps far beyond rearm_drift.
        feed(profiler, (0.05, 0.95), 40, seed=9)
        learner.note_epoch(6, ("a",), {"a": profiler})
        assert learner.state("a").converged_epoch is None
        assert learner.state("a").epsilon == learner.config.epsilon0

    def test_epsilon_decays_to_floor(self):
        config = LearnerConfig(epsilon0=0.9, epsilon_min=0.1, epsilon_decay=0.5)
        learner = DemandLearner(config=config)
        learner.register("a")
        profiler = OnlineProfiler()
        for epoch in range(10):
            learner.note_epoch(epoch, ("a",), {"a": profiler})
        assert learner.state("a").epsilon == pytest.approx(0.1)
