"""Demand caps: clipping, surplus redistribution, exact column sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning import DemandCapEstimator, apply_demand_caps

CAPACITIES = (25.6, 8192.0)


class TestApplyDemandCaps:
    def test_no_caps_is_identity(self):
        shares = np.array([[10.0, 4000.0], [15.6, 4192.0]])
        result = apply_demand_caps(shares, np.full((2, 2), np.inf), CAPACITIES)
        assert np.array_equal(result.shares, shares)
        assert result.capped_entries == 0
        assert np.all(result.released == 0.0)

    def test_surplus_flows_to_the_free_agent(self):
        shares = np.array([[16.0, 4096.0], [9.6, 4096.0]])
        caps = np.array([[10.0, np.inf], [np.inf, np.inf]])
        result = apply_demand_caps(shares, caps, CAPACITIES)
        assert result.shares[0, 0] == pytest.approx(10.0)
        # Column sum preserved exactly: agent 1 absorbs the surplus.
        assert result.shares[1, 0] == pytest.approx(15.6)
        assert result.capped_entries == 1
        assert result.released[0] == 0.0

    def test_all_capped_releases_capacity(self):
        shares = np.array([[16.0, 4096.0], [9.6, 4096.0]])
        caps = np.array([[8.0, np.inf], [4.0, np.inf]])
        result = apply_demand_caps(shares, caps, CAPACITIES)
        assert result.shares[:, 0] == pytest.approx([8.0, 4.0])
        assert result.released[0] == pytest.approx(25.6 - 12.0)
        assert result.released[1] == 0.0

    def test_rescale_can_pin_a_second_agent(self):
        # Redistributing agent 0's surplus pushes agent 1 over *its*
        # cap; the iteration must pin it too and give the rest to 2.
        shares = np.array([[12.0], [6.0], [6.0]])
        caps = np.array([[4.0], [7.0], [np.inf]])
        result = apply_demand_caps(shares, caps, (24.0,))
        assert result.shares[0, 0] == pytest.approx(4.0)
        assert result.shares[1, 0] <= 7.0 + 1e-9
        assert result.shares.sum() == pytest.approx(24.0)

    def test_degenerate_caps_treated_as_uncapped(self):
        shares = np.array([[10.0, 4000.0], [15.6, 4192.0]])
        caps = np.array([[np.nan, -3.0], [0.0, np.inf]])
        result = apply_demand_caps(shares, caps, CAPACITIES)
        assert np.array_equal(result.shares, shares)
        assert result.capped_entries == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="caps"):
            apply_demand_caps(np.ones((2, 2)), np.ones((3, 2)), CAPACITIES)
        with pytest.raises(ValueError, match="capacities"):
            apply_demand_caps(np.ones((2, 2)), np.ones((2, 2)), (1.0,))

    # ------------------------------------------------------------------
    # The ISSUE's property, mirroring the split_capacity exact-sum one:
    # with caps active, total allocated share never exceeds capacity and
    # capped agents' surplus is fully redistributed (exact column sums
    # whenever at least one agent stays free).

    @settings(max_examples=200, deadline=None)
    @given(
        shares=st.lists(
            st.tuples(
                st.floats(0.5, 12.0, allow_nan=False),
                st.floats(100.0, 4000.0, allow_nan=False),
            ),
            min_size=2,
            max_size=6,
        ),
        cap_data=st.data(),
    )
    def test_caps_property(self, shares, cap_data):
        shares = np.asarray(shares, dtype=float)
        n = shares.shape[0]
        capacities = shares.sum(axis=0)  # a fully-committed allocation
        caps = cap_data.draw(
            st.lists(
                st.tuples(
                    st.one_of(st.just(np.inf), st.floats(0.5, 12.0)),
                    st.one_of(st.just(np.inf), st.floats(100.0, 4000.0)),
                ),
                min_size=n,
                max_size=n,
            )
        )
        caps = np.asarray(caps, dtype=float)
        result = apply_demand_caps(shares, caps, capacities)

        # Never over cap, never negative, never over capacity.
        assert np.all(result.shares <= caps + 1e-9)
        assert np.all(result.shares >= 0.0)
        column_sums = result.shares.sum(axis=0)
        assert np.all(column_sums <= capacities + 1e-6 * np.abs(capacities))

        for r in range(shares.shape[1]):
            below_cap = result.shares[:, r] < caps[:, r] * (1 - 1e-12)
            if np.any(below_cap & (result.shares[:, r] > 0)):
                # At least one free agent with positive share: the
                # surplus must be fully redistributed — exact column sum.
                assert column_sums[r] == pytest.approx(
                    capacities[r], rel=1e-9, abs=1e-9
                )
            else:
                # Everyone capped: the gap is accounted as released.
                assert result.released[r] == pytest.approx(
                    capacities[r] - column_sums[r], rel=1e-9, abs=1e-9
                )


class TestDemandCapEstimator:
    FLOORS = (0.4, 64.0)

    def _samples(self, n=12, flat_resource=1):
        # Performance responds to resource 0 only; resource 1 is flat.
        rng = np.random.default_rng(5)
        allocations = rng.uniform((1.0, 200.0), (10.0, 3000.0), size=(n, 2))
        performance = allocations[:, 0] ** 0.9
        return allocations, performance

    def test_no_samples_no_caps(self):
        estimator = DemandCapEstimator()
        caps = estimator.caps_for((0.5, 0.5), None, self.FLOORS)
        assert np.all(np.isinf(caps))

    def test_too_few_samples_no_caps(self):
        estimator = DemandCapEstimator(min_samples=8)
        allocations, performance = self._samples(n=4)
        caps = estimator.caps_for(
            (0.95, 0.05), (allocations, performance), self.FLOORS
        )
        assert np.all(np.isinf(caps))

    def test_flat_resource_is_capped_elastic_is_not(self):
        estimator = DemandCapEstimator(flat_threshold=0.08, margin=1.25)
        allocations, performance = self._samples()
        caps = estimator.caps_for(
            (0.95, 0.05), (allocations, performance), self.FLOORS
        )
        assert np.isinf(caps[0])  # elastic: never capped
        assert np.isfinite(caps[1])
        # The cap is margin x the cheapest near-best operating point.
        best = performance.max()
        good = performance >= best * (1.0 - estimator.flat_tolerance)
        expected = max(allocations[good, 1].min() * 1.25, self.FLOORS[1])
        assert caps[1] == pytest.approx(expected)

    def test_cap_never_below_floor(self):
        estimator = DemandCapEstimator(margin=1.0)
        allocations = np.full((10, 2), (5.0, 1.0))
        allocations += np.linspace(0, 1, 10)[:, None]
        performance = np.ones(10)
        caps = estimator.caps_for(
            (0.95, 0.05), (allocations, performance), self.FLOORS
        )
        assert caps[1] >= self.FLOORS[1]

    def test_validation(self):
        with pytest.raises(ValueError, match="flat_threshold"):
            DemandCapEstimator(flat_threshold=1.5)
        with pytest.raises(ValueError, match="margin"):
            DemandCapEstimator(margin=0.5)
        with pytest.raises(ValueError, match="min_samples"):
            DemandCapEstimator(min_samples=1)
