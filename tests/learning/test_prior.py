"""PriorStore: equal vs class-centroid priors for profile-free agents."""

import numpy as np
import pytest

from repro.learning import PRIOR_NAMES, PriorStore


class TestPolicy:
    def test_names_are_static_strings(self):
        assert PRIOR_NAMES == ("equal", "centroid")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown prior policy"):
            PriorStore(policy="oracle")

    def test_bad_dimensionality_rejected(self):
        with pytest.raises(ValueError, match="n_resources"):
            PriorStore(n_resources=0)


class TestEqual:
    def test_equal_prior_sums_to_one(self):
        store = PriorStore(policy="equal", n_resources=3)
        assert store.prior_for("C") == pytest.approx([1 / 3] * 3)

    def test_equal_policy_ignores_observations(self):
        store = PriorStore(policy="equal")
        store.update((0.9, 0.1), cls="C")
        assert store.prior_for("C") == pytest.approx([0.5, 0.5])


class TestCentroid:
    def test_class_centroid_preferred(self):
        store = PriorStore(policy="centroid")
        store.update((0.8, 0.2), cls="C")
        store.update((0.6, 0.4), cls="C")
        store.update((0.1, 0.9), cls="M")
        assert store.prior_for("C") == pytest.approx([0.7, 0.3])
        assert store.prior_for("M") == pytest.approx([0.1, 0.9])

    def test_unknown_class_falls_back_to_global(self):
        store = PriorStore(policy="centroid")
        store.update((0.8, 0.2), cls="C")
        # "M" has no centroid yet; the global one (only C's fit) serves.
        assert store.prior_for("M") == pytest.approx([0.8, 0.2])
        assert store.prior_for(None) == pytest.approx([0.8, 0.2])

    def test_empty_store_falls_back_to_equal(self):
        store = PriorStore(policy="centroid")
        assert store.prior_for("C") == pytest.approx([0.5, 0.5])

    def test_prior_is_normalized(self):
        store = PriorStore(policy="centroid")
        store.update((0.6, 0.4))
        prior = store.prior_for(None)
        assert prior.sum() == pytest.approx(1.0)
        assert np.all(prior > 0)

    def test_degenerate_fits_ignored(self):
        store = PriorStore(policy="centroid")
        store.update((np.nan, 0.5), cls="C")
        store.update((0.0, 1.0), cls="C")
        store.update((-0.2, 1.2), cls="C")
        assert store.observations("C") == 0
        assert store.prior_for("C") == pytest.approx([0.5, 0.5])

    def test_wrong_shape_raises(self):
        store = PriorStore(policy="centroid")
        with pytest.raises(ValueError, match="expected shape"):
            store.update((0.3, 0.3, 0.4))

    def test_observation_counts(self):
        store = PriorStore(policy="centroid")
        store.update((0.5, 0.5), cls="C")
        store.update((0.5, 0.5))
        assert store.observations("C") == 1
        assert store.observations() == 2
