"""Tests for deferred (batched) refits on the online profiler."""

import numpy as np
import pytest

from repro.core.fitting import fit_cobb_douglas_batch
from repro.core.utility import CobbDouglasUtility
from repro.obs import MetricsRegistry
from repro.profiling.online import OnlineProfiler


def feed_synthetic(profiler, alpha, n, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    utility = CobbDouglasUtility(alpha)
    for _ in range(n):
        allocation = rng.uniform(0.5, 20.0, size=2)
        ipc = utility.value(allocation)
        if noise:
            ipc *= float(np.exp(rng.normal(0, noise)))
        profiler.observe(allocation, ipc)


class TestDeferredRefit:
    def test_auto_refit_off_keeps_prior_until_applied(self):
        profiler = OnlineProfiler(auto_refit=False)
        feed_synthetic(profiler, (0.7, 0.3), 12)
        # Samples accepted but no fit ran: the naive prior still reports.
        assert profiler.last_fit is None
        assert profiler.utility.elasticities == (0.5, 0.5)
        assert profiler.needs_refit

    def test_refit_now_matches_eager_path(self):
        eager = OnlineProfiler()
        deferred = OnlineProfiler(auto_refit=False)
        feed_synthetic(eager, (0.7, 0.3), 12, noise=0.02)
        feed_synthetic(deferred, (0.7, 0.3), 12, noise=0.02)
        assert deferred.needs_refit
        deferred.refit_now()
        assert not deferred.needs_refit
        assert deferred.utility.elasticities == pytest.approx(
            eager.utility.elasticities, abs=1e-12
        )
        assert deferred.last_condition_number == pytest.approx(
            eager.last_condition_number
        )

    def test_needs_refit_false_below_min_samples(self):
        profiler = OnlineProfiler(auto_refit=False, min_samples=8)
        feed_synthetic(profiler, (0.6, 0.4), 7)
        assert not profiler.needs_refit

    def test_needs_refit_false_without_variation(self):
        profiler = OnlineProfiler(auto_refit=False)
        for _ in range(6):
            profiler.observe((4.0, 8.0), 1.0)
        assert not profiler.needs_refit

    def test_needs_refit_clears_after_apply(self):
        profiler = OnlineProfiler(auto_refit=False)
        feed_synthetic(profiler, (0.7, 0.3), 10)
        allocations, performance, weights = profiler.fit_inputs()
        [fit] = fit_cobb_douglas_batch([allocations], [performance], [weights])
        profiler.apply_fit(fit)
        assert not profiler.needs_refit
        assert profiler.utility.elasticities == pytest.approx((0.7, 0.3), abs=1e-6)

    def test_apply_fit_none_counts_fallback(self):
        profiler = OnlineProfiler(auto_refit=False)
        feed_synthetic(profiler, (0.7, 0.3), 10)
        profiler.apply_fit(None)
        assert profiler.counters.get("fit_fallbacks", 0) == 1
        assert not profiler.needs_refit
        # The prior keeps reporting; no half-applied fit leaks through.
        assert profiler.utility.elasticities == (0.5, 0.5)

    def test_apply_fit_rejects_ill_conditioned(self):
        profiler = OnlineProfiler(auto_refit=False, max_condition=10.0)
        feed_synthetic(profiler, (0.7, 0.3), 10)
        allocations, performance, weights = profiler.fit_inputs()
        [fit] = fit_cobb_douglas_batch([allocations], [performance], [weights])
        if fit.condition_number <= 10.0:
            pytest.skip("synthetic data unexpectedly well-conditioned")
        profiler.apply_fit(fit)
        assert profiler.last_fit is None
        assert profiler.counters.get("fit_fallbacks", 0) == 1

    def test_refit_metric_on_apply(self):
        registry = MetricsRegistry()
        profiler = OnlineProfiler(
            auto_refit=False, metrics=registry, metric_labels={"agent": "a"}
        )
        feed_synthetic(profiler, (0.7, 0.3), 10)
        profiler.refit_now()
        counter = registry.get("repro_online_refits_total", agent="a")
        assert counter is not None and counter.value == 1

    def test_eager_default_unchanged(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.7, 0.3), 12)
        assert profiler.last_fit is not None
        assert not profiler.needs_refit
