"""Tests for the offline sweep profiler (§4.4, §5.1)."""

import numpy as np
import pytest

from repro.profiling.offline import OfflineProfiler
from repro.sim.platform import PlatformConfig
from repro.workloads.suites import get_workload


class TestProfiling:
    def test_profile_covers_table1_grid(self):
        profiler = OfflineProfiler()
        profile = profiler.profile(get_workload("ferret"))
        assert profile.n_samples == 25
        assert profile.source == "analytic"

    def test_profiles_cached(self):
        profiler = OfflineProfiler()
        first = profiler.profile(get_workload("ferret"))
        second = profiler.profile(get_workload("ferret"))
        assert first is second

    def test_deterministic_across_instances(self):
        a = OfflineProfiler().profile(get_workload("dedup"))
        b = OfflineProfiler().profile(get_workload("dedup"))
        assert np.array_equal(a.ipc, b.ipc)

    def test_noise_streams_independent_per_workload(self):
        profiler = OfflineProfiler()
        ferret = profiler.profile(get_workload("ferret"))
        fmm = profiler.profile(get_workload("fmm"))
        clean = OfflineProfiler(noise_sigma=0)
        ferret_noise = np.log(ferret.ipc) - np.log(clean.profile(get_workload("ferret")).ipc)
        fmm_noise = np.log(fmm.ipc) - np.log(clean.profile(get_workload("fmm")).ipc)
        assert not np.allclose(ferret_noise, fmm_noise)

    def test_zero_noise_matches_analytic_machine(self):
        profiler = OfflineProfiler(noise_sigma=0.0)
        workload = get_workload("barnes")
        profile = profiler.profile(workload)
        direct = profiler._analytic.sweep(workload)
        assert np.allclose(profile.ipc, direct.ipc)

    def test_seed_changes_noise(self):
        a = OfflineProfiler(seed=1).profile(get_workload("ferret"))
        b = OfflineProfiler(seed=2).profile(get_workload("ferret"))
        assert not np.array_equal(a.ipc, b.ipc)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            OfflineProfiler(noise_sigma=-0.1)


class TestFitting:
    def test_fit_returns_good_r_squared_for_trendy_workload(self):
        fit = OfflineProfiler().fit(get_workload("dedup"))
        assert fit.r_squared > 0.7

    def test_flat_workload_low_r_squared(self):
        # The paper's radiosity observation (§5.2).
        fit = OfflineProfiler().fit(get_workload("radiosity"))
        assert fit.r_squared < 0.6

    def test_fit_suite_covers_all(self):
        fits = OfflineProfiler().fit_suite()
        assert len(fits) == 28

    def test_fit_subset(self):
        workloads = [get_workload("ferret"), get_workload("fmm")]
        fits = OfflineProfiler().fit_suite(workloads)
        assert set(fits) == {"ferret", "fmm"}


class TestTraceBackend:
    def test_trace_profile_on_reduced_grid(self):
        platform = PlatformConfig(
            l2_sweep_kb=(128, 2048), bandwidth_sweep_gbps=(0.8, 12.8)
        )
        profiler = OfflineProfiler(
            platform=platform, use_trace_machine=True, trace_instructions=60_000
        )
        profile = profiler.profile(get_workload("ferret"))
        assert profile.n_samples == 4
        assert profile.source == "trace"
        assert np.all(profile.ipc > 0)
