"""Tests for the offline sweep profiler (§4.4, §5.1)."""

import numpy as np
import pytest

from repro.profiling.offline import OfflineProfiler
from repro.sim.platform import PlatformConfig
from repro.workloads.suites import get_workload


class TestProfiling:
    def test_profile_covers_table1_grid(self):
        profiler = OfflineProfiler()
        profile = profiler.profile(get_workload("ferret"))
        assert profile.n_samples == 25
        assert profile.source == "analytic"

    def test_profiles_cached(self):
        profiler = OfflineProfiler()
        first = profiler.profile(get_workload("ferret"))
        second = profiler.profile(get_workload("ferret"))
        assert first is second

    def test_deterministic_across_instances(self):
        a = OfflineProfiler().profile(get_workload("dedup"))
        b = OfflineProfiler().profile(get_workload("dedup"))
        assert np.array_equal(a.ipc, b.ipc)

    def test_noise_streams_independent_per_workload(self):
        profiler = OfflineProfiler()
        ferret = profiler.profile(get_workload("ferret"))
        fmm = profiler.profile(get_workload("fmm"))
        clean = OfflineProfiler(noise_sigma=0)
        ferret_noise = np.log(ferret.ipc) - np.log(clean.profile(get_workload("ferret")).ipc)
        fmm_noise = np.log(fmm.ipc) - np.log(clean.profile(get_workload("fmm")).ipc)
        assert not np.allclose(ferret_noise, fmm_noise)

    def test_zero_noise_matches_analytic_machine(self):
        profiler = OfflineProfiler(noise_sigma=0.0)
        workload = get_workload("barnes")
        profile = profiler.profile(workload)
        direct = profiler._analytic.sweep(workload)
        assert np.allclose(profile.ipc, direct.ipc)

    def test_seed_changes_noise(self):
        a = OfflineProfiler(seed=1).profile(get_workload("ferret"))
        b = OfflineProfiler(seed=2).profile(get_workload("ferret"))
        assert not np.array_equal(a.ipc, b.ipc)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            OfflineProfiler(noise_sigma=-0.1)


class TestFitting:
    def test_fit_returns_good_r_squared_for_trendy_workload(self):
        fit = OfflineProfiler().fit(get_workload("dedup"))
        assert fit.r_squared > 0.7

    def test_flat_workload_low_r_squared(self):
        # The paper's radiosity observation (§5.2).
        fit = OfflineProfiler().fit(get_workload("radiosity"))
        assert fit.r_squared < 0.6

    def test_fit_suite_covers_all(self):
        fits = OfflineProfiler().fit_suite()
        assert len(fits) == 28

    def test_fit_subset(self):
        workloads = [get_workload("ferret"), get_workload("fmm")]
        fits = OfflineProfiler().fit_suite(workloads)
        assert set(fits) == {"ferret", "fmm"}


class TestTraceBackend:
    def test_trace_profile_on_reduced_grid(self):
        platform = PlatformConfig(
            l2_sweep_kb=(128, 2048), bandwidth_sweep_gbps=(0.8, 12.8)
        )
        profiler = OfflineProfiler(
            platform=platform, use_trace_machine=True, trace_instructions=60_000
        )
        profile = profiler.profile(get_workload("ferret"))
        assert profile.n_samples == 4
        assert profile.source == "trace"
        assert np.all(profile.ipc > 0)


class TestMetricsMirror:
    """profiler.stats and the metrics registry must move in lockstep."""

    def test_simulation_and_cache_counters_mirrored(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        profiler = OfflineProfiler(cache_dir=tmp_path, metrics=registry)
        workload = get_workload("ferret")
        profiler.profile(workload)   # cold: simulates
        profiler.profile(workload)   # warm: memory hit
        assert registry.get("repro_profiler_simulated_points_total").value == 25
        assert registry.get("repro_profiler_simulated_workloads_total").value == 1
        assert registry.get("repro_profiler_cache_hits_total", tier="memory").value == 1

        # A fresh profiler over the same cache dir gets a disk hit.
        second_registry = MetricsRegistry()
        second = OfflineProfiler(cache_dir=tmp_path, metrics=second_registry)
        second.profile(workload)
        assert second_registry.get("repro_profiler_cache_hits_total", tier="disk").value == 1
        assert second_registry.get("repro_profiler_simulated_points_total") is None

    def test_sweep_latency_histogram_per_workload(self):
        profiler = OfflineProfiler()
        profiler.profile(get_workload("ferret"))
        hist = profiler.metrics.get("repro_profiler_sweep_seconds", workload="ferret")
        assert hist is not None and hist.count == 1

    def test_default_private_registry(self):
        a, b = OfflineProfiler(), OfflineProfiler()
        assert a.metrics is not b.metrics

    def test_stats_match_metrics_after_suite(self):
        from repro.workloads.suites import BENCHMARKS

        profiler = OfflineProfiler()
        names = sorted(BENCHMARKS)[:3]
        profiler.profile_suite([get_workload(name) for name in names])
        assert (
            profiler.metrics.get("repro_profiler_simulated_workloads_total").value
            == profiler.stats.simulated_workloads
            == 3
        )
        assert (
            profiler.metrics.get("repro_profiler_simulated_points_total").value
            == profiler.stats.simulated_points
        )
