"""Tests for the on-line profiler (§4.4's adaptive naive user)."""

import numpy as np
import pytest

from repro.core.utility import CobbDouglasUtility
from repro.profiling.online import OnlineProfiler


def feed_synthetic(profiler, alpha, n, seed=0, noise=0.0):
    """Feed observations from an exact Cobb-Douglas surface."""
    rng = np.random.default_rng(seed)
    utility = CobbDouglasUtility(alpha)
    for _ in range(n):
        allocation = rng.uniform(0.5, 20.0, size=2)
        ipc = utility.value(allocation)
        if noise:
            ipc *= float(np.exp(rng.normal(0, noise)))
        profiler.observe(allocation, ipc)


class TestNaivePrior:
    def test_starts_with_equal_elasticities(self):
        profiler = OnlineProfiler(n_resources=2)
        assert profiler.utility.elasticities == (0.5, 0.5)
        assert profiler.report_elasticities() == pytest.approx([0.5, 0.5])

    def test_three_resource_prior(self):
        profiler = OnlineProfiler(n_resources=3)
        assert profiler.utility.elasticities == pytest.approx((1 / 3,) * 3)

    def test_prior_until_min_samples(self):
        profiler = OnlineProfiler(min_samples=6)
        feed_synthetic(profiler, (0.8, 0.2), 5)
        assert profiler.utility.elasticities == (0.5, 0.5)
        assert profiler.last_fit is None


class TestLearning:
    def test_converges_to_truth(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.7, 0.3), 20)
        assert profiler.utility.elasticities == pytest.approx((0.7, 0.3), rel=1e-6)

    def test_report_is_rescaled(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (1.4, 0.6), 20)
        assert profiler.report_elasticities() == pytest.approx([0.7, 0.3], rel=1e-6)

    def test_noisy_convergence(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.6, 0.4), 200, noise=0.02)
        assert profiler.report_elasticities() == pytest.approx([0.6, 0.4], abs=0.05)

    def test_decay_tracks_phase_change(self):
        # Switch the true utility mid-stream; with decay the recent
        # phase dominates the fit.
        profiler = OnlineProfiler(decay=0.8)
        feed_synthetic(profiler, (0.9, 0.1), 30, seed=1)
        feed_synthetic(profiler, (0.1, 0.9), 30, seed=2)
        report = profiler.report_elasticities()
        assert report[1] > 0.7

    def test_no_decay_averages_phases(self):
        profiler = OnlineProfiler(decay=1.0)
        feed_synthetic(profiler, (0.9, 0.1), 30, seed=1)
        feed_synthetic(profiler, (0.1, 0.9), 30, seed=2)
        report = profiler.report_elasticities()
        assert 0.3 < report[1] < 0.7

    def test_no_refit_without_variation(self):
        profiler = OnlineProfiler(min_samples=4)
        for _ in range(6):
            profiler.observe((2.0, 3.0), 1.5)
        # All samples identical: rank-deficient, stays on the prior.
        assert profiler.utility.elasticities == (0.5, 0.5)

    def test_n_samples_counts(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.5, 0.5), 7)
        assert profiler.n_samples == 7


class TestValidation:
    def test_rejects_bad_n_resources(self):
        with pytest.raises(ValueError):
            OnlineProfiler(n_resources=0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            OnlineProfiler(decay=0.0)
        with pytest.raises(ValueError):
            OnlineProfiler(decay=1.5)

    def test_rejects_min_samples_below_parameters(self):
        with pytest.raises(ValueError, match="min_samples"):
            OnlineProfiler(n_resources=2, min_samples=2)

    def test_rejects_wrong_allocation_shape(self):
        profiler = OnlineProfiler()
        with pytest.raises(ValueError, match="shape"):
            profiler.observe((1.0, 2.0, 3.0), 1.0)

    def test_rejects_bad_weight_floor(self):
        with pytest.raises(ValueError, match="weight_floor"):
            OnlineProfiler(weight_floor=0.0)

    def test_rejects_bad_outlier_threshold(self):
        with pytest.raises(ValueError, match="outlier_log_threshold"):
            OnlineProfiler(outlier_log_threshold=-1.0)


class TestSampleRejection:
    """Non-positive / non-finite samples are skipped, not raised (§4.4 loop

    must survive a bad measurement)."""

    def test_non_positive_samples_skipped_and_counted(self):
        profiler = OnlineProfiler()
        for bad in [((1.0, 2.0), 0.0), ((0.0, 2.0), 1.0), ((1.0, 2.0), -3.0)]:
            utility = profiler.observe(*bad)
            assert utility.elasticities == (0.5, 0.5)
        assert profiler.n_samples == 0
        assert profiler.counters["rejected_non_positive"] == 3

    def test_non_finite_samples_skipped_and_counted(self):
        profiler = OnlineProfiler()
        profiler.observe((1.0, 2.0), float("nan"))
        profiler.observe((float("inf"), 2.0), 1.0)
        assert profiler.n_samples == 0
        assert profiler.counters["rejected_non_positive"] == 2

    def test_rejection_does_not_poison_convergence(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.7, 0.3), 10)
        profiler.observe((1.0, 2.0), -1.0)
        feed_synthetic(profiler, (0.7, 0.3), 10, seed=5)
        assert profiler.utility.elasticities == pytest.approx((0.7, 0.3), rel=1e-6)


class TestBoundedHistory:
    def test_history_bounded_with_decay(self):
        profiler = OnlineProfiler(decay=0.5, weight_floor=1e-6)
        feed_synthetic(profiler, (0.6, 0.4), 200)
        # log(1e-6)/log(0.5) ~ 19.9 -> at most 20 samples retained.
        assert profiler.n_samples <= 20
        assert profiler.counters["trimmed_samples"] >= 180

    def test_history_unbounded_without_decay(self):
        profiler = OnlineProfiler(decay=1.0)
        feed_synthetic(profiler, (0.6, 0.4), 200)
        assert profiler.n_samples == 200

    def test_trimming_leaves_fit_unchanged_within_tolerance(self):
        # Dropped samples carry weight < weight_floor, so the bounded
        # profiler's fit must match the unbounded reference closely.
        bounded = OnlineProfiler(decay=0.8, weight_floor=1e-9)
        reference = OnlineProfiler(decay=0.8, weight_floor=1e-300)
        feed_synthetic(bounded, (0.7, 0.3), 300, noise=0.02)
        feed_synthetic(reference, (0.7, 0.3), 300, noise=0.02)
        assert bounded.n_samples < reference.n_samples
        assert bounded.report_elasticities() == pytest.approx(
            reference.report_elasticities(), abs=1e-4
        )


class TestDegenerateFitGuard:
    def test_condition_number_exposed(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.6, 0.4), 10)
        assert np.isfinite(profiler.last_condition_number)
        assert profiler.last_condition_number >= 1.0

    def test_ill_conditioned_fit_falls_back_to_last_good(self):
        profiler = OnlineProfiler(max_condition=50.0, min_samples=4, decay=0.5)
        feed_synthetic(profiler, (0.7, 0.3), 12)
        good = profiler.utility
        # Collinear follow-up samples (x == y) age the informative ones
        # out of the bounded history and make the design degenerate; the
        # profiler must keep the last good fit.
        rng = np.random.default_rng(3)
        for _ in range(40):
            base = rng.uniform(1.0, 8.0)
            profiler.observe((base, base), base + rng.normal(0, 1e-9))
        assert profiler.counters["fit_fallbacks"] > 0
        assert profiler.utility.elasticities == pytest.approx(
            good.elasticities, rel=1e-6
        )

    def test_fallback_to_naive_prior_when_never_fit(self):
        profiler = OnlineProfiler(max_condition=1.0 + 1e-12, min_samples=4)
        feed_synthetic(profiler, (0.7, 0.3), 12)
        # Every fit is "too ill-conditioned": the naive prior survives.
        assert profiler.utility.elasticities == (0.5, 0.5)
        assert profiler.counters["fit_fallbacks"] > 0


class TestOutlierGate:
    def test_outliers_rejected_once_fit_exists(self):
        profiler = OnlineProfiler(outlier_log_threshold=2.0)
        feed_synthetic(profiler, (0.6, 0.4), 20)
        before = profiler.n_samples
        profiler.observe((2.0, 2.0), 1e6)
        assert profiler.n_samples == before
        assert profiler.counters["rejected_outliers"] == 1

    def test_gate_disabled_by_default(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.6, 0.4), 20)
        before = profiler.n_samples
        profiler.observe((2.0, 2.0), 1e6)
        assert profiler.n_samples == before + 1

    def test_sustained_shift_admitted_as_phase_change(self):
        profiler = OnlineProfiler(
            outlier_log_threshold=1.0, max_consecutive_outliers=3, decay=0.7
        )
        feed_synthetic(profiler, (0.6, 0.4), 20)
        # A persistent 100x IPC jump: the first two samples are gated,
        # the third is admitted (regime change), and the fit recovers.
        utility = CobbDouglasUtility((0.6, 0.4), scale=100.0)
        rng = np.random.default_rng(9)
        accepted_before = profiler.n_samples
        for _ in range(30):
            allocation = rng.uniform(0.5, 20.0, size=2)
            profiler.observe(allocation, utility.value(allocation))
        assert profiler.counters["rejected_outliers"] >= 2
        assert profiler.n_samples > accepted_before
        assert profiler.last_fit.utility.scale == pytest.approx(100.0, rel=0.3)


class TestMetricsMirror:
    """Internal counters and the optional registry must agree."""

    def _profiler(self, **kwargs):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        profiler = OnlineProfiler(
            n_resources=2, metrics=registry, metric_labels={"agent": "a1"}, **kwargs
        )
        return profiler, registry

    def test_rejections_mirrored_with_reason_labels(self):
        profiler, registry = self._profiler()
        profiler.observe((1.0, 1.0), -5.0)
        profiler.observe((0.0, 1.0), 1.0)
        counter = registry.get(
            "repro_online_samples_rejected_total", agent="a1", reason="non_positive"
        )
        assert counter.value == profiler.counters["rejected_non_positive"] == 2

    def test_trim_and_refit_counters_mirrored(self):
        profiler, registry = self._profiler(decay=0.5, weight_floor=0.1)
        feed_synthetic(profiler, (0.6, 0.4), 40)
        trimmed = registry.get("repro_online_samples_trimmed_total", agent="a1")
        assert trimmed is not None
        assert trimmed.value == profiler.counters["trimmed_samples"] > 0
        refits = registry.get("repro_online_refits_total", agent="a1")
        assert refits is not None and refits.value > 0

    def test_condition_number_gauge_tracks_last_fit(self):
        profiler, registry = self._profiler()
        feed_synthetic(profiler, (0.6, 0.4), 12)
        gauge = registry.get("repro_online_fit_condition_number", agent="a1")
        assert gauge is not None
        assert gauge.value == pytest.approx(profiler.last_condition_number)

    def test_metric_free_by_default(self):
        profiler = OnlineProfiler(n_resources=2)
        profiler.observe((1.0, 1.0), -5.0)
        assert profiler.counters["rejected_non_positive"] == 1  # no crash, no registry


class TestExplorationBypass:
    """Exploration-tagged samples skip the fit-relative outlier gate.

    Regression: a demand-learning controller deliberately measures at
    perturbed operating points; a phase-changed agent's exploration
    stream used to be rejected wholesale before the consecutive-run
    escape could fire, so the learner never saw its own evidence.
    """

    def test_exploration_sample_bypasses_the_gate(self):
        profiler = OnlineProfiler(outlier_log_threshold=2.0)
        feed_synthetic(profiler, (0.6, 0.4), 20)
        before = profiler.n_samples
        profiler.observe((2.0, 2.0), 1e6, exploration=True)
        assert profiler.n_samples == before + 1
        assert profiler.counters["rejected_outliers"] == 0

    def test_plain_sample_still_gated(self):
        profiler = OnlineProfiler(outlier_log_threshold=2.0)
        feed_synthetic(profiler, (0.6, 0.4), 20)
        before = profiler.n_samples
        profiler.observe((2.0, 2.0), 1e6)
        assert profiler.n_samples == before
        assert profiler.counters["rejected_outliers"] == 1

    def test_phase_change_learned_through_exploration_stream(self):
        # With a tight gate and a long outlier run budget, a 100x IPC
        # regime change arriving purely as exploration samples must be
        # absorbed sample by sample, not rejected until the escape.
        profiler = OnlineProfiler(
            outlier_log_threshold=1.0, max_consecutive_outliers=1000, decay=0.7
        )
        feed_synthetic(profiler, (0.6, 0.4), 20)
        utility = CobbDouglasUtility((0.6, 0.4), scale=100.0)
        rng = np.random.default_rng(9)
        for _ in range(30):
            allocation = rng.uniform(0.5, 20.0, size=2)
            profiler.observe(allocation, utility.value(allocation), exploration=True)
        assert profiler.counters["rejected_outliers"] == 0
        assert profiler.last_fit.utility.scale == pytest.approx(100.0, rel=0.3)

    def test_exploration_does_not_bypass_validity_checks(self):
        # The tag skips only the *fit-relative* gate; garbage stays out.
        profiler = OnlineProfiler()
        profiler.observe((1.0, 2.0), -1.0, exploration=True)
        assert profiler.n_samples == 0
        assert profiler.counters["rejected_non_positive"] == 1


class TestSamplesAccessor:
    def test_empty_history_is_none(self):
        assert OnlineProfiler().samples() is None

    def test_samples_returns_accepted_history(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.6, 0.4), 7)
        allocations, performance = profiler.samples()
        assert allocations.shape == (7, 2)
        assert performance.shape == (7,)
        assert np.all(performance > 0)
