"""Tests for the on-line profiler (§4.4's adaptive naive user)."""

import numpy as np
import pytest

from repro.core.utility import CobbDouglasUtility
from repro.profiling.online import OnlineProfiler


def feed_synthetic(profiler, alpha, n, seed=0, noise=0.0):
    """Feed observations from an exact Cobb-Douglas surface."""
    rng = np.random.default_rng(seed)
    utility = CobbDouglasUtility(alpha)
    for _ in range(n):
        allocation = rng.uniform(0.5, 20.0, size=2)
        ipc = utility.value(allocation)
        if noise:
            ipc *= float(np.exp(rng.normal(0, noise)))
        profiler.observe(allocation, ipc)


class TestNaivePrior:
    def test_starts_with_equal_elasticities(self):
        profiler = OnlineProfiler(n_resources=2)
        assert profiler.utility.elasticities == (0.5, 0.5)
        assert profiler.report_elasticities() == pytest.approx([0.5, 0.5])

    def test_three_resource_prior(self):
        profiler = OnlineProfiler(n_resources=3)
        assert profiler.utility.elasticities == pytest.approx((1 / 3,) * 3)

    def test_prior_until_min_samples(self):
        profiler = OnlineProfiler(min_samples=6)
        feed_synthetic(profiler, (0.8, 0.2), 5)
        assert profiler.utility.elasticities == (0.5, 0.5)
        assert profiler.last_fit is None


class TestLearning:
    def test_converges_to_truth(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.7, 0.3), 20)
        assert profiler.utility.elasticities == pytest.approx((0.7, 0.3), rel=1e-6)

    def test_report_is_rescaled(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (1.4, 0.6), 20)
        assert profiler.report_elasticities() == pytest.approx([0.7, 0.3], rel=1e-6)

    def test_noisy_convergence(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.6, 0.4), 200, noise=0.02)
        assert profiler.report_elasticities() == pytest.approx([0.6, 0.4], abs=0.05)

    def test_decay_tracks_phase_change(self):
        # Switch the true utility mid-stream; with decay the recent
        # phase dominates the fit.
        profiler = OnlineProfiler(decay=0.8)
        feed_synthetic(profiler, (0.9, 0.1), 30, seed=1)
        feed_synthetic(profiler, (0.1, 0.9), 30, seed=2)
        report = profiler.report_elasticities()
        assert report[1] > 0.7

    def test_no_decay_averages_phases(self):
        profiler = OnlineProfiler(decay=1.0)
        feed_synthetic(profiler, (0.9, 0.1), 30, seed=1)
        feed_synthetic(profiler, (0.1, 0.9), 30, seed=2)
        report = profiler.report_elasticities()
        assert 0.3 < report[1] < 0.7

    def test_no_refit_without_variation(self):
        profiler = OnlineProfiler(min_samples=4)
        for _ in range(6):
            profiler.observe((2.0, 3.0), 1.5)
        # All samples identical: rank-deficient, stays on the prior.
        assert profiler.utility.elasticities == (0.5, 0.5)

    def test_n_samples_counts(self):
        profiler = OnlineProfiler()
        feed_synthetic(profiler, (0.5, 0.5), 7)
        assert profiler.n_samples == 7


class TestValidation:
    def test_rejects_bad_n_resources(self):
        with pytest.raises(ValueError):
            OnlineProfiler(n_resources=0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            OnlineProfiler(decay=0.0)
        with pytest.raises(ValueError):
            OnlineProfiler(decay=1.5)

    def test_rejects_min_samples_below_parameters(self):
        with pytest.raises(ValueError, match="min_samples"):
            OnlineProfiler(n_resources=2, min_samples=2)

    def test_rejects_wrong_allocation_shape(self):
        profiler = OnlineProfiler()
        with pytest.raises(ValueError, match="shape"):
            profiler.observe((1.0, 2.0, 3.0), 1.0)

    def test_rejects_non_positive_observation(self):
        profiler = OnlineProfiler()
        with pytest.raises(ValueError, match="strictly positive"):
            profiler.observe((1.0, 2.0), 0.0)
        with pytest.raises(ValueError, match="strictly positive"):
            profiler.observe((0.0, 2.0), 1.0)
